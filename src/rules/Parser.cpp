//===--- Parser.cpp - Parser for the rule language ------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Parser.h"

#include "rules/Lexer.h"
#include "rules/Sema.h"

using namespace chameleon;
using namespace chameleon::rules;

namespace {

/// "; did you mean 'X'?" when a suggestion exists, else "".
std::string didYouMean(const std::string &Suggestion) {
  if (Suggestion.empty())
    return std::string();
  return "; did you mean '" + Suggestion + "'?";
}

} // namespace

namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult run() {
    ParseResult Result;
    while (!peek().is(TokenKind::Eof)) {
      if (peek().is(TokenKind::Semicolon)) {
        consume();
        continue;
      }
      if (peek().is(TokenKind::Error)) {
        diag(peek(), peek().Text);
        consume();
        continue;
      }
      size_t Before = Diags.size();
      std::optional<Rule> R = parseRule();
      if (R) {
        R->Name = R->Name.empty()
                      ? "rule" + std::to_string(Result.Rules.size() + 1)
                      : R->Name;
        Result.Rules.push_back(std::move(*R));
      } else {
        (void)Before;
        recover();
      }
    }
    Result.Diags = std::move(Diags);
    return Result;
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Cursor + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  Token consume() { return Tokens[Cursor < Tokens.size() - 1 ? Cursor++
                                                             : Cursor]; }

  bool consumeIf(TokenKind Kind) {
    if (!peek().is(Kind))
      return false;
    consume();
    return true;
  }

  void diag(const Token &At, const std::string &Message) {
    Diagnostic D;
    D.Line = At.Line;
    D.Col = At.Col;
    D.Message = Message;
    Diags.push_back(std::move(D));
  }

  /// Requires a token of \p Kind; diagnoses and returns false otherwise.
  bool expect(TokenKind Kind, const char *What) {
    if (consumeIf(Kind))
      return true;
    diag(peek(), std::string("expected ") + What + " but found "
                     + tokenKindName(peek().Kind));
    return false;
  }

  /// Skips to what looks like the start of the next rule.
  void recover() {
    while (!peek().is(TokenKind::Eof)) {
      if (peek().is(TokenKind::Semicolon)) {
        consume();
        return;
      }
      if (peek().is(TokenKind::LBracket))
        return;
      if (peek().is(TokenKind::Ident) && peek(1).is(TokenKind::Colon))
        return;
      consume();
    }
  }

  //===--------------------------------------------------------------------===//
  // Grammar productions
  //===--------------------------------------------------------------------===//

  std::optional<Rule> parseRule() {
    Rule R;
    R.Line = peek().Line;
    R.Col = peek().Col;

    if (peek().is(TokenKind::LBracket)) {
      consume();
      do {
        if (!peek().is(TokenKind::Ident)) {
          diag(peek(), "expected attribute name");
          return std::nullopt;
        }
        Token Attr = consume();
        std::string Name = Attr.Text;
        // Attribute names may be kebab-case; '-' lexes as minus, so join
        // the pieces back together here.
        while (peek().is(TokenKind::Minus) && peek(1).is(TokenKind::Ident)) {
          consume();
          Name += '-';
          Name += consume().Text;
        }
        if (Name == "unstable")
          R.IgnoreStability = true;
        else
          R.Name = Name;
      } while (consumeIf(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "']'"))
        return std::nullopt;
    }

    if (!peek().is(TokenKind::Ident)) {
      diag(peek(), std::string("expected source type but found ")
                       + tokenKindName(peek().Kind));
      return std::nullopt;
    }
    Token Src = consume();
    R.SrcType = Src.Text;
    if (R.SrcType != "Collection" && R.SrcType != "List"
        && R.SrcType != "Set" && R.SrcType != "Map"
        && !defaultImplForSourceType(R.SrcType)) {
      diag(Src, "unknown source type '" + R.SrcType + "'"
                    + didYouMean(suggestSourceTypeName(R.SrcType)));
      return std::nullopt;
    }

    if (!expect(TokenKind::Colon, "':' after the source type"))
      return std::nullopt;

    R.Condition = parseCond();
    if (!R.Condition)
      return std::nullopt;

    if (!expect(TokenKind::Arrow, "'->' before the action"))
      return std::nullopt;

    if (!parseAction(R))
      return std::nullopt;

    if (peek().is(TokenKind::String)) {
      R.Message = consume().Text;
      size_t ColonPos = R.Message.find(':');
      if (ColonPos != std::string::npos && ColonPos > 0)
        R.Category = R.Message.substr(0, ColonPos);
    }
    return R;
  }

  bool parseAction(Rule &R) {
    if (!peek().is(TokenKind::Ident)) {
      diag(peek(), std::string("expected an action but found ")
                       + tokenKindName(peek().Kind));
      return false;
    }
    Token Action = consume();
    R.TargetLine = Action.Line;
    R.TargetCol = Action.Col;
    if (Action.Text == "warn") {
      R.Action = ActionKind::Warn;
      return true;
    }
    if (Action.Text == "setCapacity") {
      R.Action = ActionKind::SetCapacity;
      if (!expect(TokenKind::LParen, "'(' after setCapacity"))
        return false;
      R.Capacity = parseExpr();
      if (!R.Capacity)
        return false;
      return expect(TokenKind::RParen, "')' after the capacity expression");
    }
    std::optional<ImplKind> Impl = parseImplKind(Action.Text);
    if (!Impl) {
      diag(Action, "unknown implementation type '" + Action.Text + "'"
                       + didYouMean(suggestImplName(Action.Text)));
      return false;
    }
    R.Action = ActionKind::Replace;
    R.NewImpl = *Impl;
    if (consumeIf(TokenKind::LParen)) {
      R.Capacity = parseExpr();
      if (!R.Capacity)
        return false;
      return expect(TokenKind::RParen, "')' after the capacity expression");
    }
    return true;
  }

  CondPtr parseCond() {
    CondPtr Lhs = parseAndCond();
    if (!Lhs)
      return nullptr;
    while (peek().is(TokenKind::OrOr)) {
      Token Op = consume();
      CondPtr Rhs = parseAndCond();
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<OrCond>(std::move(Lhs), std::move(Rhs));
      Lhs->Line = Op.Line;
      Lhs->Col = Op.Col;
    }
    return Lhs;
  }

  CondPtr parseAndCond() {
    CondPtr Lhs = parseNotCond();
    if (!Lhs)
      return nullptr;
    while (peek().is(TokenKind::AndAnd)) {
      Token Op = consume();
      CondPtr Rhs = parseNotCond();
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<AndCond>(std::move(Lhs), std::move(Rhs));
      Lhs->Line = Op.Line;
      Lhs->Col = Op.Col;
    }
    return Lhs;
  }

  CondPtr parseNotCond() {
    if (peek().is(TokenKind::Not)) {
      Token Bang = consume();
      CondPtr Inner = parseNotCond();
      if (!Inner)
        return nullptr;
      CondPtr N = std::make_unique<NotCond>(std::move(Inner));
      N->Line = Bang.Line;
      N->Col = Bang.Col;
      return N;
    }
    // '(' is ambiguous: it may group a condition or start an expression.
    // Speculatively try the condition reading and roll back on failure.
    if (peek().is(TokenKind::LParen)) {
      size_t SavedCursor = Cursor;
      size_t SavedDiags = Diags.size();
      consume();
      if (CondPtr Grouped = parseCond()) {
        if (consumeIf(TokenKind::RParen)
            && !isComparisonOperator(peek().Kind)
            && !isArithmeticOperator(peek().Kind))
          return Grouped;
      }
      Cursor = SavedCursor;
      Diags.resize(SavedDiags);
    }
    return parseCompare();
  }

  static bool isComparisonOperator(TokenKind Kind) {
    switch (Kind) {
    case TokenKind::Less:
    case TokenKind::LessEq:
    case TokenKind::Greater:
    case TokenKind::GreaterEq:
    case TokenKind::EqEq:
    case TokenKind::NotEq:
      return true;
    default:
      return false;
    }
  }

  static bool isArithmeticOperator(TokenKind Kind) {
    switch (Kind) {
    case TokenKind::Plus:
    case TokenKind::Minus:
    case TokenKind::Star:
    case TokenKind::Slash:
      return true;
    default:
      return false;
    }
  }

  CondPtr parseCompare() {
    ExprPtr Lhs = parseExpr();
    if (!Lhs)
      return nullptr;
    if (!isComparisonOperator(peek().Kind)) {
      diag(peek(), std::string("expected a comparison operator but found ")
                       + tokenKindName(peek().Kind));
      return nullptr;
    }
    Token Op = consume();
    ExprPtr Rhs = parseExpr();
    if (!Rhs)
      return nullptr;
    CompareCond::Operator CmpOp;
    switch (Op.Kind) {
    case TokenKind::Less:
      CmpOp = CompareCond::Operator::Lt;
      break;
    case TokenKind::LessEq:
      CmpOp = CompareCond::Operator::Le;
      break;
    case TokenKind::Greater:
      CmpOp = CompareCond::Operator::Gt;
      break;
    case TokenKind::GreaterEq:
      CmpOp = CompareCond::Operator::Ge;
      break;
    case TokenKind::EqEq:
      CmpOp = CompareCond::Operator::Eq;
      break;
    default:
      CmpOp = CompareCond::Operator::Ne;
      break;
    }
    CondPtr C = std::make_unique<CompareCond>(CmpOp, std::move(Lhs),
                                              std::move(Rhs));
    C->Line = Op.Line;
    C->Col = Op.Col;
    return C;
  }

  ExprPtr parseExpr() {
    ExprPtr Lhs = parseTerm();
    if (!Lhs)
      return nullptr;
    while (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
      Token Op = consume();
      ExprPtr Rhs = parseTerm();
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(Op.is(TokenKind::Plus)
                                             ? BinaryExpr::Operator::Add
                                             : BinaryExpr::Operator::Sub,
                                         std::move(Lhs), std::move(Rhs));
      Lhs->Line = Op.Line;
      Lhs->Col = Op.Col;
    }
    return Lhs;
  }

  ExprPtr parseTerm() {
    ExprPtr Lhs = parseFactor();
    if (!Lhs)
      return nullptr;
    while (peek().is(TokenKind::Star) || peek().is(TokenKind::Slash)) {
      Token Op = consume();
      ExprPtr Rhs = parseFactor();
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(Op.is(TokenKind::Star)
                                             ? BinaryExpr::Operator::Mul
                                             : BinaryExpr::Operator::Div,
                                         std::move(Lhs), std::move(Rhs));
      Lhs->Line = Op.Line;
      Lhs->Col = Op.Col;
    }
    return Lhs;
  }

  /// Stamps \p E with \p T's position and passes it through.
  static ExprPtr at(ExprPtr E, const Token &T) {
    E->Line = T.Line;
    E->Col = T.Col;
    return E;
  }

  ExprPtr parseFactor() {
    const Token &T = peek();
    switch (T.Kind) {
    case TokenKind::Number: {
      Token N = consume();
      return at(std::make_unique<NumberExpr>(N.NumberValue), N);
    }
    case TokenKind::OpCount: {
      Token Op = consume();
      if (Op.Text == "allOps")
        return at(std::make_unique<MetricExpr>(MetricKind::AllOps), Op);
      std::optional<OpKind> Kind = parseOpKind(Op.Text);
      if (!Kind) {
        diag(Op, "unknown operation '" + Op.Text + "'"
                     + didYouMean(suggestOpName(Op.Text)));
        return nullptr;
      }
      return at(std::make_unique<OpCountExpr>(*Kind), Op);
    }
    case TokenKind::OpVar: {
      Token Op = consume();
      if (Op.Text == "maxSize")
        return at(std::make_unique<MetricExpr>(MetricKind::MaxSizeStddev),
                  Op);
      if (Op.Text == "size")
        return at(std::make_unique<MetricExpr>(MetricKind::FinalSizeStddev),
                  Op);
      std::optional<OpKind> Kind = parseOpKind(Op.Text);
      if (!Kind) {
        diag(Op, "unknown operation '" + Op.Text + "'"
                     + didYouMean(suggestOpName(Op.Text)));
        return nullptr;
      }
      return at(std::make_unique<OpStddevExpr>(*Kind), Op);
    }
    case TokenKind::Param: {
      Token P = consume();
      return at(std::make_unique<ParamExpr>(P.Text), P);
    }
    case TokenKind::Ident: {
      Token Id = consume();
      std::optional<MetricKind> Metric = parseMetricKind(Id.Text);
      if (!Metric) {
        diag(Id, "unknown metric '" + Id.Text + "'"
                     + didYouMean(suggestMetricName(Id.Text)));
        return nullptr;
      }
      return at(std::make_unique<MetricExpr>(*Metric), Id);
    }
    case TokenKind::LParen: {
      consume();
      ExprPtr Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!expect(TokenKind::RParen, "')'"))
        return nullptr;
      return Inner;
    }
    default:
      diag(T, std::string("expected an expression but found ")
                  + tokenKindName(T.Kind));
      return nullptr;
    }
  }

  std::vector<Token> Tokens;
  size_t Cursor = 0;
  std::vector<Diagnostic> Diags;
};

} // namespace

ParseResult chameleon::rules::parseRules(const std::string &Source) {
  Lexer Lex(Source);
  return Parser(Lex.lexAll()).run();
}
