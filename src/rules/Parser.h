//===--- Parser.h - Parser for the rule language ---------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the rule language of Fig. 4. The concrete
/// grammar accepted:
///
///   ruleset  := rule*
///   rule     := attrs? srcType ':' cond '->' action STRING?
///   attrs    := '[' IDENT (',' IDENT)* ']'        // name / 'unstable'
///   action   := implType ('(' expr ')')?          // replacement
///             | 'setCapacity' '(' expr ')'        // capacity tuning
///             | 'warn'                            // advisory
///   cond     := andCond ('||' andCond)*
///   andCond  := notCond ('&&' notCond)*
///   notCond  := '!' notCond | '(' cond ')' | compare
///   compare  := expr relop expr
///   expr     := term (('+'|'-') term)*
///   term     := factor (('*'|'/') factor)*
///   factor   := NUMBER | OPCOUNT | OPVAR | metricIdent | '(' expr ')'
///
/// On error the parser reports a positioned diagnostic and recovers by
/// skipping to what looks like the start of the next rule.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RULES_PARSER_H
#define CHAMELEON_RULES_PARSER_H

#include "rules/Ast.h"
#include "rules/Diagnostics.h"
#include "rules/Token.h"

#include <vector>

namespace chameleon::rules {

/// Result of parsing a rule file: the rules that parsed plus diagnostics
/// for the ones that did not. RuleEngine::addRules reuses this type and,
/// when sema is enabled, appends semantic diagnostics (which may be mere
/// warnings) to Diags.
struct ParseResult {
  std::vector<Rule> Rules;
  std::vector<Diagnostic> Diags;

  /// No *errors*; warnings do not fail a parse/load.
  bool succeeded() const { return !hasErrors(Diags); }
};

/// Parses rule-language source text.
ParseResult parseRules(const std::string &Source);

} // namespace chameleon::rules

#endif // CHAMELEON_RULES_PARSER_H
