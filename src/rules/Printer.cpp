//===--- Printer.cpp - Pretty-printer for the rule language ---------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Printer.h"

#include "support/Assert.h"

using namespace chameleon;
using namespace chameleon::rules;

namespace {

/// Binding strength of expression nodes; parentheses are emitted only
/// when a child binds looser than its parent requires.
enum class ExprPrec : uint8_t { Additive = 0, Multiplicative = 1, Atom = 2 };

ExprPrec exprPrec(const Expr &E) {
  if (E.kind() != Expr::Kind::Binary)
    return ExprPrec::Atom;
  const auto &B = static_cast<const BinaryExpr &>(E);
  switch (B.Op) {
  case BinaryExpr::Operator::Add:
  case BinaryExpr::Operator::Sub:
    return ExprPrec::Additive;
  case BinaryExpr::Operator::Mul:
  case BinaryExpr::Operator::Div:
    return ExprPrec::Multiplicative;
  }
  CHAM_UNREACHABLE("unknown binary operator");
}

std::string printExprAt(const Expr &E, ExprPrec Min) {
  std::string Out;
  bool Paren = exprPrec(E) < Min;
  if (Paren)
    Out += '(';
  switch (E.kind()) {
  case Expr::Kind::Number: {
    double V = static_cast<const NumberExpr &>(E).Value;
    // Integers print without a fractional part.
    if (V == static_cast<double>(static_cast<long long>(V))) {
      Out += std::to_string(static_cast<long long>(V));
    } else {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%g", V);
      Out += Buf;
    }
    break;
  }
  case Expr::Kind::Metric: {
    MetricKind Metric = static_cast<const MetricExpr &>(E).Metric;
    // #allOps keeps the paper's counter spelling.
    if (Metric == MetricKind::AllOps)
      Out += '#';
    Out += metricKindName(Metric);
    break;
  }
  case Expr::Kind::OpCount:
    Out += '#';
    Out += opKindName(static_cast<const OpCountExpr &>(E).Op);
    break;
  case Expr::Kind::OpStddev:
    Out += '@';
    Out += opKindName(static_cast<const OpStddevExpr &>(E).Op);
    break;
  case Expr::Kind::Param:
    Out += '$';
    Out += static_cast<const ParamExpr &>(E).Name;
    break;
  case Expr::Kind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    ExprPrec Here = exprPrec(E);
    const char *Op;
    switch (B.Op) {
    case BinaryExpr::Operator::Add:
      Op = " + ";
      break;
    case BinaryExpr::Operator::Sub:
      Op = " - ";
      break;
    case BinaryExpr::Operator::Mul:
      Op = " * ";
      break;
    case BinaryExpr::Operator::Div:
      Op = " / ";
      break;
    }
    // Left-associative: the right child needs one level tighter.
    Out += printExprAt(*B.Lhs, Here);
    Out += Op;
    Out += printExprAt(*B.Rhs,
                       static_cast<ExprPrec>(
                           static_cast<uint8_t>(Here) + 1));
    break;
  }
  }
  if (Paren)
    Out += ')';
  return Out;
}

/// Binding strength of conditions: Or < And < Not/Compare.
enum class CondPrec : uint8_t { Or = 0, And = 1, Atom = 2 };

CondPrec condPrec(const Cond &C) {
  switch (C.kind()) {
  case Cond::Kind::Or:
    return CondPrec::Or;
  case Cond::Kind::And:
    return CondPrec::And;
  case Cond::Kind::Not:
  case Cond::Kind::Compare:
    return CondPrec::Atom;
  }
  CHAM_UNREACHABLE("unknown condition kind");
}

std::string printCondAt(const Cond &C, CondPrec Min) {
  std::string Out;
  bool Paren = condPrec(C) < Min;
  if (Paren)
    Out += '(';
  switch (C.kind()) {
  case Cond::Kind::Compare: {
    const auto &Cmp = static_cast<const CompareCond &>(C);
    const char *Op;
    switch (Cmp.Op) {
    case CompareCond::Operator::Lt:
      Op = " < ";
      break;
    case CompareCond::Operator::Le:
      Op = " <= ";
      break;
    case CompareCond::Operator::Gt:
      Op = " > ";
      break;
    case CompareCond::Operator::Ge:
      Op = " >= ";
      break;
    case CompareCond::Operator::Eq:
      Op = " == ";
      break;
    case CompareCond::Operator::Ne:
      Op = " != ";
      break;
    }
    Out += printExprAt(*Cmp.Lhs, ExprPrec::Additive);
    Out += Op;
    Out += printExprAt(*Cmp.Rhs, ExprPrec::Additive);
    break;
  }
  case Cond::Kind::And: {
    const auto &A = static_cast<const AndCond &>(C);
    Out += printCondAt(*A.Lhs, CondPrec::And);
    Out += " && ";
    Out += printCondAt(*A.Rhs, CondPrec::And);
    break;
  }
  case Cond::Kind::Or: {
    const auto &O = static_cast<const OrCond &>(C);
    Out += printCondAt(*O.Lhs, CondPrec::Or);
    Out += " || ";
    Out += printCondAt(*O.Rhs, CondPrec::Or);
    break;
  }
  case Cond::Kind::Not: {
    const auto &N = static_cast<const NotCond &>(C);
    Out += '!';
    // Parenthesize everything but a nested !, so "!(a > b)" never prints
    // as the ambiguous-looking "!a > b".
    if (N.Inner->kind() == Cond::Kind::Not) {
      Out += printCondAt(*N.Inner, CondPrec::Atom);
    } else {
      Out += '(';
      Out += printCondAt(*N.Inner, CondPrec::Or);
      Out += ')';
    }
    break;
  }
  }
  if (Paren)
    Out += ')';
  return Out;
}

} // namespace

std::string chameleon::rules::printExpr(const Expr &E) {
  return printExprAt(E, ExprPrec::Additive);
}

std::string chameleon::rules::printCond(const Cond &C) {
  return printCondAt(C, CondPrec::Or);
}

std::string chameleon::rules::printRule(const Rule &R) {
  std::string Out;
  bool NeedAttrs = R.IgnoreStability || !R.Name.empty();
  if (NeedAttrs) {
    Out += '[';
    Out += R.Name;
    if (R.IgnoreStability) {
      if (!R.Name.empty())
        Out += ", ";
      Out += "unstable";
    }
    Out += "] ";
  }
  Out += R.SrcType;
  Out += " : ";
  Out += printCond(*R.Condition);
  Out += " -> ";
  switch (R.Action) {
  case ActionKind::Replace:
    Out += implKindName(R.NewImpl);
    if (R.Capacity) {
      Out += '(';
      Out += printExpr(*R.Capacity);
      Out += ')';
    }
    break;
  case ActionKind::SetCapacity:
    Out += "setCapacity(";
    Out += printExpr(*R.Capacity);
    Out += ')';
    break;
  case ActionKind::Warn:
    Out += "warn";
    break;
  }
  if (!R.Message.empty()) {
    Out += " \"";
    Out += R.Message;
    Out += '"';
  }
  return Out;
}

std::string chameleon::rules::printRules(const std::vector<Rule> &Rules) {
  std::string Out;
  for (const Rule &R : Rules) {
    Out += printRule(R);
    Out += '\n';
  }
  return Out;
}
