//===--- Printer.h - Pretty-printer for the rule language ------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical pretty-printer for rule-language ASTs. Printing a parsed
/// rule yields source that parses back to the same tree (round-trip
/// property, pinned by tests), which makes rule sets diffable and lets
/// tools echo the rules they are running.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RULES_PRINTER_H
#define CHAMELEON_RULES_PRINTER_H

#include "rules/Ast.h"

#include <string>
#include <vector>

namespace chameleon::rules {

/// Renders an expression in canonical form (minimal parentheses).
std::string printExpr(const Expr &E);

/// Renders a condition in canonical form.
std::string printCond(const Cond &C);

/// Renders one rule, including attributes, action, and message.
std::string printRule(const Rule &R);

/// Renders a whole rule set, one rule per line.
std::string printRules(const std::vector<Rule> &Rules);

} // namespace chameleon::rules

#endif // CHAMELEON_RULES_PRINTER_H
