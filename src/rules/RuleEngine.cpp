//===--- RuleEngine.cpp - The collection-selection rule engine -----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/RuleEngine.h"

#include "collections/CollectionRuntime.h"
#include "obs/DecisionLog.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace chameleon;
using namespace chameleon::rules;

namespace {
// Rule-engine outcome accounting (cham.rules.*, DESIGN.md §11):
// evaluations counts (rule, context) pairs, fired the subset that
// produced a suggestion.
CHAM_METRIC_COUNTER(RuleEvaluations, "cham.rules.evaluations");
CHAM_METRIC_COUNTER(RuleFired, "cham.rules.fired");

/// RuleOutcome -> the ledger's decoupled outcome enum (obs must not
/// depend on the rules layer, so the mapping lives at the producer).
obs::DecisionOutcome ledgerOutcome(RuleEngine::RuleOutcome O) {
  using RO = RuleEngine::RuleOutcome;
  using DO = obs::DecisionOutcome;
  switch (O) {
  case RO::Fired:
    return DO::Fired;
  case RO::NeverFires:
    return DO::NeverFires;
  case RO::SrcTypeMismatch:
    return DO::SrcTypeMismatch;
  case RO::TooFewSamples:
    return DO::TooFewSamples;
  case RO::ConditionFalse:
    return DO::ConditionFalse;
  case RO::MissingParam:
    return DO::MissingParam;
  case RO::Unstable:
    return DO::Unstable;
  case RO::GatedByPotential:
    return DO::GatedByPotential;
  }
  return DO::None;
}

/// The full impl-kind name table, index-aligned with implIndex().
std::vector<std::string> implNameTable() {
  std::vector<std::string> Names;
  Names.reserve(NumImplKinds);
  for (unsigned I = 0; I < NumImplKinds; ++I)
    Names.push_back(implKindName(static_cast<ImplKind>(I)));
  return Names;
}
} // namespace

std::string Suggestion::fixDescription() const {
  switch (Action) {
  case ActionKind::Replace: {
    std::string Fix = std::string("replace with ") + implKindName(NewImpl);
    if (Capacity)
      Fix += "(" + std::to_string(*Capacity) + ")";
    return Fix;
  }
  case ActionKind::SetCapacity:
    return "set initial capacity ("
           + std::to_string(Capacity.value_or(0)) + ")";
  case ActionKind::Warn:
    return Message.empty() ? std::string("see report") : Message;
  }
  CHAM_UNREACHABLE("unknown ActionKind");
}

RuleEngine::RuleEngine(RuleEngineConfig Config) : Config(Config) {}

ParseResult RuleEngine::addRules(const std::string &Source, SemaMode Mode) {
  ParseResult Result = parseRules(Source);
  if (Mode != SemaMode::Off) {
    SemaOptions Opts;
    Opts.Params = &Params;
    // Bindings may serve rule files added later; unused-param noise here
    // would punish setParam-before-addRules call orders.
    Opts.CheckUnusedParams = false;
    SemaResult Sema = analyzeRules(Result.Rules, Opts);
    for (size_t I = 0; I < Result.Rules.size(); ++I) {
      const SemaResult::RuleVerdict &V = Sema.Verdicts[I];
      Rule &R = Result.Rules[I];
      if (V.NeverFires) {
        R.NeverFires = true;
        R.SemaNote = "condition is unsatisfiable";
      } else if (!V.UnboundParams.empty()) {
        std::string Names;
        for (const std::string &Name : V.UnboundParams) {
          if (!Names.empty())
            Names += ", ";
          Names += "$" + Name;
        }
        R.SemaNote = "referenced " + Names + " unbound at load time";
      }
    }
    Result.Diags.insert(Result.Diags.end(),
                        std::make_move_iterator(Sema.Diags.begin()),
                        std::make_move_iterator(Sema.Diags.end()));
    sortDiagnostics(Result.Diags);
    if (Mode == SemaMode::Strict && hasErrors(Result.Diags)) {
      Result.Rules.clear();
      return Result;
    }
  }
  for (Rule &R : Result.Rules)
    Rules.push_back(std::move(R));
  Result.Rules.clear();
  return Result;
}

const char *RuleEngine::builtinRulesText() {
  // The built-in rule set (paper Table 2, plus the refinements its case
  // studies apply by hand). Constants are the tuned defaults; they "may be
  // tuned per specific environment" (§3.3.1).
  return R"rules(
// -- Redundant / empty collections ---------------------------------------
[never-used-lists] List : #allOps == 0 && maxSize == 0 && allocCount >= 8
    -> EmptyList
  "Space: collection never used — share an immutable empty instance"
[empty-lists] List : maxSize == 0 && allocCount >= 8 -> LazyArrayList
  "Space: redundant collection allocation"
[empty-maps] Map : maxSize == 0 && allocCount >= 8 -> LazyMap
  "Space: redundant map allocation"
[empty-sets] Set : maxSize == 0 && allocCount >= 8 -> LazySet
  "Space: redundant set allocation"
[mostly-empty-lists] List : maxSize < 1 && allocCount >= 8
    -> LazyArrayList
  "Space: most collections at this context stay empty — allocate lazily"
[mostly-empty-maps] Map : maxSize < 1 && allocCount >= 8 -> LazyMap
  "Space: most maps at this context stay empty — allocate lazily"
[mostly-empty-sets] Set : maxSize < 1 && allocCount >= 8 -> LazySet
  "Space: most sets at this context stay empty — allocate lazily"

// -- Shape-specialised replacements ---------------------------------------
[singleton-lists] ArrayList : maxSize == 1 && @maxSize == 0
    && #remove(Object) + #remove(int) + #add(int,Object) < 1
    && allocCount >= 8 -> SingletonList
  "Space: list always holds a single element"
[arraylist-contains] ArrayList : #contains > 32 && maxSize > 32
    -> LinkedHashSet
  "Time: inefficient use of an ArrayList: large volume of contains operations on a large sized list"
[linkedlist-random-access] LinkedList : #get(int) > 32 && maxSize > 8
    -> ArrayList
  "Time: inefficient use of a LinkedList: large volume of random accesses using get(i)"
[small-linkedlists, unstable] LinkedList : maxSize <= 1
    && #add(int,Object) + #addAll(int,Collection) + #remove(int) + #removeFirst < 1
    -> LazyArrayList
  "Space: LinkedList overhead not justified for lists that are mostly empty"
[linkedlist-overhead] LinkedList : maxSize > 1
    && #add(int,Object) + #addAll(int,Collection) + #remove(int) + #removeFirst < 1
    -> ArrayList
  "Space: LinkedList overhead not justified when adding/removing elements from the middle/head of the list is hardly performed"
[small-hashmap] HashMap : maxSize > 0 && maxSize <= 8 -> ArrayMap
  "Space: ArrayMap more efficient than a HashMap; Time: operations on a small array might be faster than on a HashMap"
[small-hashset] HashSet : maxSize > 0 && maxSize <= 8 -> ArraySet
  "Space: ArraySet more efficient than a HashSet; Time: operations on a small array might be faster than on a HashSet"

// -- Capacity tuning ---------------------------------------------------
// Restricted to capacity-backed source types: an initial capacity means
// nothing for a LinkedList.
[incremental-resizing] ArrayList : maxSize > initialCapacity
    -> setCapacity(maxSize)
  "Space/Time: incremental resizing — set initial capacity"
[incremental-resizing-maps] Map : maxSize > initialCapacity
    -> setCapacity(maxSize)
  "Space/Time: incremental resizing — set initial capacity"
[incremental-resizing-sets] Set : maxSize > initialCapacity
    -> setCapacity(maxSize)
  "Space/Time: incremental resizing — set initial capacity"
[oversized-capacity] ArrayList : maxSize > 0
    && initialCapacity > 2 * maxSize + 4 -> setCapacity(maxSize)
  "Space: oversized initial capacity — set initial capacity"
[oversized-capacity-maps] Map : maxSize > 0
    && initialCapacity > 2 * maxSize + 4 -> setCapacity(maxSize)
  "Space: oversized initial capacity — set initial capacity"
[oversized-capacity-sets] Set : maxSize > 0
    && initialCapacity > 2 * maxSize + 4 -> setCapacity(maxSize)
  "Space: oversized initial capacity — set initial capacity"

// -- Advisories ------------------------------------------------------------
[never-used] Collection : #allOps == 0 && allocCount >= 8 -> warn
  "Space/Time: redundant collection — avoid allocation"
[redundant-copies] Collection : #allOps == #copied && #copied > 0 -> warn
  "Space/Time: redundant copying of collections — eliminate temporaries"
[empty-iterators] Collection : #iteratorEmpty > 8 -> warn
  "Space: redundant iterators over empty collections"
)rules";
}

void RuleEngine::addBuiltinRules() {
  ParseResult Result = addRules(builtinRulesText());
  assert(Result.succeeded() && "built-in rules must parse");
  (void)Result;
}

bool RuleEngine::srcTypeMatches(const std::string &SrcType,
                                const std::string &TypeName) const {
  if (SrcType == "Collection" || SrcType == TypeName)
    return true;
  // ADT-level match: "List" matches ArrayList, LinkedList, and any custom
  // list-shaped type registered via registerSourceType.
  std::optional<AdtKind> Adt;
  if (std::optional<ImplKind> Impl = defaultImplForSourceType(TypeName)) {
    Adt = adtOfImpl(*Impl);
  } else {
    auto It = CustomSourceAdts.find(TypeName);
    if (It != CustomSourceAdts.end())
      Adt = It->second;
  }
  return Adt && SrcType == adtKindName(*Adt);
}

bool RuleEngine::isStable(const ContextInfo &Info, bool UsedMaxSize,
                          bool UsedFinalSize) const {
  auto Stable = [&](const RunningStat &Stat) {
    return Stat.stddev()
           <= Config.Stability.MaxAbsStddev
                  + Config.Stability.MaxRelStddev * Stat.mean();
  };
  if (UsedMaxSize && !Stable(Info.maxSizeStat()))
    return false;
  if (UsedFinalSize && !Stable(Info.finalSizeStat()))
    return false;
  return true;
}

const char *RuleEngine::ruleOutcomeName(RuleOutcome Outcome) {
  switch (Outcome) {
  case RuleOutcome::Fired:
    return "fired";
  case RuleOutcome::NeverFires:
    return "statically can never fire";
  case RuleOutcome::SrcTypeMismatch:
    return "source type mismatch";
  case RuleOutcome::TooFewSamples:
    return "too few folded instances";
  case RuleOutcome::ConditionFalse:
    return "condition false";
  case RuleOutcome::MissingParam:
    return "unbound $-parameter";
  case RuleOutcome::Unstable:
    return "suppressed by stability gate";
  case RuleOutcome::GatedByPotential:
    return "below the potential threshold";
  }
  CHAM_UNREACHABLE("unknown RuleOutcome");
}

RuleEngine::RuleOutcome
RuleEngine::evaluateRule(const Rule &R, const ContextInfo &Info,
                         const SemanticProfiler &Profiler, Suggestion *Out,
                         unsigned *DivGuardHits) const {
  if (R.NeverFires)
    return RuleOutcome::NeverFires;
  if (Info.foldedInstances() < Config.MinSamples)
    return RuleOutcome::TooFewSamples;
  if (!srcTypeMatches(R.SrcType, Info.typeName()))
    return RuleOutcome::SrcTypeMismatch;

  Evaluator Eval(Info, Profiler, &Params);
  bool CondHolds = Eval.evalCond(*R.Condition);
  if (DivGuardHits)
    *DivGuardHits = Eval.divGuardHits();
  if (Eval.missingParam())
    return RuleOutcome::MissingParam;
  if (!CondHolds)
    return RuleOutcome::ConditionFalse;
  if (!R.IgnoreStability
      && !isStable(Info, Eval.usedMaxSize(), Eval.usedFinalSize()))
    return RuleOutcome::Unstable;
  if (Config.MinPotentialBytes != 0
      && R.Category.find("Space") != std::string::npos
      && R.Category.find("Time") == std::string::npos
      && Info.savingPotential() < Config.MinPotentialBytes)
    return RuleOutcome::GatedByPotential;

  std::optional<uint32_t> Capacity;
  if (R.Capacity) {
    double Cap = Eval.evalExpr(*R.Capacity);
    if (DivGuardHits)
      *DivGuardHits = Eval.divGuardHits();
    if (Eval.missingParam())
      return RuleOutcome::MissingParam;
    Capacity = static_cast<uint32_t>(std::max(1.0, std::ceil(Cap)));
  }

  if (Out) {
    Out->Context = &Info;
    Out->ContextLabel = Profiler.contextLabel(Info);
    Out->RuleName = R.Name;
    Out->Action = R.Action;
    Out->NewImpl = R.NewImpl;
    Out->Category = R.Category;
    Out->Message = R.Message;
    Out->PotentialBytes = Info.savingPotential();
    Out->Capacity = Capacity;
  }
  return RuleOutcome::Fired;
}

void RuleEngine::evaluateContext(const ContextInfo &Info,
                                 const SemanticProfiler &Profiler,
                                 std::vector<Suggestion> &Out) const {
  CHAM_TRACE_INSTANT_ARG("rules", "evaluate_context", "ctx",
                         static_cast<int64_t>(Info.id()));
  obs::DecisionLog &Ledger = obs::DecisionLog::instance();
  bool Led = Ledger.enabled();
  if (Led) {
    // Provenance: the Table-1 inputs this evaluation epoch saw, before
    // any rule verdicts reference them.
    std::vector<std::string> Names;
    Names.reserve(Rules.size());
    for (const Rule &R : Rules)
      Names.push_back(R.Name);
    Ledger.noteRuleNames(Names);
    Ledger.noteImplNames(implNameTable());
    Ledger.noteContextLabel(Info.id(), Profiler.contextLabel(Info));
    obs::DecisionRecord Snap;
    Snap.CtxId = Info.id();
    Snap.Epoch = Ledger.currentEpoch();
    Snap.Kind = obs::DecisionKind::Snapshot;
    Snap.Allocations = Info.allocations();
    Snap.Folded = Info.foldedInstances();
    Snap.TotLive = Info.liveData().total();
    Snap.TotUsed = Info.usedData().total();
    Snap.TotCore = Info.coreData().total();
    Snap.AvgOps = Info.avgAllOps();
    Snap.AvgMaxSize = Info.maxSizeStat().mean();
    Ledger.record(Snap);
  }
  size_t Fired = 0;
  int16_t RuleIdx = 0;
  for (const Rule &R : Rules) {
    Suggestion S;
    unsigned DivGuardHits = 0;
    RuleOutcome Outcome =
        evaluateRule(R, Info, Profiler, &S, Led ? &DivGuardHits : nullptr);
    if (Led) {
      obs::DecisionRecord Rec;
      Rec.CtxId = Info.id();
      Rec.Epoch = Ledger.currentEpoch();
      Rec.Kind = obs::DecisionKind::RuleOutcome;
      Rec.Rule = RuleIdx;
      Rec.Outcome = ledgerOutcome(Outcome);
      Rec.DivGuard = static_cast<uint16_t>(
          DivGuardHits > 0xffff ? 0xffff : DivGuardHits);
      if (Outcome == RuleOutcome::Fired && S.Action == ActionKind::Replace)
        Rec.Impl = static_cast<uint8_t>(implIndex(S.NewImpl));
      if (Outcome == RuleOutcome::Fired)
        Rec.Capacity = S.Capacity.value_or(0);
      Ledger.record(Rec);
    }
    if (Outcome == RuleOutcome::Fired) {
      Out.push_back(std::move(S));
      ++Fired;
    }
    ++RuleIdx;
  }
  RuleEvaluations.add(Rules.size());
  RuleFired.add(Fired);
}

std::string
RuleEngine::explainContext(const ContextInfo &Info,
                           const SemanticProfiler &Profiler,
                           const OnlineSelector *Selector,
                           size_t TraceInstantLimit) const {
  std::string Text = "rules for " + Profiler.contextLabel(Info) + ":\n";
  for (const Rule &R : Rules) {
    Suggestion S;
    unsigned DivGuardHits = 0;
    RuleOutcome Outcome = evaluateRule(R, Info, Profiler, &S, &DivGuardHits);
    Text += "  [";
    Text += R.Name;
    Text += "] ";
    Text += ruleOutcomeName(Outcome);
    if (Outcome == RuleOutcome::Fired) {
      Text += " -> ";
      Text += S.fixDescription();
    }
    // Load-time sema findings (unsatisfiable condition, parameter unbound
    // when the rule was installed) explain *why* a rule stays silent.
    if (!R.SemaNote.empty()) {
      Text += " (";
      Text += R.SemaNote;
      Text += ')';
    }
    // A ratio rule over an empty profile divides by zero; the evaluator
    // defines x/0 = 0, which usually makes the condition quietly false.
    // Say so, or the silence is undiagnosable from the report.
    if (DivGuardHits != 0) {
      Text += " (division guard: ";
      Text += std::to_string(DivGuardHits);
      Text += DivGuardHits == 1 ? " division by zero evaluated as 0"
                                : " divisions by zero evaluated as 0";
      Text += ')';
    }
    Text += '\n';
  }
  // Live-migration state: what actually happened to this context, next to
  // what the rules say should happen.
  if (Info.migrationCommits() != 0 || Info.migrationAborts() != 0) {
    Text += "  migrations: " + std::to_string(Info.migrationCommits())
            + " committed, " + std::to_string(Info.migrationAborts())
            + " aborted\n";
  }
  if (Selector) {
    std::string State = Selector->describeContext(&Info);
    if (!State.empty())
      Text += "  " + State + '\n';
  }
  // The context's recent telemetry instants (migration aborts, online
  // decisions, ...) — only those tagged with this context's id.
  std::vector<obs::TraceEvent> Recent = obs::TraceRecorder::instance()
      .recentByArg("ctx", static_cast<int64_t>(Info.id()),
                   TraceInstantLimit);
  if (!Recent.empty()) {
    Text += "  recent telemetry:\n";
    for (const obs::TraceEvent &Ev : Recent) {
      char Line[128];
      std::snprintf(Line, sizeof(Line), "    [%s] %s @%.3fms\n",
                    Ev.Category, Ev.Name,
                    static_cast<double>(Ev.StartNanos) / 1e6);
      Text += Line;
    }
  }
  return Text;
}

std::vector<Suggestion>
RuleEngine::evaluate(const SemanticProfiler &Profiler) const {
  std::vector<Suggestion> Out;
  for (ContextInfo *Info : Profiler.rankedByPotential())
    evaluateContext(*Info, Profiler, Out);
  return Out;
}

ReplacementPlan
RuleEngine::buildPlan(const std::vector<Suggestion> &Suggs) {
  ReplacementPlan Plan;
  for (const Suggestion &S : Suggs) {
    if (S.Action == ActionKind::Warn)
      continue;
    const PlanDecision *Existing = Plan.lookup(S.ContextLabel);
    PlanDecision Decision = Existing ? *Existing : PlanDecision();
    if (S.Action == ActionKind::Replace && !Decision.Impl) {
      Decision.Impl = S.NewImpl;
      if (S.Capacity && !Decision.Capacity)
        Decision.Capacity = S.Capacity;
    } else if (S.Action == ActionKind::SetCapacity && !Decision.Capacity) {
      Decision.Capacity = S.Capacity;
    }
    if (!Decision.empty())
      Plan.add(S.ContextLabel, Decision);
  }
  return Plan;
}

std::string
RuleEngine::renderReport(const std::vector<Suggestion> &Suggs) {
  std::string Out;
  unsigned Index = 1;
  for (const Suggestion &S : Suggs) {
    Out += std::to_string(Index++);
    Out += ": ";
    Out += S.ContextLabel;
    Out += ' ';
    Out += S.fixDescription();
    if (!S.Category.empty() && S.Action != ActionKind::Warn) {
      Out += "  [";
      Out += S.Category;
      Out += ": ";
      Out += S.RuleName;
      Out += ']';
    }
    Out += '\n';
  }
  return Out;
}
