//===--- RuleEngine.h - The collection-selection rule engine ---*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule engine of paper §3.3: evaluates selection rules over every
/// allocation context's profile and emits per-context suggestions, which
/// can be rendered as the paper's report or compiled into a
/// `ReplacementPlan` for automatic application. Built-in rules implement
/// Table 2 (plus the singleton-list, lazy-map and oversized-capacity
/// refinements the paper's case studies apply manually).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RULES_RULEENGINE_H
#define CHAMELEON_RULES_RULEENGINE_H

#include "collections/ReplacementPlan.h"
#include "rules/Evaluator.h"
#include "rules/Parser.h"
#include "rules/Sema.h"

#include <string>
#include <vector>

namespace chameleon {
// Declared in collections/CollectionRuntime.h; explainContext only calls
// through a pointer, so the rules layer needs no include of the runtime.
class OnlineSelector;
} // namespace chameleon

namespace chameleon::rules {

/// Stability thresholds (Definition 3.1). A size metric is stable when
/// stddev <= MaxAbsStddev + MaxRelStddev * mean.
struct StabilityConfig {
  double MaxAbsStddev = 1.0;
  double MaxRelStddev = 0.25;
};

/// Engine configuration.
struct RuleEngineConfig {
  StabilityConfig Stability;
  /// Space-category suggestions are dropped for contexts whose saving
  /// potential (totLive - totUsed) is below this many bytes.
  uint64_t MinPotentialBytes = 0;
  /// Contexts with fewer folded instances than this are not judged at all
  /// (not enough samples for the Table-1 averages to mean anything).
  uint64_t MinSamples = 4;
};

/// One fired rule at one context.
struct Suggestion {
  const ContextInfo *Context = nullptr;
  std::string ContextLabel;
  std::string RuleName;
  ActionKind Action = ActionKind::Warn;
  /// Replace target (Action == Replace).
  ImplKind NewImpl = ImplKind::ArrayList;
  /// Evaluated capacity (Replace-with-capacity or SetCapacity).
  std::optional<uint32_t> Capacity;
  std::string Category;
  std::string Message;
  /// The context's saving potential when the rule fired.
  uint64_t PotentialBytes = 0;

  /// "replace with ArrayMap" / "set initial capacity (3)" / the message.
  std::string fixDescription() const;
};

/// The rule engine: an ordered rule list plus evaluation.
class RuleEngine {
public:
  explicit RuleEngine(RuleEngineConfig Config = RuleEngineConfig());

  /// Appends rules parsed from \p Source. Returns the parse result; rules
  /// that parsed are installed even when others produced diagnostics.
  ///
  /// \p Mode selects how much semantic analysis runs on top of parsing
  /// (see rules/Sema.h):
  ///  - Off: parse only (historical behaviour).
  ///  - Warn: sema diagnostics are appended to the returned Diags; all
  ///    parsed rules are installed. Rules proven unable to fire are marked
  ///    and short-circuited at evaluation (RuleOutcome::NeverFires), and
  ///    rules referencing parameters unbound *at load time* carry a note
  ///    surfaced by explainContext.
  ///  - Strict: like Warn, but if any diagnostic is an error (parse or
  ///    sema) the whole file is rejected and nothing is installed.
  ParseResult addRules(const std::string &Source,
                       SemaMode Mode = SemaMode::Off);

  /// Installs the built-in Table-2 rule set.
  void addBuiltinRules();

  /// The built-in rule set as rule-language source (also documentation).
  static const char *builtinRulesText();

  /// Installed rules, in evaluation order.
  const std::vector<Rule> &rules() const { return Rules; }

  const RuleEngineConfig &config() const { return Config; }
  RuleEngineConfig &config() { return Config; }

  /// Binds a $-parameter; rules referencing unbound parameters never fire
  /// (§3.3.1: constants "may be tuned per specific environment").
  void setParam(const std::string &Name, double Value) {
    Params[Name] = Value;
  }

  /// The current parameter bindings.
  const RuleParams &params() const { return Params; }

  /// Teaches the engine the abstract type of a custom source-level
  /// collection name so that "List"/"Set"/"Map" rules match its contexts
  /// (built-in names are known automatically).
  void registerSourceType(const std::string &Name, AdtKind Adt) {
    CustomSourceAdts[Name] = Adt;
  }

  /// Why a rule did or did not fire for a context.
  enum class RuleOutcome : uint8_t {
    Fired,
    NeverFires,        ///< sema proved the condition unsatisfiable at load
    SrcTypeMismatch,   ///< the rule's srcType does not match the context
    TooFewSamples,     ///< below Config.MinSamples folded instances
    ConditionFalse,    ///< the condition evaluated to false
    MissingParam,      ///< the rule references an unbound $-parameter
    Unstable,          ///< suppressed by the Definition 3.1 gate
    GatedByPotential,  ///< space rule below Config.MinPotentialBytes
  };

  /// Printable outcome name.
  static const char *ruleOutcomeName(RuleOutcome Outcome);

  /// Evaluates one rule against one context; fills \p Out when it fires.
  /// When \p DivGuardHits is non-null it receives the number of divisions
  /// the evaluator's x/0 = 0 guard absorbed while evaluating this rule.
  RuleOutcome evaluateRule(const Rule &R, const ContextInfo &Info,
                           const SemanticProfiler &Profiler, Suggestion *Out,
                           unsigned *DivGuardHits = nullptr) const;

  /// Evaluates every rule against one context; appends fired suggestions.
  void evaluateContext(const ContextInfo &Info,
                       const SemanticProfiler &Profiler,
                       std::vector<Suggestion> &Out) const;

  /// Renders, rule by rule, why each fired or stayed silent for one
  /// context — the debuggability view for tuning rule constants. When a
  /// \p Selector is given (the runtime's online selector), its per-context
  /// adaptation state (plan, migration backoff, pin) is appended, along
  /// with the context's migration commit/abort counts and — when the trace
  /// recorder holds any — the last \p TraceInstantLimit telemetry instants
  /// tagged with this context's id.
  std::string explainContext(const ContextInfo &Info,
                             const SemanticProfiler &Profiler,
                             const OnlineSelector *Selector = nullptr,
                             size_t TraceInstantLimit = 8) const;

  /// Evaluates every context in the profiler, ranked by saving potential.
  std::vector<Suggestion> evaluate(const SemanticProfiler &Profiler) const;

  /// Compiles suggestions into a replacement plan: per context, the first
  /// Replace rule (in rule order) decides the implementation and the first
  /// capacity-bearing rule decides the capacity.
  static ReplacementPlan buildPlan(const std::vector<Suggestion> &Suggs);

  /// Renders suggestions in the succinct per-context format of §2.1
  /// ("1: HashMap:site;caller replace with ArrayMap").
  static std::string renderReport(const std::vector<Suggestion> &Suggs);

private:
  /// True when \p SrcType (rule) matches a context allocating \p TypeName.
  bool srcTypeMatches(const std::string &SrcType,
                      const std::string &TypeName) const;

  /// The stability gate of Definition 3.1.
  bool isStable(const ContextInfo &Info, bool UsedMaxSize,
                bool UsedFinalSize) const;

  RuleEngineConfig Config;
  std::vector<Rule> Rules;
  RuleParams Params;
  std::unordered_map<std::string, AdtKind> CustomSourceAdts;
};

} // namespace chameleon::rules

#endif // CHAMELEON_RULES_RULEENGINE_H
