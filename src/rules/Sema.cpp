//===--- Sema.cpp - Semantic analysis of rule files -----------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Sema.h"

#include "rules/Parser.h"
#include "rules/Printer.h"
#include "support/Assert.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <set>

using namespace chameleon;
using namespace chameleon::rules;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

/// A (possibly half-open) interval of doubles with open/closed endpoints.
/// Infinite endpoints are always treated as open (the value is never
/// attained).
struct Interval {
  double Lo = -Inf;
  double Hi = Inf;
  bool LoOpen = true;
  bool HiOpen = true;

  static Interval top() { return Interval(); }

  static Interval point(double V) { return {V, V, false, false}; }

  static Interval nonNegative() { return {0.0, Inf, false, true}; }

  static Interval make(double Lo, bool LoOpen, double Hi, bool HiOpen) {
    Interval I{Lo, Hi, LoOpen, HiOpen};
    I.normalize();
    return I;
  }

  void normalize() {
    if (!std::isfinite(Lo))
      LoOpen = true;
    if (!std::isfinite(Hi))
      HiOpen = true;
  }

  bool empty() const {
    return Lo > Hi || (Lo == Hi && (LoOpen || HiOpen));
  }

  bool isPoint() const { return Lo == Hi && !LoOpen && !HiOpen; }

  Interval intersect(const Interval &O) const {
    Interval R;
    if (Lo > O.Lo) {
      R.Lo = Lo;
      R.LoOpen = LoOpen;
    } else if (Lo < O.Lo) {
      R.Lo = O.Lo;
      R.LoOpen = O.LoOpen;
    } else {
      R.Lo = Lo;
      R.LoOpen = LoOpen || O.LoOpen;
    }
    if (Hi < O.Hi) {
      R.Hi = Hi;
      R.HiOpen = HiOpen;
    } else if (Hi > O.Hi) {
      R.Hi = O.Hi;
      R.HiOpen = O.HiOpen;
    } else {
      R.Hi = Hi;
      R.HiOpen = HiOpen || O.HiOpen;
    }
    return R;
  }

  /// True when \p Inner is a subset of this interval.
  bool contains(const Interval &Inner) const {
    bool LoOk = Lo < Inner.Lo || (Lo == Inner.Lo && (!LoOpen || Inner.LoOpen));
    bool HiOk = Hi > Inner.Hi || (Hi == Inner.Hi && (!HiOpen || Inner.HiOpen));
    return LoOk && HiOk;
  }
};

double safeMul(double A, double B) {
  // 0 * inf arises when a bounded-at-zero domain meets an unbounded one;
  // the finite factor is exactly zero, so the product is too.
  if (A == 0.0 || B == 0.0)
    return 0.0;
  return A * B;
}

Interval addIntervals(const Interval &L, const Interval &R) {
  return Interval::make(L.Lo + R.Lo, L.LoOpen || R.LoOpen, L.Hi + R.Hi,
                        L.HiOpen || R.HiOpen);
}

Interval subIntervals(const Interval &L, const Interval &R) {
  return Interval::make(L.Lo - R.Hi, L.LoOpen || R.HiOpen, L.Hi - R.Lo,
                        L.HiOpen || R.LoOpen);
}

Interval mulIntervals(const Interval &L, const Interval &R) {
  double C[4] = {safeMul(L.Lo, R.Lo), safeMul(L.Lo, R.Hi),
                 safeMul(L.Hi, R.Lo), safeMul(L.Hi, R.Hi)};
  double Lo = *std::min_element(C, C + 4);
  double Hi = *std::max_element(C, C + 4);
  // Endpoint openness is dropped (closed is the conservative superset).
  return Interval::make(Lo, false, Hi, false);
}

Interval divIntervals(const Interval &L, const Interval &R) {
  if (R.isPoint()) {
    // The evaluator defines x/0 = 0 so ratio rules simply do not fire on
    // empty profiles; fold the same way.
    if (R.Lo == 0.0)
      return Interval::point(0.0);
    double A = L.Lo / R.Lo;
    double B = L.Hi / R.Lo;
    return Interval::make(std::min(A, B), false, std::max(A, B), false);
  }
  return Interval::top();
}

/// Every Table-1 metric is a count, a size, a byte measure or a stddev —
/// all non-negative.
Interval intervalOfExpr(const Expr &E, const RuleParams *Params) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return Interval::point(static_cast<const NumberExpr &>(E).Value);
  case Expr::Kind::Metric:
  case Expr::Kind::OpCount:
  case Expr::Kind::OpStddev:
    return Interval::nonNegative();
  case Expr::Kind::Param: {
    const auto &P = static_cast<const ParamExpr &>(E);
    if (Params) {
      auto It = Params->find(P.Name);
      if (It != Params->end())
        return Interval::point(It->second);
    }
    return Interval::top();
  }
  case Expr::Kind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    Interval L = intervalOfExpr(*B.Lhs, Params);
    Interval R = intervalOfExpr(*B.Rhs, Params);
    switch (B.Op) {
    case BinaryExpr::Operator::Add:
      return addIntervals(L, R);
    case BinaryExpr::Operator::Sub:
      return subIntervals(L, R);
    case BinaryExpr::Operator::Mul:
      return mulIntervals(L, R);
    case BinaryExpr::Operator::Div:
      return divIntervals(L, R);
    }
    CHAM_UNREACHABLE("unknown binary operator");
  }
  }
  CHAM_UNREACHABLE("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Metric lattice (Table 1)
//===----------------------------------------------------------------------===//

/// Direct "always <=" edges between heap metrics: core <= used <= live <=
/// whole-heap live; a per-cycle maximum never exceeds the lifetime total
/// of the same measure (values are non-negative); the saving potential is
/// totLive - totUsed <= totLive.
bool metricLeqDirect(MetricKind A, MetricKind B) {
  switch (A) {
  case MetricKind::TotCore:
    return B == MetricKind::TotUsed;
  case MetricKind::TotUsed:
    return B == MetricKind::TotLive;
  case MetricKind::TotLive:
    return B == MetricKind::HeapTotLive;
  case MetricKind::MaxCore:
    return B == MetricKind::MaxUsed || B == MetricKind::TotCore;
  case MetricKind::MaxUsed:
    return B == MetricKind::MaxLive || B == MetricKind::TotUsed;
  case MetricKind::MaxLive:
    return B == MetricKind::TotLive || B == MetricKind::HeapMaxLive;
  case MetricKind::MaxObjects:
    return B == MetricKind::TotObjects;
  case MetricKind::HeapMaxLive:
    return B == MetricKind::HeapTotLive;
  case MetricKind::Potential:
    return B == MetricKind::TotLive;
  default:
    return false;
  }
}

/// Reflexive-transitive closure of metricLeqDirect.
bool metricAlwaysLeq(MetricKind A, MetricKind B) {
  if (A == B)
    return true;
  bool Visited[NumMetricKinds] = {};
  MetricKind Stack[NumMetricKinds];
  unsigned Top = 0;
  Stack[Top++] = A;
  Visited[static_cast<unsigned>(A)] = true;
  while (Top > 0) {
    MetricKind Cur = Stack[--Top];
    for (unsigned I = 0; I < NumMetricKinds; ++I) {
      MetricKind Next = static_cast<MetricKind>(I);
      if (Visited[I] || !metricLeqDirect(Cur, Next))
        continue;
      if (Next == B)
        return true;
      Visited[I] = true;
      Stack[Top++] = Next;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Three-valued comparison truth
//===----------------------------------------------------------------------===//

enum class Truth : uint8_t { False, True, Unknown };

bool alwaysLess(const Interval &L, const Interval &R) {
  if (L.Hi < R.Lo)
    return true;
  return L.Hi == R.Lo && std::isfinite(L.Hi) && (L.HiOpen || R.LoOpen);
}

bool alwaysLeq(const Interval &L, const Interval &R) {
  return L.Hi < R.Lo || (L.Hi == R.Lo && std::isfinite(L.Hi));
}

Truth compareTruth(const CompareCond &C, const RuleParams *Params) {
  // Structurally identical deterministic operands compare equal under any
  // profile and any binding.
  if (printExpr(*C.Lhs) == printExpr(*C.Rhs)) {
    switch (C.Op) {
    case CompareCond::Operator::Eq:
    case CompareCond::Operator::Le:
    case CompareCond::Operator::Ge:
      return Truth::True;
    case CompareCond::Operator::Lt:
    case CompareCond::Operator::Gt:
    case CompareCond::Operator::Ne:
      return Truth::False;
    }
  }

  // Lattice facts between bare metrics.
  if (C.Lhs->kind() == Expr::Kind::Metric
      && C.Rhs->kind() == Expr::Kind::Metric) {
    MetricKind A = static_cast<const MetricExpr &>(*C.Lhs).Metric;
    MetricKind B = static_cast<const MetricExpr &>(*C.Rhs).Metric;
    if (metricAlwaysLeq(A, B)) {
      if (C.Op == CompareCond::Operator::Le)
        return Truth::True;
      if (C.Op == CompareCond::Operator::Gt)
        return Truth::False;
    }
    if (metricAlwaysLeq(B, A)) {
      if (C.Op == CompareCond::Operator::Ge)
        return Truth::True;
      if (C.Op == CompareCond::Operator::Lt)
        return Truth::False;
    }
  }

  Interval L = intervalOfExpr(*C.Lhs, Params);
  Interval R = intervalOfExpr(*C.Rhs, Params);
  switch (C.Op) {
  case CompareCond::Operator::Lt:
    if (alwaysLess(L, R))
      return Truth::True;
    if (alwaysLeq(R, L))
      return Truth::False;
    return Truth::Unknown;
  case CompareCond::Operator::Le:
    if (alwaysLeq(L, R))
      return Truth::True;
    if (alwaysLess(R, L))
      return Truth::False;
    return Truth::Unknown;
  case CompareCond::Operator::Gt:
    if (alwaysLess(R, L))
      return Truth::True;
    if (alwaysLeq(L, R))
      return Truth::False;
    return Truth::Unknown;
  case CompareCond::Operator::Ge:
    if (alwaysLeq(R, L))
      return Truth::True;
    if (alwaysLess(L, R))
      return Truth::False;
    return Truth::Unknown;
  case CompareCond::Operator::Eq:
    if (L.isPoint() && R.isPoint() && L.Lo == R.Lo)
      return Truth::True;
    if (L.intersect(R).empty())
      return Truth::False;
    return Truth::Unknown;
  case CompareCond::Operator::Ne:
    if (L.isPoint() && R.isPoint() && L.Lo == R.Lo)
      return Truth::False;
    if (L.intersect(R).empty())
      return Truth::True;
    return Truth::Unknown;
  }
  CHAM_UNREACHABLE("unknown comparison operator");
}

//===----------------------------------------------------------------------===//
// Conjunction bounds and satisfiability
//===----------------------------------------------------------------------===//

/// Constraint interval for "v op C" over v.
Interval constraintFromOp(CompareCond::Operator Op, double C) {
  switch (Op) {
  case CompareCond::Operator::Lt:
    return Interval::make(-Inf, true, C, true);
  case CompareCond::Operator::Le:
    return Interval::make(-Inf, true, C, false);
  case CompareCond::Operator::Gt:
    return Interval::make(C, true, Inf, true);
  case CompareCond::Operator::Ge:
    return Interval::make(C, false, Inf, true);
  case CompareCond::Operator::Eq:
    return Interval::point(C);
  case CompareCond::Operator::Ne:
    return Interval::top(); // not encodable as one interval
  }
  CHAM_UNREACHABLE("unknown comparison operator");
}

CompareCond::Operator mirrorOp(CompareCond::Operator Op) {
  switch (Op) {
  case CompareCond::Operator::Lt:
    return CompareCond::Operator::Gt;
  case CompareCond::Operator::Le:
    return CompareCond::Operator::Ge;
  case CompareCond::Operator::Gt:
    return CompareCond::Operator::Lt;
  case CompareCond::Operator::Ge:
    return CompareCond::Operator::Le;
  case CompareCond::Operator::Eq:
  case CompareCond::Operator::Ne:
    return Op;
  }
  CHAM_UNREACHABLE("unknown comparison operator");
}

/// One comparison rendered as "expression constrained to an interval":
/// succeeds when exactly one side folds to a point value. The constraint
/// is pre-intersected with the expression's own domain.
struct EncodedCompare {
  std::string Key; ///< canonical spelling of the constrained expression
  Interval I;
};

std::optional<EncodedCompare> encodeCompare(const CompareCond &C,
                                            const RuleParams *Params) {
  if (C.Op == CompareCond::Operator::Ne)
    return std::nullopt;
  Interval L = intervalOfExpr(*C.Lhs, Params);
  Interval R = intervalOfExpr(*C.Rhs, Params);
  if (R.isPoint() && !L.isPoint())
    return EncodedCompare{printExpr(*C.Lhs),
                          constraintFromOp(C.Op, R.Lo).intersect(L)};
  if (L.isPoint() && !R.isPoint())
    return EncodedCompare{printExpr(*C.Rhs),
                          constraintFromOp(mirrorOp(C.Op), L.Lo).intersect(R)};
  return std::nullopt;
}

/// Per-expression bounds implied by a condition. Exact means every
/// conjunct was encoded, so the map *characterizes* the condition (needed
/// on the implied side of a shadowing check); inexact maps are sound
/// over-approximations (fine on the implying side).
struct CondBounds {
  std::map<std::string, Interval> M;
  bool Exact = true;

  void add(const EncodedCompare &E) {
    auto It = M.find(E.Key);
    if (It == M.end())
      M.emplace(E.Key, E.I);
    else
      It->second = It->second.intersect(E.I);
  }
};

/// Encodes a pure conjunction of comparisons; nullopt for any condition
/// containing '||' or '!'.
std::optional<CondBounds> encodeCond(const Cond &C, const RuleParams *Params) {
  switch (C.kind()) {
  case Cond::Kind::Compare: {
    CondBounds B;
    if (std::optional<EncodedCompare> E =
            encodeCompare(static_cast<const CompareCond &>(C), Params))
      B.add(*E);
    else
      B.Exact = false;
    return B;
  }
  case Cond::Kind::And: {
    const auto &A = static_cast<const AndCond &>(C);
    std::optional<CondBounds> L = encodeCond(*A.Lhs, Params);
    std::optional<CondBounds> R = encodeCond(*A.Rhs, Params);
    if (!L || !R)
      return std::nullopt;
    for (const auto &[Key, I] : R->M)
      L->add({Key, I});
    L->Exact = L->Exact && R->Exact;
    return L;
  }
  case Cond::Kind::Or:
  case Cond::Kind::Not:
    return std::nullopt;
  }
  CHAM_UNREACHABLE("unknown condition kind");
}

/// Why a condition was proven unsatisfiable.
struct UnsatInfo {
  const Cond *Where = nullptr;
  std::string Detail;
};

bool definitelyUnsat(const Cond &C, const RuleParams *Params, UnsatInfo &Info);

bool definitelyTrue(const Cond &C, const RuleParams *Params) {
  switch (C.kind()) {
  case Cond::Kind::Compare:
    return compareTruth(static_cast<const CompareCond &>(C), Params)
           == Truth::True;
  case Cond::Kind::And: {
    const auto &A = static_cast<const AndCond &>(C);
    return definitelyTrue(*A.Lhs, Params) && definitelyTrue(*A.Rhs, Params);
  }
  case Cond::Kind::Or: {
    const auto &O = static_cast<const OrCond &>(C);
    return definitelyTrue(*O.Lhs, Params) || definitelyTrue(*O.Rhs, Params);
  }
  case Cond::Kind::Not: {
    UnsatInfo Ignored;
    return definitelyUnsat(*static_cast<const NotCond &>(C).Inner, Params,
                           Ignored);
  }
  }
  CHAM_UNREACHABLE("unknown condition kind");
}

/// Flattens the And-subtree rooted at \p C, intersecting the bounds each
/// encodable comparison places on its expression. Returns true (filling
/// \p Info) when some expression's bounds become empty.
bool conjunctionContradicts(const Cond &C, const RuleParams *Params,
                            CondBounds &Acc, UnsatInfo &Info) {
  switch (C.kind()) {
  case Cond::Kind::And: {
    const auto &A = static_cast<const AndCond &>(C);
    return conjunctionContradicts(*A.Lhs, Params, Acc, Info)
           || conjunctionContradicts(*A.Rhs, Params, Acc, Info);
  }
  case Cond::Kind::Compare: {
    const auto &Cmp = static_cast<const CompareCond &>(C);
    std::optional<EncodedCompare> E = encodeCompare(Cmp, Params);
    if (!E)
      return false;
    Acc.add(*E);
    if (Acc.M.find(E->Key)->second.empty()) {
      Info.Where = &C;
      Info.Detail = "contradictory constraints on '" + E->Key + "'";
      return true;
    }
    return false;
  }
  default:
    return false; // Or/Not subtrees are handled recursively by the caller
  }
}

bool definitelyUnsat(const Cond &C, const RuleParams *Params,
                     UnsatInfo &Info) {
  switch (C.kind()) {
  case Cond::Kind::Compare: {
    const auto &Cmp = static_cast<const CompareCond &>(C);
    if (compareTruth(Cmp, Params) == Truth::False) {
      Info.Where = &C;
      Info.Detail = "'" + printCond(Cmp) + "' is always false";
      return true;
    }
    return false;
  }
  case Cond::Kind::And: {
    const auto &A = static_cast<const AndCond &>(C);
    if (definitelyUnsat(*A.Lhs, Params, Info)
        || definitelyUnsat(*A.Rhs, Params, Info))
      return true;
    CondBounds Acc;
    return conjunctionContradicts(C, Params, Acc, Info);
  }
  case Cond::Kind::Or: {
    const auto &O = static_cast<const OrCond &>(C);
    UnsatInfo Right;
    if (!definitelyUnsat(*O.Lhs, Params, Info))
      return false;
    return definitelyUnsat(*O.Rhs, Params, Right);
  }
  case Cond::Kind::Not:
    if (definitelyTrue(*static_cast<const NotCond &>(C).Inner, Params)) {
      Info.Where = &C;
      Info.Detail = "the negated condition is always true";
      return true;
    }
    return false;
  }
  CHAM_UNREACHABLE("unknown condition kind");
}

//===----------------------------------------------------------------------===//
// Metric scales (threshold-style warnings)
//===----------------------------------------------------------------------===//

/// Coarse unit of a bare metric leaf.
enum class Scale : uint8_t {
  OpsAvg,  ///< per-instance operation-count average
  SizeAvg, ///< per-instance size/capacity average (element counts)
  Stddev,  ///< a variance companion
  Count,   ///< lifetime instance/object counts
  Bytes,   ///< heap byte measures
};

std::optional<Scale> scaleOfLeaf(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::OpCount:
    return Scale::OpsAvg;
  case Expr::Kind::OpStddev:
    return Scale::Stddev;
  case Expr::Kind::Metric:
    switch (static_cast<const MetricExpr &>(E).Metric) {
    case MetricKind::AllOps:
      return Scale::OpsAvg;
    case MetricKind::MaxSize:
    case MetricKind::FinalSize:
    case MetricKind::InitialCapacity:
      return Scale::SizeAvg;
    case MetricKind::MaxSizeStddev:
    case MetricKind::FinalSizeStddev:
      return Scale::Stddev;
    case MetricKind::AllocCount:
    case MetricKind::TotObjects:
    case MetricKind::MaxObjects:
      return Scale::Count;
    case MetricKind::TotLive:
    case MetricKind::MaxLive:
    case MetricKind::TotUsed:
    case MetricKind::MaxUsed:
    case MetricKind::TotCore:
    case MetricKind::MaxCore:
    case MetricKind::Potential:
    case MetricKind::HeapTotLive:
    case MetricKind::HeapMaxLive:
      return Scale::Bytes;
    }
    CHAM_UNREACHABLE("unknown MetricKind");
  default:
    return std::nullopt;
  }
}

bool isPerInstance(Scale S) {
  return S == Scale::OpsAvg || S == Scale::SizeAvg || S == Scale::Stddev;
}

//===----------------------------------------------------------------------===//
// The analysis driver
//===----------------------------------------------------------------------===//

class Analyzer {
public:
  Analyzer(const std::vector<Rule> &Rules, const SemaOptions &Opts)
      : Rules(Rules), Opts(Opts) {}

  SemaResult run() {
    Result.Verdicts.resize(Rules.size());
    for (size_t I = 0; I < Rules.size(); ++I)
      analyzeRule(Rules[I], Result.Verdicts[I]);
    analyzeShadowing();
    analyzeUnusedParams();
    sortDiagnostics(Result.Diags);
    return std::move(Result);
  }

private:
  void emit(unsigned Line, unsigned Col, Severity Sev, const char *ID,
            std::string Message) {
    Result.Diags.push_back(
        {Line, Col, std::move(Message), Sev, std::string(ID)});
  }

  const RuleParams *params() const { return Opts.Params; }

  //===--- per-rule checks -------------------------------------------------//

  void analyzeRule(const Rule &R, SemaResult::RuleVerdict &Verdict) {
    checkParams(R, Verdict);
    checkTarget(R);
    checkCondition(R, Verdict);
  }

  void checkParams(const Rule &R, SemaResult::RuleVerdict &Verdict) {
    struct ParamUse {
      const ParamExpr *First;
    };
    std::map<std::string, ParamUse> Uses;
    auto Collect = [&](const Expr &E, auto &&Self) -> void {
      if (E.kind() == Expr::Kind::Param) {
        const auto &P = static_cast<const ParamExpr &>(E);
        ReferencedParams.insert(P.Name);
        Uses.emplace(P.Name, ParamUse{&P});
        return;
      }
      if (E.kind() == Expr::Kind::Binary) {
        const auto &B = static_cast<const BinaryExpr &>(E);
        Self(*B.Lhs, Self);
        Self(*B.Rhs, Self);
      }
    };
    auto CollectCond = [&](const Cond &C, auto &&Self) -> void {
      switch (C.kind()) {
      case Cond::Kind::Compare: {
        const auto &Cmp = static_cast<const CompareCond &>(C);
        Collect(*Cmp.Lhs, Collect);
        Collect(*Cmp.Rhs, Collect);
        return;
      }
      case Cond::Kind::And: {
        const auto &A = static_cast<const AndCond &>(C);
        Self(*A.Lhs, Self);
        Self(*A.Rhs, Self);
        return;
      }
      case Cond::Kind::Or: {
        const auto &O = static_cast<const OrCond &>(C);
        Self(*O.Lhs, Self);
        Self(*O.Rhs, Self);
        return;
      }
      case Cond::Kind::Not:
        Self(*static_cast<const NotCond &>(C).Inner, Self);
        return;
      }
    };
    if (R.Condition)
      CollectCond(*R.Condition, CollectCond);
    if (R.Capacity)
      Collect(*R.Capacity, Collect);

    for (const auto &[Name, Use] : Uses) {
      if (params() && params()->count(Name))
        continue;
      Verdict.UnboundParams.push_back(Name);
      emit(Use.First->Line, Use.First->Col, Severity::Warning,
           "sema-unbound-param",
           "rule '" + R.Name + "' references '$" + Name
               + "' with no binding; it can never fire until the parameter "
                 "is bound");
    }
  }

  void checkTarget(const Rule &R) {
    if (R.Action != ActionKind::Replace)
      return;
    AdtKind TargetAdt = adtOfImpl(R.NewImpl);
    if (std::optional<AdtKind> SrcAdt = adtOfSourceType(R.SrcType)) {
      if (!adaptImplToAdt(R.NewImpl, *SrcAdt)) {
        emit(R.TargetLine, R.TargetCol, Severity::Error,
             "sema-target-kind-mismatch",
             "rule '" + R.Name + "' replaces the "
                 + adtKindName(*SrcAdt) + " source '" + R.SrcType
                 + "' with the " + adtKindName(TargetAdt)
                 + " implementation '" + implKindName(R.NewImpl)
                 + "', which cannot back it");
        return;
      }
    }
    if (std::optional<ImplKind> SrcImpl = parseImplKind(R.SrcType)) {
      if (*SrcImpl == R.NewImpl && !R.Capacity)
        emit(R.TargetLine, R.TargetCol, Severity::Warning,
             "sema-self-replacement",
             "rule '" + R.Name + "' replaces '" + R.SrcType
                 + "' with itself and has no effect");
    }
  }

  void checkCondition(const Rule &R, SemaResult::RuleVerdict &Verdict) {
    if (!R.Condition)
      return;
    UnsatInfo Info;
    if (definitelyUnsat(*R.Condition, params(), Info)) {
      Verdict.NeverFires = true;
      const Cond *At = Info.Where ? Info.Where : R.Condition.get();
      emit(At->Line ? At->Line : R.Line, At->Line ? At->Col : R.Col,
           Severity::Error, "sema-never-fires",
           "rule '" + R.Name + "' can never fire: " + Info.Detail);
      return; // leaf-level warnings would be noise on a dead rule
    }
    walkCompares(*R.Condition, [&](const CompareCond &C, bool InsideOr) {
      Truth T = compareTruth(C, params());
      if (T == Truth::True) {
        emit(C.Line, C.Col, Severity::Warning, "sema-always-true",
             "comparison '" + printCond(C)
                 + "' is always true; the guard is redundant");
        return;
      }
      if (T == Truth::False && InsideOr) {
        emit(C.Line, C.Col, Severity::Warning, "sema-dead-branch",
             "comparison '" + printCond(C)
                 + "' is always false; this alternative is dead");
        return;
      }
      checkScales(C);
    });
  }

  template <class Fn>
  void walkCompares(const Cond &C, Fn &&Visit, bool InsideOr = false) {
    switch (C.kind()) {
    case Cond::Kind::Compare:
      Visit(static_cast<const CompareCond &>(C), InsideOr);
      return;
    case Cond::Kind::And: {
      const auto &A = static_cast<const AndCond &>(C);
      walkCompares(*A.Lhs, Visit, InsideOr);
      walkCompares(*A.Rhs, Visit, InsideOr);
      return;
    }
    case Cond::Kind::Or: {
      const auto &O = static_cast<const OrCond &>(C);
      walkCompares(*O.Lhs, Visit, true);
      walkCompares(*O.Rhs, Visit, true);
      return;
    }
    case Cond::Kind::Not:
      walkCompares(*static_cast<const NotCond &>(C).Inner, Visit, InsideOr);
      return;
    }
  }

  void checkScales(const CompareCond &C) {
    std::optional<Scale> L = scaleOfLeaf(*C.Lhs);
    std::optional<Scale> R = scaleOfLeaf(*C.Rhs);
    if (!L || !R || *L == *R)
      return;
    auto Pair = [&](Scale A, Scale B) {
      return (*L == A && *R == B) || (*L == B && *R == A);
    };
    if (Pair(Scale::OpsAvg, Scale::SizeAvg)) {
      emit(C.Line, C.Col, Severity::Warning, "sema-ops-size-comparison",
           "comparison '" + printCond(C)
               + "' relates an operation-count average to a size metric; "
                 "thresholds are usually constants or $-parameters");
      return;
    }
    bool Mixed = (isPerInstance(*L) && !isPerInstance(*R))
                 || (!isPerInstance(*L) && isPerInstance(*R))
                 || Pair(Scale::Count, Scale::Bytes);
    if (Mixed)
      emit(C.Line, C.Col, Severity::Warning, "sema-mixed-scope",
           "comparison '" + printCond(C)
               + "' mixes a per-instance average with a lifetime/heap "
                 "aggregate; these are different scales");
  }

  //===--- cross-rule checks -----------------------------------------------//

  /// True when every context matched by \p Inner's srcType is also matched
  /// by \p Outer's.
  static bool srcTypeCovers(const std::string &Outer,
                            const std::string &Inner) {
    if (Outer == Inner || Outer == "Collection")
      return true;
    if (std::optional<AdtKind> Adt = adtOfSourceType(Inner))
      return Outer == adtKindName(*Adt);
    return false;
  }

  /// True when rules \p A (earlier) and \p B (later) contend for the same
  /// slot of the replacement plan, so that A always firing first makes B's
  /// outcome unreachable.
  static bool sameDecisionChannel(const Rule &A, const Rule &B) {
    if (A.Action == ActionKind::Warn || B.Action == ActionKind::Warn)
      return false; // advisories all surface; nothing is lost
    if (B.Action == ActionKind::Replace)
      return A.Action == ActionKind::Replace;
    // B sets a capacity: shadowed by any earlier capacity-bearing rule.
    return A.Action == ActionKind::SetCapacity
           || (A.Action == ActionKind::Replace && A.Capacity != nullptr);
  }

  void analyzeShadowing() {
    // Pre-encode every condition once.
    std::vector<std::optional<CondBounds>> Enc(Rules.size());
    std::vector<std::string> Canon(Rules.size());
    for (size_t I = 0; I < Rules.size(); ++I) {
      if (Result.Verdicts[I].NeverFires || !Rules[I].Condition)
        continue;
      Enc[I] = encodeCond(*Rules[I].Condition, params());
      Canon[I] = printCond(*Rules[I].Condition);
    }

    for (size_t J = 1; J < Rules.size(); ++J) {
      const Rule &B = Rules[J];
      if (Result.Verdicts[J].NeverFires || !B.Condition)
        continue;
      for (size_t I = 0; I < J; ++I) {
        const Rule &A = Rules[I];
        if (Result.Verdicts[I].NeverFires || !A.Condition)
          continue;
        if (!sameDecisionChannel(A, B))
          continue;
        if (!srcTypeCovers(A.SrcType, B.SrcType))
          continue;
        // A must fire whenever B does; if B skips the stability gate but A
        // does not, A may be suppressed where B is not.
        if (B.IgnoreStability && !A.IgnoreStability)
          continue;
        if (!Result.Verdicts[I].UnboundParams.empty())
          continue; // A may be disabled entirely by a missing binding
        bool Implied = Canon[I] == Canon[J];
        if (!Implied && Enc[I] && Enc[I]->Exact && Enc[J])
          Implied = boundsImply(*Enc[J], *Enc[I]);
        if (!Implied)
          continue;
        const char *What = B.Action == ActionKind::Replace
                               ? "replacement"
                               : "capacity";
        emit(B.Line, B.Col, Severity::Warning, "sema-shadowed-rule",
             "rule '" + B.Name + "' is shadowed by earlier rule '" + A.Name
                 + "' (line " + std::to_string(A.Line)
                 + "): its condition implies the earlier rule's on the same "
                   "source type, so its "
                 + What + " is never chosen");
        break; // one shadow report per rule is enough
      }
    }
  }

  /// True when the region described by \p B is contained in \p A's: every
  /// bound A places is at least as tight in B.
  static bool boundsImply(const CondBounds &B, const CondBounds &A) {
    if (A.M.empty())
      return false; // nothing provable to implicate
    for (const auto &[Key, Ia] : A.M) {
      auto It = B.M.find(Key);
      if (It == B.M.end() || !Ia.contains(It->second))
        return false;
    }
    return true;
  }

  void analyzeUnusedParams() {
    if (!Opts.CheckUnusedParams || !params())
      return;
    std::vector<std::string> Unused;
    for (const auto &[Name, Value] : *params()) {
      (void)Value;
      if (!ReferencedParams.count(Name))
        Unused.push_back(Name);
    }
    std::sort(Unused.begin(), Unused.end());
    for (const std::string &Name : Unused)
      emit(0, 0, Severity::Warning, "sema-unused-param",
           "parameter '$" + Name
               + "' is bound but never referenced by any rule");
  }

  const std::vector<Rule> &Rules;
  const SemaOptions &Opts;
  std::set<std::string> ReferencedParams;
  SemaResult Result;
};

} // namespace

SemaResult chameleon::rules::analyzeRules(const std::vector<Rule> &Rules,
                                          const SemaOptions &Opts) {
  return Analyzer(Rules, Opts).run();
}

LintResult chameleon::rules::lintRuleSource(const std::string &Source,
                                            const SemaOptions &Opts) {
  ParseResult Parsed = parseRules(Source);
  SemaResult Sema = analyzeRules(Parsed.Rules, Opts);
  LintResult Out;
  Out.Rules = std::move(Parsed.Rules);
  Out.Diags = std::move(Parsed.Diags);
  Out.Diags.insert(Out.Diags.end(),
                   std::make_move_iterator(Sema.Diags.begin()),
                   std::make_move_iterator(Sema.Diags.end()));
  sortDiagnostics(Out.Diags);
  return Out;
}

//===----------------------------------------------------------------------===//
// Fix-it suggestions
//===----------------------------------------------------------------------===//

unsigned chameleon::rules::editDistance(const std::string &A,
                                        const std::string &B) {
  auto Lower = [](const std::string &S) {
    std::string Out = S;
    for (char &C : Out)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return Out;
  };
  std::string X = Lower(A), Y = Lower(B);
  std::vector<unsigned> Prev(Y.size() + 1), Cur(Y.size() + 1);
  for (size_t J = 0; J <= Y.size(); ++J)
    Prev[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= X.size(); ++I) {
    Cur[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= Y.size(); ++J) {
      unsigned Subst = Prev[J - 1] + (X[I - 1] != Y[J - 1] ? 1 : 0);
      Cur[J] = std::min({Prev[J] + 1, Cur[J - 1] + 1, Subst});
    }
    std::swap(Prev, Cur);
  }
  return Prev[Y.size()];
}

namespace {

unsigned suggestionBudget(const std::string &Name) {
  if (Name.size() <= 3)
    return 1;
  if (Name.size() <= 6)
    return 2;
  return 3;
}

/// The candidate closest to Name within its suggestion budget; empty when
/// nothing is plausibly near.
std::string bestCandidate(const std::string &Name,
                          const std::vector<std::string> &Candidates) {
  unsigned Best = suggestionBudget(Name) + 1;
  std::string Out;
  for (const std::string &C : Candidates) {
    unsigned D = editDistance(Name, C);
    if (D < Best) {
      Best = D;
      Out = C;
    }
  }
  return Out;
}

std::vector<std::string> metricNames() {
  std::vector<std::string> Out;
  for (unsigned I = 0; I < NumMetricKinds; ++I)
    Out.push_back(metricKindName(static_cast<MetricKind>(I)));
  return Out;
}

std::vector<std::string> opNames() {
  std::vector<std::string> Out;
  for (unsigned I = 0; I < NumOpKinds; ++I)
    Out.push_back(opKindName(static_cast<OpKind>(I)));
  Out.push_back("allOps");
  return Out;
}

} // namespace

std::string chameleon::rules::suggestMetricName(const std::string &Name) {
  std::string Metric = bestCandidate(Name, metricNames());
  std::string Op = bestCandidate(Name, opNames());
  if (!Op.empty()
      && (Metric.empty()
          || editDistance(Name, Op) < editDistance(Name, Metric)))
    return "#" + Op; // the identifier was really an operation counter
  return Metric;
}

std::string chameleon::rules::suggestOpName(const std::string &Name) {
  std::string Op = bestCandidate(Name, opNames());
  if (!Op.empty())
    return Op;
  // A '#' in front of a plain metric is a common slip: suggest dropping it.
  return bestCandidate(Name, metricNames());
}

std::string chameleon::rules::suggestImplName(const std::string &Name) {
  std::vector<std::string> Candidates;
  for (unsigned I = 0; I < NumImplKinds; ++I)
    Candidates.push_back(implKindName(static_cast<ImplKind>(I)));
  Candidates.push_back("setCapacity");
  Candidates.push_back("warn");
  return bestCandidate(Name, Candidates);
}

std::string chameleon::rules::suggestSourceTypeName(const std::string &Name) {
  std::vector<std::string> Candidates = {"Collection", "List", "Set", "Map"};
  for (unsigned I = 0; I < NumImplKinds; ++I)
    Candidates.push_back(implKindName(static_cast<ImplKind>(I)));
  return bestCandidate(Name, Candidates);
}
