//===--- Sema.h - Semantic analysis of rule files --------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static semantic analysis ("lint") for the selection-rule language of
/// paper Fig. 4. The parser guarantees only well-formedness; this pass
/// checks that a rule set can actually do what it says before any workload
/// runs:
///
///   sema-unbound-param       rule references a $-parameter with no binding
///   sema-unused-param        parameter bound but never referenced
///   sema-target-kind-mismatch  replacement target cannot back the srcType's
///                              ADT (e.g. a Map replaced with a List impl)
///   sema-self-replacement    replacing a concrete type with itself
///   sema-never-fires         condition is arithmetically unsatisfiable over
///                            the Table-1 metric domains
///   sema-always-true         comparison that always holds (redundant guard)
///   sema-dead-branch         comparison that never holds inside an '||'
///   sema-shadowed-rule       a later rule's condition implies an earlier
///                            rule's on the same srcType, so its replacement
///                            is always preceded in the plan
///   sema-ops-size-comparison operation-count average compared against a
///                            size metric (almost always a typo'd threshold)
///   sema-mixed-scope         per-instance average compared against a
///                            lifetime/heap aggregate
///
/// Satisfiability is decided by constant folding + interval analysis: every
/// metric's domain is [0, +inf) (counts, sizes, bytes and stddevs are
/// non-negative), a metric lattice orders the Table-1 heap measures
/// (core <= used <= live <= heap-live, per-cycle max <= lifetime total),
/// and within a conjunction the bounds each comparison places on a
/// canonical sub-expression are intersected — so `maxSize > 8 && maxSize
/// < 3`, `#contains < 0` and `totUsed > totLive` are all recognized as
/// "can never fire".
///
/// The pass is deliberately conservative: a diagnostic is emitted only
/// when the defect is provable from the rule text (plus the provided
/// parameter bindings); anything data-dependent stays silent.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RULES_SEMA_H
#define CHAMELEON_RULES_SEMA_H

#include "rules/Ast.h"
#include "rules/Diagnostics.h"
#include "rules/Evaluator.h"

#include <string>
#include <vector>

namespace chameleon::rules {

/// How much sema RuleEngine::addRules applies.
enum class SemaMode : uint8_t {
  Off,   ///< parse only (the historical behaviour)
  Warn,  ///< install rules, report sema diagnostics alongside parse ones
  Strict ///< reject the whole rule file when sema finds any error
};

/// Knobs for one analysis run.
struct SemaOptions {
  /// Current $-parameter bindings; nullptr means "nothing bound", which
  /// makes every referenced parameter an unbound-param warning.
  const RuleParams *Params = nullptr;
  /// Diagnose bindings in Params that no rule references. Only meaningful
  /// when Params is provided; the engine disables it because bindings may
  /// serve rule files added later.
  bool CheckUnusedParams = true;
};

/// Analysis result: diagnostics plus a per-rule static verdict, parallel
/// to the analyzed rule list.
struct SemaResult {
  struct RuleVerdict {
    /// The condition can never be satisfied (independent of workload).
    bool NeverFires = false;
    /// $-parameters the rule references that have no binding.
    std::vector<std::string> UnboundParams;
  };

  std::vector<Diagnostic> Diags;
  std::vector<RuleVerdict> Verdicts;

  bool hasErrors() const { return rules::hasErrors(Diags); }
};

/// Runs the full semantic analysis over a parsed rule list. Diagnostics
/// come back sorted by source position.
SemaResult analyzeRules(const std::vector<Rule> &Rules,
                        const SemaOptions &Opts = SemaOptions());

/// Parse + sema in one call: the front end shared by chameleon-rulelint,
/// chameleon-rulefmt and tests. Diags merges parse and sema diagnostics in
/// source order; Rules holds what parsed (even in the presence of errors).
struct LintResult {
  std::vector<Rule> Rules;
  std::vector<Diagnostic> Diags;

  bool hasErrors() const { return rules::hasErrors(Diags); }
  bool hasWarnings() const { return rules::hasWarnings(Diags); }
};

LintResult lintRuleSource(const std::string &Source,
                          const SemaOptions &Opts = SemaOptions());

//===----------------------------------------------------------------------===//
// Fix-it helpers (shared with the parser's did-you-mean hints)
//===----------------------------------------------------------------------===//

/// Levenshtein edit distance (case-insensitive).
unsigned editDistance(const std::string &A, const std::string &B);

/// Nearest known metric name to a misspelled identifier; suggests the
/// "#op" spelling when the identifier is really an operation counter.
/// Empty when nothing is plausibly close.
std::string suggestMetricName(const std::string &Name);

/// Nearest operation-counter name (for '#'/'@' references); falls back to
/// a bare metric name when the '#' was spurious. Empty when nothing close.
std::string suggestOpName(const std::string &Name);

/// Nearest implementation-type or action name for a replacement target.
std::string suggestImplName(const std::string &Name);

/// Nearest source-type name ("Collection", ADTs, concrete types).
std::string suggestSourceTypeName(const std::string &Name);

} // namespace chameleon::rules

#endif // CHAMELEON_RULES_SEMA_H
