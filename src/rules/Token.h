//===--- Token.h - Tokens of the rule language -----------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the implementation-selection rule language (paper Fig. 4).
/// Operation-counter references lex as single tokens carrying the full
/// operation name, including Java-style parameter lists:
/// `#addAll(int,Collection)` is one OpCount token with text
/// "addAll(int,Collection)".
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RULES_TOKEN_H
#define CHAMELEON_RULES_TOKEN_H

#include <cstdint>
#include <string>

namespace chameleon::rules {

enum class TokenKind : uint8_t {
  Eof,
  Ident,   ///< type names and metric names
  Number,  ///< integer or decimal literal
  String,  ///< double-quoted message
  OpCount, ///< #name or #name(params)
  OpVar,   ///< @name or @name(params)
  Param,   ///< $name — a tunable constant (§3.3.1)
  Colon,
  Arrow, ///< ->
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  AndAnd,
  OrOr,
  Not,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  EqEq,
  NotEq,
  Plus,
  Minus,
  Star,
  Slash,
  Error, ///< lexing error; Text holds the message
};

/// Printable name of a token kind (diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token with its source position (1-based).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  double NumberValue = 0.0;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace chameleon::rules

#endif // CHAMELEON_RULES_TOKEN_H
