//===--- CentralFreeList.cpp - Per-class central transfer lists -----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CentralFreeList.h"

#include "obs/Metrics.h"
#include "runtime/PageArena.h"

#include <cassert>
#include <cstring>

using namespace chameleon;
using namespace chameleon::alloc;

namespace {

// Central-tier telemetry (cham.alloc.*, DESIGN.md §12). Bumped only on the
// batched slow paths, never per allocation.
CHAM_METRIC_COUNTER(AllocSpansCarved, "cham.alloc.spans_carved");
CHAM_METRIC_COUNTER(AllocCentralContention, "cham.alloc.central_contention");
CHAM_METRIC_GAUGE(AllocReservedBytes, "cham.alloc.reserved_bytes");

/// Free-list linkage lives in the first payload word (the header is kept
/// intact for tag checks).
BlockHeader *&nextOf(BlockHeader *B) {
  return *static_cast<BlockHeader **>(blockPayload(B));
}

} // namespace

uint32_t CentralFreeList::popBatch(BlockHeader **Out, uint32_t N,
                                   uint32_t ClassIdx, PageArena &Arena) {
  assert(N > 0 && ClassIdx < kNumClasses);
  uint64_t Contended = 0;
  Mu.lockCounted(Contended);
  uint32_t Got = 0;
  while (Got < N && Head) {
    BlockHeader *B = Head;
    Head = nextOf(B);
    assert(B->State == kFreeTag && "central list holds a non-free block");
    Out[Got++] = B;
  }
  bool Carved = false;
  if (Got < N) {
    // Dry: carve one span of fresh blocks — the requested remainder plus
    // one extra transfer batch so the next pop usually stays in-list.
    const uint32_t Size = classSize(ClassIdx);
    const uint32_t Extra = transferBatch(ClassIdx);
    const uint32_t Want = (N - Got) + Extra;
    char *Run = static_cast<char *>(
        Arena.carve(static_cast<size_t>(Want) * Size));
    for (uint32_t I = 0; I < Want; ++I) {
      auto *B = reinterpret_cast<BlockHeader *>(Run + size_t{I} * Size);
      B->State = kFreeTag;
      B->ClassOrSize = ClassIdx;
      if (Got < N) {
        Out[Got++] = B;
      } else {
        nextOf(B) = Head;
        Head = B;
      }
    }
    Carved = true;
  }
  Mu.unlock();
  if (Contended)
    AllocCentralContention.add(Contended);
  if (Carved) {
    AllocSpansCarved.inc();
    AllocReservedBytes.set(
        static_cast<int64_t>(Arena.reservedBytes()));
  }
  return Got;
}

void CentralFreeList::pushBatch(BlockHeader **Blocks, uint32_t N) {
  if (N == 0)
    return;
  // Pre-link outside the lock (the pushing thread still owns the blocks);
  // only the head splice needs the lock.
  for (uint32_t I = 0; I + 1 < N; ++I)
    nextOf(Blocks[I]) = Blocks[I + 1];
  uint64_t Contended = 0;
  Mu.lockCounted(Contended);
  nextOf(Blocks[N - 1]) = Head;
  Head = Blocks[0];
  Mu.unlock();
  if (Contended)
    AllocCentralContention.add(Contended);
}

CentralState &chameleon::alloc::centralState() {
  // Leaked on purpose: thread caches flush into the central lists from
  // thread_local destructors, which can run during static destruction —
  // the central state must never be destroyed first. The pointer keeps the
  // state (and through it every slab) reachable for leak checkers.
  static CentralState *State = [] {
    auto *S = new CentralState();
    S->Arena = new PageArena();
    return S;
  }();
  return *State;
}
