//===--- CentralFreeList.h - Per-class central transfer lists --*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The middle tier of the allocation substrate (DESIGN.md §12): one
/// spinlocked free list per size class, moving blocks in transfer batches
/// between the per-thread caches (ThreadCache.h) and the page arena.
/// Blocks on a list are threaded through their first body word (the 16-byte
/// header stays intact, tagged "free" for double-return detection).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_CENTRALFREELIST_H
#define CHAMELEON_RUNTIME_CENTRALFREELIST_H

#include "runtime/SizeClasses.h"
#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <cstdint>

namespace chameleon::alloc {

class PageArena;

/// Every pooled or direct block starts with one of these; the user storage
/// (a HeapObject) begins immediately after. 16 bytes so the layout
/// guarantee in SizeClasses.h holds.
struct alignas(16) BlockHeader {
  /// Lifecycle tag (kLiveTag / kFreeTag / kDirectTag). Any other value on
  /// a deallocation path means the pointer never came from this allocator.
  uint64_t State;
  /// Pooled blocks: the size class that owns the block (stable for the
  /// block's whole life). Direct blocks: the full malloc'd size, so the
  /// reserved-bytes gauge can account them.
  uint64_t ClassOrSize;
};

inline constexpr uint64_t kLiveTag = 0xA110CA7E0115A11Eull;
inline constexpr uint64_t kFreeTag = 0xF4EEB10CF4EEB10Cull;
inline constexpr uint64_t kDirectTag = 0xD14EC7B10CD14EC7ull;

/// The user-visible payload of a block.
inline void *blockPayload(BlockHeader *B) { return B + 1; }
inline BlockHeader *blockOfPayload(void *P) {
  return static_cast<BlockHeader *>(P) - 1;
}

/// One size class's central list. Access is batched: thread caches pop and
/// push whole transfer batches, so the spinlock is taken once per
/// transferBatch() operations, not per allocation.
class CentralFreeList {
public:
  /// Pops up to \p N blocks into \p Out, carving a fresh span from \p
  /// Arena when the list runs dry. Returns the number delivered (always
  /// \p N; the count return keeps the contract explicit). Every returned
  /// block has a kFreeTag header of this class.
  CHAM_NO_SAFEPOINT uint32_t popBatch(BlockHeader **Out, uint32_t N,
                                      uint32_t ClassIdx, PageArena &Arena);

  /// Pushes \p N blocks (kFreeTag headers) back onto the list.
  CHAM_NO_SAFEPOINT void pushBatch(BlockHeader **Blocks, uint32_t N);

private:
  SpinLock Mu CHAM_LOCK_RANK(10);
  /// Singly linked through the first payload word.
  BlockHeader *Head = nullptr;
};

/// The process-global central state: one list per class over one arena.
/// Obtained through a leaked singleton (see ThreadCache.cpp) so it outlives
/// every thread cache, including those of static-destruction-time threads.
struct CentralState {
  CentralFreeList Lists[kNumClasses];
  PageArena *Arena;
};

CentralState &centralState();

} // namespace chameleon::alloc

#endif // CHAMELEON_RUNTIME_CENTRALFREELIST_H
