//===--- GcCycle.h - Per-cycle collector statistics ------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record the collector produces at the end of every GC cycle — the
/// per-cycle rows behind the paper's Table 3 and the time series plotted in
/// Figs. 2 and 8 (percentage of live data held in collections, its used part
/// and its core lower bound, per cycle).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_GCCYCLE_H
#define CHAMELEON_RUNTIME_GCCYCLE_H

#include "runtime/HeapObject.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace chameleon {

/// Statistics of one garbage-collection cycle.
struct GcCycleRecord {
  /// 1-based cycle number.
  uint64_t Cycle = 0;
  /// True when requested explicitly rather than by allocation pressure.
  bool Forced = false;
  /// All reachable bytes / objects after marking.
  uint64_t LiveBytes = 0;
  uint64_t LiveObjects = 0;
  /// Aggregate collection ADT measures (see CollectionSizes).
  uint64_t CollectionLiveBytes = 0;
  uint64_t CollectionUsedBytes = 0;
  uint64_t CollectionCoreBytes = 0;
  /// Number of live collection wrappers.
  uint64_t CollectionObjects = 0;
  /// Reclaimed in the sweep phase.
  uint64_t FreedBytes = 0;
  uint64_t FreedObjects = 0;
  /// Wall-clock duration of the cycle.
  uint64_t DurationNanos = 0;
  /// Live-size breakdown per type (Table 3 "Type Distribution"); filled
  /// only when the heap's RecordTypeDistribution flag is on.
  std::vector<std::pair<TypeId, uint64_t>> TypeDistribution;

  /// Fraction of live data occupied by collections in this cycle.
  double collectionLiveFraction() const {
    return LiveBytes == 0
               ? 0.0
               : static_cast<double>(CollectionLiveBytes)
                     / static_cast<double>(LiveBytes);
  }

  /// Fraction of live data that is the used part of collections.
  double collectionUsedFraction() const {
    return LiveBytes == 0
               ? 0.0
               : static_cast<double>(CollectionUsedBytes)
                     / static_cast<double>(LiveBytes);
  }

  /// Fraction of live data that is the core part of collections.
  double collectionCoreFraction() const {
    return LiveBytes == 0
               ? 0.0
               : static_cast<double>(CollectionCoreBytes)
                     / static_cast<double>(LiveBytes);
  }
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_GCCYCLE_H
