//===--- GcHeap.cpp - Managed heap with a collection-aware GC ------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"

#include "obs/DecisionLog.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_set>

using namespace chameleon;

GcTracer::~GcTracer() = default;
HeapObject::~HeapObject() = default;
HeapProfilerHooks::~HeapProfilerHooks() = default;

void HeapObject::trace(GcTracer &Tracer) const { (void)Tracer; }

namespace {

// Process-wide GC accounting (cham.gc.*, DESIGN.md §11). Sums over every
// heap instance; the per-heap accessors stay authoritative for tests.
CHAM_METRIC_COUNTER(GcCycles, "cham.gc.cycles");
CHAM_METRIC_COUNTER(GcForcedCycles, "cham.gc.forced_cycles");
CHAM_METRIC_COUNTER(GcEmergencyCollects, "cham.gc.emergency_collects");
CHAM_METRIC_COUNTER(GcFreedBytes, "cham.gc.freed_bytes");
CHAM_METRIC_COUNTER(GcFreedObjects, "cham.gc.freed_objects");
CHAM_METRIC_GAUGE(GcBytesInUse, "cham.gc.bytes_in_use");
CHAM_METRIC_GAUGE(GcObjectsInUse, "cham.gc.objects_in_use");
CHAM_METRIC_HISTOGRAM(GcPauseNanos, "cham.gc.pause_nanos", 10000, 100000,
                      1000000, 10000000, 100000000, 1000000000);
// HDR (log-linear) companions to the fixed-bucket histograms: bounded
// 3.125% relative error at any magnitude, so the exporters can render
// honest p50/p90/p99/p999 tail percentiles (DESIGN.md §16).
CHAM_METRIC_HDR(GcPauseHdrNanos, "cham.gc.pause_hdr_nanos");
CHAM_METRIC_HDR(SafepointStallHdrNanos, "cham.gc.safepoint_stall_hdr_nanos");

// Slot-grant side of the allocation substrate (cham.alloc.*, DESIGN.md
// §12). Hits are tallied per thread (MutatorThread::SlotHits) and drained
// here at refills and flushes, so the hot path never touches an atomic.
CHAM_METRIC_COUNTER(AllocSlotCacheHits, "cham.alloc.slot_cache_hits");
CHAM_METRIC_COUNTER(AllocSlotRefills, "cham.alloc.slot_refills");
CHAM_METRIC_COUNTER(AllocLockedFallbacks, "cham.alloc.locked_fallbacks");

/// Monotonic heap-instance ids: a heap constructed at a destroyed heap's
/// address gets a different id, so the thread-local mutator cache below can
/// never resolve against the wrong heap.
std::atomic<uint64_t> NextHeapInstanceId{1};

/// Which heap (by instance id) the calling thread is registered with, and
/// its MutatorThread record there. One registration per thread at a time.
struct TlsMutatorCache {
  uint64_t HeapId = 0;
  MutatorThread *M = nullptr;
};
thread_local TlsMutatorCache TheTlsMutator;

} // namespace

GcHeap::GcHeap(MemoryModel Model, uint64_t HeapLimitBytes)
    : Model(Model), HeapLimitBytes(HeapLimitBytes),
      Chunks(new std::atomic<SlotChunk *>[MaxSlotChunks]()),
      InstanceId(NextHeapInstanceId.fetch_add(1, std::memory_order_relaxed)) {
  Main.ThreadId = std::this_thread::get_id();
}

GcHeap::~GcHeap() {
  for (uint32_t I = 0; I < MaxSlotChunks; ++I)
    delete Chunks[I].load(std::memory_order_relaxed);
}

void GcHeap::setGcThreads(unsigned Threads) {
  assert(Threads >= 1 && "need at least one collector thread");
  assert(!InCollection && "changing thread count during a GC cycle");
  if (Threads != GcThreads)
    Pool.reset();
  GcThreads = Threads;
}

void GcHeap::setUseWorkerPool(bool On) {
  assert(!InCollection && "changing pool mode during a GC cycle");
  if (!On)
    Pool.reset();
  UseWorkerPool = On;
}

void GcHeap::runOnWorkers(const std::function<void(unsigned)> &Task) {
  if (!UseWorkerPool) {
    // Spawn-per-cycle fallback (the original §4.3.2 implementation); kept
    // so the GC-throughput bench can measure what the pool saves.
    std::vector<std::thread> Workers;
    Workers.reserve(GcThreads);
    for (unsigned T = 0; T < GcThreads; ++T)
      Workers.emplace_back([&Task, T] { Task(T); });
    for (std::thread &W : Workers)
      W.join();
    return;
  }
  if (!Pool || Pool->workerCount() != GcThreads)
    Pool = std::make_unique<GcWorkerPool>(GcThreads);
  Pool->run(Task);
}

//===----------------------------------------------------------------------===//
// Mutator threads and safepoints (DESIGN.md §9)
//===----------------------------------------------------------------------===//

MutatorThread *GcHeap::selfMutatorOrNull() {
  if (TheTlsMutator.HeapId == InstanceId)
    return TheTlsMutator.M;
  return nullptr;
}

MutatorThread &GcHeap::rootOwnerSlow() {
  if (MutatorThread *M = selfMutatorOrNull())
    return *M;
  return Main;
}

MutatorThread *GcHeap::registerMutatorThread() {
  assert(TheTlsMutator.M == nullptr
         && "thread is already registered as a mutator");
  auto Rec = std::make_unique<MutatorThread>();
  Rec->ThreadId = std::this_thread::get_id();
  Rec->Registered = true;
  MutatorThread *M = Rec.get();
  {
    std::unique_lock<std::mutex> L(SpMu);
    // Never admit a new running mutator mid-stop-the-world: the initiator
    // enumerated the registered set when it began waiting.
    SpCv.wait(L, [&] {
      return !SafepointRequested.load(std::memory_order_relaxed);
    });
    Mutators.push_back(std::move(Rec));
    MutatorsActive.store(true, std::memory_order_release);
  }
  TheTlsMutator = {InstanceId, M};
  return M;
}

void GcHeap::unregisterMutatorThread(MutatorThread *M) {
  assert(M && M->Registered && "unregistering an unregistered mutator");
  assert(selfMutatorOrNull() == M
         && "mutators must unregister on their own thread");
  assert(M->TempRootDepth == 0 && "unregistering with live temp roots");

  std::unique_lock<std::mutex> L(SpMu);
  while (SafepointRequested.load(std::memory_order_relaxed)) {
    // A stop-the-world is pending: park so it proceeds, retry after.
    M->AtSafepoint = true;
    SpCv.notify_all();
    SpCv.wait(L, [&] {
      return !SafepointRequested.load(std::memory_order_relaxed);
    });
    M->AtSafepoint = false;
  }

  // Return the thread's ungranted cached slots; after this record goes
  // inactive nothing would ever flush them. The world is running, so no
  // un-bump (that needs a stable frontier) — entries go back on FreeSlots
  // under SlotMu against concurrent refills.
  {
    SpinLockGuard SlotGuard(SlotMu);
    flushSlotCache(*M, /*StoppedWorld=*/false);
  }

  // Splice surviving roots into the main segment so handles created on
  // this thread stay valid after it exits. removeRoot is positional, so
  // the handles themselves need no update.
  while (RootNode *Node = M->RootsHead.Next) {
    M->RootsHead.Next = Node->Next;
    if (Node->Next)
      Node->Next->Prev = &M->RootsHead;
    Node->Prev = &Main.RootsHead;
    Node->Next = Main.RootsHead.Next;
    if (Main.RootsHead.Next)
      Main.RootsHead.Next->Prev = Node;
    Main.RootsHead.Next = Node;
  }

  M->Registered = false;
  bool AnyRegistered = false;
  for (const std::unique_ptr<MutatorThread> &Rec : Mutators)
    AnyRegistered |= Rec->Registered;
  MutatorsActive.store(AnyRegistered, std::memory_order_release);
  TheTlsMutator = {0, nullptr};
}

void GcHeap::safepointSlow() {
  MutatorThread *M = selfMutatorOrNull();
  if (!M)
    return; // unregistered threads don't participate in the handshake
  auto StallStart = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> L(SpMu);
  while (SafepointRequested.load(std::memory_order_relaxed)) {
    M->AtSafepoint = true;
    SpCv.notify_all();
    SpCv.wait(L, [&] {
      return !SafepointRequested.load(std::memory_order_relaxed);
    });
  }
  M->AtSafepoint = false;
  SafepointStallHdrNanos.observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - StallStart)
          .count()));
}

void GcHeap::enterSafeRegion() {
  MutatorThread *M = selfMutatorOrNull();
  if (!M)
    return;
  std::lock_guard<std::mutex> L(SpMu);
  M->AtSafepoint = true;
  SpCv.notify_all();
}

void GcHeap::leaveSafeRegion() {
  MutatorThread *M = selfMutatorOrNull();
  if (!M)
    return;
  std::unique_lock<std::mutex> L(SpMu);
  SpCv.wait(L, [&] {
    return !SafepointRequested.load(std::memory_order_relaxed);
  });
  M->AtSafepoint = false;
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

ObjectRef GcHeap::allocate(std::unique_ptr<HeapObject> Obj) {
  assert(Obj && "allocating a null object");

  // Every allocation in the system funnels through here, so this one site
  // lets a fault plan fail any allocation (inside a migration transaction)
  // or force a collection at any allocation instant.
  CHAM_FAULT_GC("gc.alloc", *this);

  // Lock-free fast path: a cached slot grant, a placement, and four
  // relaxed counter bumps. Falls back to the serialised path whenever a
  // collection trigger is pending (the mirror in allocTriggersPending), so
  // every trigger decision is still made under AllocMu with stable state.
  ObjectRef Ref;
  if (UseThreadCaches && allocateFast(Obj, Ref))
    return Ref;

  if (!MutatorsActive.load(std::memory_order_acquire))
    return allocateLocked(std::move(Obj));

  AllocLockedFallbacks.inc();
  std::unique_lock<std::mutex> AL(AllocMu, std::defer_lock);
  {
    // Park while blocked on the allocation lock so a pending
    // stop-the-world — possibly initiated by the current lock holder's
    // pressure collection — proceeds without waiting for us.
    GcSafeRegion Region(*this);
    AL.lock();
  }
  return allocateLocked(std::move(Obj));
}

bool GcHeap::allocTriggersPending(uint64_t Bytes) const {
  // Exact relaxed-load mirror of allocateLocked's four trigger conditions.
  // A stale read costs one harmless trip through AllocMu (where the
  // condition is re-evaluated under the lock); it can never skip a trigger
  // the locked path would have taken, because on the fast path this thread
  // is the only one advancing the counters it reads.
  const uint64_t Total = TotalAllocatedBytes.load(std::memory_order_relaxed);
  const uint64_t InUse = BytesInUse.load(std::memory_order_relaxed);
  const bool Oom = OomFlag.load(std::memory_order_relaxed);
  if (GcSampleEveryBytes != 0
      && Total - LastSampleAt.load(std::memory_order_relaxed)
             >= GcSampleEveryBytes)
    return true;
  if (SoftLimitBytes != 0 && !Oom && InUse + Bytes > SoftLimitBytes
      && Total - LastEmergencyAt.load(std::memory_order_relaxed)
             >= std::max<uint64_t>(SoftLimitBytes / 16, 1))
    return true;
  if (UnderPressure.load(std::memory_order_relaxed) && SoftLimitBytes != 0
      && InUse + Bytes <= SoftLimitBytes - SoftLimitBytes / 8)
    return true;
  if (!Oom && HeapLimitBytes != 0 && InUse + Bytes > HeapLimitBytes)
    return true;
  return false;
}

bool GcHeap::allocateFast(std::unique_ptr<HeapObject> &Obj,
                          ObjectRef &RefOut) {
  const uint64_t Bytes = Obj->shallowBytes();
  if (allocTriggersPending(Bytes))
    return false;
  MutatorThread &M = rootOwner();
  const uint32_t Slot = grantSlot(M);
  std::unique_ptr<HeapObject> &Cell = slotRef(Slot);
  assert(!Cell && "granted slot still occupied");
  Cell = std::move(Obj);
  HeapObject &Placed = *Cell;
  Placed.Self = ObjectRef::fromSlot(Slot);
  BytesInUse.fetch_add(Bytes, std::memory_order_relaxed);
  ObjectsInUse.fetch_add(1, std::memory_order_relaxed);
  TotalAllocatedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  TotalAllocatedObjects.fetch_add(1, std::memory_order_relaxed);
  RefOut = Placed.Self;
  return true;
}

uint32_t GcHeap::grantSlot(MutatorThread &M) {
  if (M.SlotCachePos == M.SlotCache.size())
    refillSlotCache(M);
  else
    ++M.SlotHits;
  return M.SlotCache[M.SlotCachePos++] & SlotIndexMask;
}

void GcHeap::refillSlotCache(MutatorThread &M) {
  M.SlotCache.clear();
  M.SlotCachePos = 0;
  // Single-threaded heaps skip the spinlock entirely; with mutators active
  // it guards FreeSlots and the bump frontier against concurrent refills
  // (and against the flush in unregisterMutatorThread).
  const bool Locked = MutatorsActive.load(std::memory_order_relaxed);
  if (Locked)
    SlotMu.lock();
  for (uint32_t I = 0; I < SlotCacheBatch; ++I) {
    if (!FreeSlots.empty()) {
      // LIFO pops into a FIFO cache: served in exactly the order the
      // locked path would have popped them.
      M.SlotCache.push_back(FreeSlots.back());
      FreeSlots.pop_back();
      continue;
    }
    const uint32_t Slot = SlotCount.load(std::memory_order_relaxed);
    const uint32_t ChunkIdx = Slot >> SlotChunkShift;
    assert(ChunkIdx < MaxSlotChunks && "slot table exhausted");
    if (!Chunks[ChunkIdx].load(std::memory_order_relaxed))
      Chunks[ChunkIdx].store(new SlotChunk(), std::memory_order_release);
    // Publishing the count before the cell is filled is safe: the cell is
    // empty until this thread places an object in it, and no reference to
    // the slot can exist before that placement.
    SlotCount.store(Slot + 1, std::memory_order_release);
    M.SlotCache.push_back(Slot | SlotBumpTag);
  }
  if (Locked)
    SlotMu.unlock();
  AllocSlotRefills.inc();
  if (M.SlotHits != 0) {
    AllocSlotCacheHits.add(M.SlotHits);
    M.SlotHits = 0;
  }
}

void GcHeap::flushSlotCache(MutatorThread &M, bool StoppedWorld) {
  // Reverse order: within one cache the bump-carved entries sit at the
  // tail in ascending slot order, so walking backwards un-bumps a maximal
  // frontier-adjacent suffix and re-pushes recycled entries in exactly the
  // order the locked path would have left them on FreeSlots.
  while (M.SlotCache.size() > M.SlotCachePos) {
    const uint32_t Entry = M.SlotCache.back();
    M.SlotCache.pop_back();
    const uint32_t Slot = Entry & SlotIndexMask;
    if (StoppedWorld && (Entry & SlotBumpTag) != 0
        && Slot + 1 == SlotCount.load(std::memory_order_relaxed)) {
      assert(!slotRef(Slot) && "un-bumping an occupied slot");
      SlotCount.store(Slot, std::memory_order_release);
      continue;
    }
    FreeSlots.push_back(Slot);
  }
  M.SlotCache.clear();
  M.SlotCachePos = 0;
  if (M.SlotHits != 0) {
    AllocSlotCacheHits.add(M.SlotHits);
    M.SlotHits = 0;
  }
}

void GcHeap::flushAllSlotCaches() {
  flushSlotCache(Main, /*StoppedWorld=*/true);
  for (const std::unique_ptr<MutatorThread> &Mut : Mutators)
    flushSlotCache(*Mut, /*StoppedWorld=*/true);
}

void GcHeap::setUseThreadCaches(bool On) {
  assert(!InCollection && "changing allocator mode during a GC cycle");
  if (On == UseThreadCaches)
    return;
  flushAllSlotCaches();
  UseThreadCaches = On;
}

ObjectRef GcHeap::allocateLocked(std::unique_ptr<HeapObject> Obj) {
  assert(Obj && "allocating a null object");
  assert(!InCollection && "allocation during a GC cycle");

  uint64_t Bytes = Obj->shallowBytes();
  if (GcSampleEveryBytes != 0
      && totalAllocatedBytes() - LastSampleAt.load(std::memory_order_relaxed)
             >= GcSampleEveryBytes) {
    LastSampleAt.store(totalAllocatedBytes(), std::memory_order_relaxed);
    collect(/*Forced=*/true);
  }
  // Soft limit (graceful degradation): crossing it buys an emergency
  // collect-then-shrink pass, rate-limited by allocation volume so a long
  // over-limit plateau does not collect on every allocation. Staying over
  // even after that tells the profiler hooks to start shedding.
  if (SoftLimitBytes != 0 && !outOfMemory()
      && bytesInUse() + Bytes > SoftLimitBytes
      && totalAllocatedBytes()
                 - LastEmergencyAt.load(std::memory_order_relaxed)
             >= std::max<uint64_t>(SoftLimitBytes / 16, 1)) {
    LastEmergencyAt.store(totalAllocatedBytes(), std::memory_order_relaxed);
    ++EmergencyCollects;
    GcEmergencyCollects.inc();
    CHAM_TRACE_INSTANT_ARG("gc", "emergency_collect", "bytes",
                           static_cast<int64_t>(bytesInUse()));
    // The shrink must run while the world is still stopped — a concurrent
    // cache refill reads FreeSlots — so collectStopped performs it after
    // the sweep (PendingShrink).
    PendingShrink = true;
    collect(/*Forced=*/false);
    if (bytesInUse() + Bytes > SoftLimitBytes) {
      UnderPressure.store(true, std::memory_order_relaxed);
      CHAM_TRACE_INSTANT_ARG("gc", "heap_pressure", "bytes",
                             static_cast<int64_t>(bytesInUse()));
      if (Hooks)
        Hooks->onHeapPressure(bytesInUse(), SoftLimitBytes);
    }
  }
  if (underPressure() && SoftLimitBytes != 0
      && bytesInUse() + Bytes <= SoftLimitBytes - SoftLimitBytes / 8) {
    UnderPressure.store(false, std::memory_order_relaxed);
    CHAM_TRACE_INSTANT("gc", "heap_pressure_cleared");
    if (Hooks)
      Hooks->onHeapPressureCleared();
  }
  // Once out of memory the run is already failed; collecting on every
  // further allocation would only slow the program's (short) path to
  // noticing the flag.
  if (!outOfMemory() && HeapLimitBytes != 0
      && bytesInUse() + Bytes > HeapLimitBytes) {
    const GcCycleRecord &Rec = collect(/*Forced=*/false);
    if (bytesInUse() + Bytes > HeapLimitBytes) {
      OomFlag.store(true, std::memory_order_relaxed);
    } else if (MinFreeFraction > 0.0
               && HeapLimitBytes - (bytesInUse() + Bytes)
                      < static_cast<uint64_t>(MinFreeFraction
                                              * static_cast<double>(
                                                  HeapLimitBytes))) {
      // Too little breathing room: the program would spend its remaining
      // life collecting. Fail fast, as HotSpot's overhead criterion does.
      OomFlag.store(true, std::memory_order_relaxed);
    }
    // Second overhead guard: repeated pressure collections that reclaim
    // almost nothing.
    if (Rec.FreedBytes < HeapLimitBytes / 64) {
      if (++LowYieldStreak >= GcOverheadLimit)
        OomFlag.store(true, std::memory_order_relaxed);
    } else {
      LowYieldStreak = 0;
    }
  }

  uint32_t Slot;
  if (UseThreadCaches) {
    // Grant through the cache even on the slow path, so the slot sequence
    // a thread observes is one stream regardless of which path served it.
    Slot = grantSlot(rootOwner());
    std::unique_ptr<HeapObject> &Cell = slotRef(Slot);
    assert(!Cell && "granted slot still occupied");
    Cell = std::move(Obj);
  } else if (!FreeSlots.empty()) {
    Slot = FreeSlots.back();
    FreeSlots.pop_back();
    std::unique_ptr<HeapObject> &Cell = slotRef(Slot);
    assert(!Cell && "free slot still occupied");
    Cell = std::move(Obj);
  } else {
    Slot = SlotCount.load(std::memory_order_relaxed);
    uint32_t ChunkIdx = Slot >> SlotChunkShift;
    assert(ChunkIdx < MaxSlotChunks && "slot table exhausted");
    if (!Chunks[ChunkIdx].load(std::memory_order_relaxed))
      Chunks[ChunkIdx].store(new SlotChunk(), std::memory_order_release);
    Chunks[ChunkIdx].load(std::memory_order_relaxed)
        ->Objs[Slot & (SlotChunkCapacity - 1)] = std::move(Obj);
    // Publish the slot after its contents: a concurrent reader that sees
    // the new count also sees the object (chunks never move).
    SlotCount.store(Slot + 1, std::memory_order_release);
  }

  HeapObject &Placed = *slotRef(Slot);
  Placed.Self = ObjectRef::fromSlot(Slot);
  BytesInUse.fetch_add(Bytes, std::memory_order_relaxed);
  ObjectsInUse.fetch_add(1, std::memory_order_relaxed);
  TotalAllocatedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  TotalAllocatedObjects.fetch_add(1, std::memory_order_relaxed);
  return Placed.Self;
}

void GcHeap::shrinkSlotTable() {
  uint32_t Count = SlotCount.load(std::memory_order_relaxed);
  uint32_t NewCount = Count;
  while (NewCount > 0 && !slotRef(NewCount - 1))
    --NewCount;
  if (NewCount == Count)
    return;
  FreeSlots.erase(std::remove_if(FreeSlots.begin(), FreeSlots.end(),
                                 [NewCount](uint32_t Slot) {
                                   return Slot >= NewCount;
                                 }),
                  FreeSlots.end());
  // Concurrent lock-free readers only dereference live references, all of
  // which sit below NewCount; shrinking the published count and freeing the
  // wholly-trailing chunks can therefore never race with them.
  SlotCount.store(NewCount, std::memory_order_release);
  uint32_t FirstNeededChunk = (NewCount + SlotChunkCapacity - 1)
                              >> SlotChunkShift;
  uint32_t FirstUnusedChunk = (Count + SlotChunkCapacity - 1)
                              >> SlotChunkShift;
  for (uint32_t C = FirstNeededChunk; C < FirstUnusedChunk; ++C) {
    delete Chunks[C].load(std::memory_order_relaxed);
    Chunks[C].store(nullptr, std::memory_order_release);
  }
}

//===----------------------------------------------------------------------===//
// Marking
//===----------------------------------------------------------------------===//

/// Worklist-based marker. Recursion would overflow the C++ stack on long
/// linked-list chains, so tracing is iterative.
class GcHeap::Marker : public GcTracer {
public:
  Marker(GcHeap &Heap, uint64_t Epoch) : Heap(Heap), Epoch(Epoch) {
    // The worklist can never hold more than every live object at once;
    // objectsInUse() is a tight upper bound that avoids regrowth churn.
    Worklist.reserve(Heap.objectsInUse());
  }

  void visit(ObjectRef Ref) override {
    if (Ref.isNull())
      return;
    HeapObject &Obj = Heap.get(Ref);
    if (Obj.MarkEpoch.load(std::memory_order_relaxed) == Epoch)
      return;
    Obj.MarkEpoch.store(Epoch, std::memory_order_relaxed);
    Worklist.push_back(&Obj);
  }

  /// Drains the worklist, invoking \p OnMarked for each newly marked object.
  template <typename CallbackT> void run(CallbackT OnMarked) {
    while (!Worklist.empty()) {
      HeapObject *Obj = Worklist.back();
      Worklist.pop_back();
      OnMarked(*Obj);
      Obj->trace(*this);
    }
  }

private:
  GcHeap &Heap;
  uint64_t Epoch;
  std::vector<HeapObject *> Worklist;
};

void GcHeap::markPhase(GcCycleRecord &Record) {
  if (GcThreads > 1) {
    markPhaseParallel(Record);
    return;
  }
  Marker M(*this, CurrentEpoch);
  auto SeedRoots = [&M](const MutatorThread &Mut) {
    for (RootNode *Node = Mut.RootsHead.Next; Node; Node = Node->Next)
      M.visit(Node->Ref);
    for (unsigned I = 0; I < Mut.TempRootDepth; ++I)
      M.visit(Mut.TempRoots[I]);
  };
  SeedRoots(Main);
  for (const std::unique_ptr<MutatorThread> &Mut : Mutators)
    SeedRoots(*Mut); // unregistered records have empty lists

  std::vector<uint64_t> TypeBytes;
  if (RecordTypeDistribution)
    TypeBytes.resize(Types.size(), 0);

  M.run([&](HeapObject &Obj) {
    Record.LiveBytes += Obj.shallowBytes();
    ++Record.LiveObjects;
    if (RecordTypeDistribution)
      TypeBytes[Obj.typeId()] += Obj.shallowBytes();

    const SemanticMap &Map = Types.get(Obj.typeId());
    if (Map.Kind != TypeKind::CollectionWrapper)
      return;

    CollectionSizes Sizes = Map.ComputeSizes(Obj, *this);
    Record.CollectionLiveBytes += Sizes.Live;
    Record.CollectionUsedBytes += Sizes.Used;
    Record.CollectionCoreBytes += Sizes.Core;
    ++Record.CollectionObjects;
    if (Hooks) {
      void *Tag = Map.ContextTagOf ? Map.ContextTagOf(Obj) : nullptr;
      Hooks->onLiveCollection(Obj, Sizes, Tag);
    }
  });

  if (RecordTypeDistribution) {
    for (TypeId T = 0; T < TypeBytes.size(); ++T)
      if (TypeBytes[T] != 0)
        Record.TypeDistribution.emplace_back(T, TypeBytes[T]);
  }
}

/// The multi-threaded tracing phase (paper §4.3.2). Objects are claimed
/// with a compare-and-swap on their mark epoch, so each is processed by
/// exactly one worker; every statistic is a commutative sum, so the cycle
/// record is identical to the sequential marker's. Collection events
/// (wrapper, sizes, context tag) are buffered per worker and replayed on
/// the calling thread after the join, because the profiler hooks are not
/// thread-safe.
class GcHeap::ParallelMarker {
public:
  struct CollectionEvent {
    const HeapObject *Obj;
    CollectionSizes Sizes;
    void *Tag;
  };

  struct WorkerState {
    uint64_t LiveBytes = 0;
    uint64_t LiveObjects = 0;
    std::vector<uint64_t> TypeBytes;
    std::vector<CollectionEvent> Events;
  };

  ParallelMarker(GcHeap &Heap, uint64_t Epoch, unsigned Threads)
      : Heap(Heap), Epoch(Epoch), Threads(Threads), States(Threads) {
    if (Heap.RecordTypeDistribution)
      for (WorkerState &State : States)
        State.TypeBytes.resize(Heap.Types.size(), 0);
  }

  /// Claims \p Ref for this epoch; returns the object on success.
  HeapObject *claim(ObjectRef Ref) {
    if (Ref.isNull())
      return nullptr;
    HeapObject &Obj = Heap.get(Ref);
    uint64_t Expected = Obj.MarkEpoch.load(std::memory_order_relaxed);
    if (Expected == Epoch)
      return nullptr;
    if (!Obj.MarkEpoch.compare_exchange_strong(
            Expected, Epoch, std::memory_order_acq_rel))
      return nullptr; // another worker got it
    return &Obj;
  }

  /// Seeds the shared worklist from every thread's roots (calling thread).
  void seed() {
    auto SeedRoots = [this](const MutatorThread &Mut) {
      for (RootNode *Node = Mut.RootsHead.Next; Node; Node = Node->Next)
        if (HeapObject *Obj = claim(Node->Ref))
          Shared.push_back(Obj);
      for (unsigned I = 0; I < Mut.TempRootDepth; ++I)
        if (HeapObject *Obj = claim(Mut.TempRoots[I]))
          Shared.push_back(Obj);
    };
    SeedRoots(Heap.Main);
    for (const std::unique_ptr<MutatorThread> &Mut : Heap.Mutators)
      SeedRoots(*Mut);
  }

  void run() {
    Heap.runOnWorkers([this](unsigned T) {
      CHAM_TRACE_SPAN_ARG("gc", "mark.worker", "worker",
                          static_cast<int64_t>(T));
      workerLoop(States[T]);
    });
  }

  /// Folds the per-worker results into \p Record and replays collection
  /// events through the profiler hooks. Calling thread only.
  void finish(GcCycleRecord &Record, std::vector<uint64_t> *TypeBytes) {
    for (WorkerState &State : States) {
      Record.LiveBytes += State.LiveBytes;
      Record.LiveObjects += State.LiveObjects;
      if (TypeBytes)
        for (size_t I = 0; I < State.TypeBytes.size(); ++I)
          (*TypeBytes)[I] += State.TypeBytes[I];
      for (const CollectionEvent &Event : State.Events) {
        Record.CollectionLiveBytes += Event.Sizes.Live;
        Record.CollectionUsedBytes += Event.Sizes.Used;
        Record.CollectionCoreBytes += Event.Sizes.Core;
        ++Record.CollectionObjects;
        if (Heap.Hooks)
          Heap.Hooks->onLiveCollection(*Event.Obj, Event.Sizes,
                                       Event.Tag);
      }
    }
  }

private:
  /// A tracer that claims children into the worker's local stack.
  class WorkerTracer : public GcTracer {
  public:
    WorkerTracer(ParallelMarker &Parent,
                 std::vector<HeapObject *> &Local)
        : Parent(Parent), Local(Local) {}

    void visit(ObjectRef Ref) override {
      if (HeapObject *Obj = Parent.claim(Ref))
        Local.push_back(Obj);
    }

  private:
    ParallelMarker &Parent;
    std::vector<HeapObject *> &Local;
  };

  void process(HeapObject &Obj, WorkerState &State,
               WorkerTracer &Tracer) {
    State.LiveBytes += Obj.shallowBytes();
    ++State.LiveObjects;
    if (!State.TypeBytes.empty())
      State.TypeBytes[Obj.typeId()] += Obj.shallowBytes();

    const SemanticMap &Map = Heap.Types.get(Obj.typeId());
    if (Map.Kind == TypeKind::CollectionWrapper) {
      CollectionEvent Event;
      Event.Obj = &Obj;
      Event.Sizes = Map.ComputeSizes(Obj, Heap);
      Event.Tag = Map.ContextTagOf ? Map.ContextTagOf(Obj) : nullptr;
      State.Events.push_back(Event);
    }
    Obj.trace(Tracer);
  }

  void workerLoop(WorkerState &State) {
    std::vector<HeapObject *> Local;
    WorkerTracer Tracer(*this, Local);
    while (true) {
      if (Local.empty() && !refill(Local))
        return;
      HeapObject *Obj = Local.back();
      Local.pop_back();
      process(*Obj, State, Tracer);
      // Share surplus work so idle workers can steal it.
      if (Local.size() > SpillThreshold)
        spill(Local);
    }
  }

  /// Moves half of an oversized local stack into the shared queue.
  void spill(std::vector<HeapObject *> &Local) {
    std::unique_lock<std::mutex> Lock(Mu, std::try_to_lock);
    if (!Lock.owns_lock())
      return; // contended: keep the work local, try again later
    size_t Half = Local.size() / 2;
    Shared.insert(Shared.end(), Local.begin(),
                  Local.begin() + static_cast<long>(Half));
    Local.erase(Local.begin(), Local.begin() + static_cast<long>(Half));
    Cv.notify_all();
  }

  /// Blocks until shared work arrives or all workers are idle.
  /// \returns false when marking is complete.
  bool refill(std::vector<HeapObject *> &Local) {
    std::unique_lock<std::mutex> Lock(Mu);
    ++Waiting;
    while (Shared.empty()) {
      if (Waiting == Threads) {
        Done = true;
        Cv.notify_all();
      }
      if (Done)
        return false;
      Cv.wait(Lock);
    }
    --Waiting;
    size_t Take = std::min<size_t>(Shared.size(), ChunkSize);
    Local.insert(Local.end(), Shared.end() - static_cast<long>(Take),
                 Shared.end());
    Shared.resize(Shared.size() - Take);
    return true;
  }

  static constexpr size_t SpillThreshold = 2048;
  static constexpr size_t ChunkSize = 512;

  GcHeap &Heap;
  uint64_t Epoch;
  unsigned Threads;
  std::vector<WorkerState> States;

  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<HeapObject *> Shared;
  unsigned Waiting = 0;
  bool Done = false;
};

void GcHeap::markPhaseParallel(GcCycleRecord &Record) {
  ParallelMarker Marker(*this, CurrentEpoch, GcThreads);
  Marker.seed();
  Marker.run();

  std::vector<uint64_t> TypeBytes;
  if (RecordTypeDistribution)
    TypeBytes.resize(Types.size(), 0);
  Marker.finish(Record, RecordTypeDistribution ? &TypeBytes : nullptr);

  if (RecordTypeDistribution) {
    for (TypeId T = 0; T < TypeBytes.size(); ++T)
      if (TypeBytes[T] != 0)
        Record.TypeDistribution.emplace_back(T, TypeBytes[T]);
  }
}

//===----------------------------------------------------------------------===//
// Sweeping
//===----------------------------------------------------------------------===//

void GcHeap::sweepPhase(GcCycleRecord &Record) {
  if (GcThreads > 1) {
    sweepPhaseParallel(Record);
    return;
  }
  for (uint32_t Slot = 0, E = SlotCount.load(std::memory_order_relaxed);
       Slot != E; ++Slot) {
    std::unique_ptr<HeapObject> &Cell = slotRef(Slot);
    HeapObject *Obj = Cell.get();
    if (!Obj
        || Obj->MarkEpoch.load(std::memory_order_relaxed) == CurrentEpoch)
      continue;

    const SemanticMap &Map = Types.get(Obj->typeId());
    if (Map.Kind == TypeKind::CollectionWrapper && Hooks) {
      void *Tag = Map.ContextTagOf ? Map.ContextTagOf(*Obj) : nullptr;
      void *Info = Map.ObjectInfoOf ? Map.ObjectInfoOf(*Obj) : nullptr;
      Hooks->onCollectionDeath(*Obj, Tag, Info);
    }

    Record.FreedBytes += Obj->shallowBytes();
    ++Record.FreedObjects;
    BytesInUse.fetch_sub(Obj->shallowBytes(), std::memory_order_relaxed);
    ObjectsInUse.fetch_sub(1, std::memory_order_relaxed);
    Cell.reset();
    FreeSlots.push_back(Slot);
  }
}

/// The multi-threaded sweep. Each worker scans one contiguous slot range
/// and buffers everything it would have done in place: the dead slot list,
/// freed byte/object sums, and the death events of profiled wrappers. The
/// calling thread then replays the death events and recycles the slots in
/// ascending slot order — ranges are contiguous and scanned in order, so
/// concatenating the per-worker buffers reproduces exactly the sequential
/// sweep's hook order and FreeSlots order (the latter keeps slot reuse, and
/// therefore future ObjectRefs, byte-identical at any thread count). The
/// same buffering-and-replay discipline ParallelMarker::finish uses.
void GcHeap::sweepPhaseParallel(GcCycleRecord &Record) {
  struct DeathEvent {
    HeapObject *Obj;
    void *Tag;
    void *Info;
  };
  struct SweepState {
    uint64_t FreedBytes = 0;
    uint64_t FreedObjects = 0;
    std::vector<uint32_t> DeadSlots;
    std::vector<DeathEvent> Events;
  };

  const uint32_t NumSlots = SlotCount.load(std::memory_order_relaxed);
  const unsigned Workers = GcThreads;
  const uint32_t ChunkSlots = (NumSlots + Workers - 1) / Workers;
  std::vector<SweepState> States(Workers);

  runOnWorkers([&](unsigned W) {
    CHAM_TRACE_SPAN_ARG("gc", "sweep.worker", "worker",
                        static_cast<int64_t>(W));
    SweepState &State = States[W];
    uint32_t Begin = std::min(W * ChunkSlots, NumSlots);
    uint32_t End = std::min(Begin + ChunkSlots, NumSlots);
    for (uint32_t Slot = Begin; Slot != End; ++Slot) {
      HeapObject *Obj = slotRef(Slot).get();
      if (!Obj
          || Obj->MarkEpoch.load(std::memory_order_relaxed) == CurrentEpoch)
        continue;
      State.FreedBytes += Obj->shallowBytes();
      ++State.FreedObjects;
      State.DeadSlots.push_back(Slot);
      const SemanticMap &Map = Types.get(Obj->typeId());
      if (Map.Kind == TypeKind::CollectionWrapper && Hooks)
        State.Events.push_back(
            {Obj, Map.ContextTagOf ? Map.ContextTagOf(*Obj) : nullptr,
             Map.ObjectInfoOf ? Map.ObjectInfoOf(*Obj) : nullptr});
    }
  });

  // Replay death events on the calling thread (the hooks are not
  // thread-safe), in ascending slot order, while the objects are still
  // alive.
  if (Hooks)
    for (const SweepState &State : States)
      for (const DeathEvent &Event : State.Events)
        Hooks->onCollectionDeath(*Event.Obj, Event.Tag, Event.Info);

  // Destroy dead objects in parallel; the slot sets are disjoint.
  runOnWorkers([&](unsigned W) {
    for (uint32_t Slot : States[W].DeadSlots)
      slotRef(Slot).reset();
  });

  for (const SweepState &State : States) {
    Record.FreedBytes += State.FreedBytes;
    Record.FreedObjects += State.FreedObjects;
    BytesInUse.fetch_sub(State.FreedBytes, std::memory_order_relaxed);
    ObjectsInUse.fetch_sub(State.FreedObjects, std::memory_order_relaxed);
    FreeSlots.insert(FreeSlots.end(), State.DeadSlots.begin(),
                     State.DeadSlots.end());
  }
}

//===----------------------------------------------------------------------===//
// Collection driver
//===----------------------------------------------------------------------===//

const GcCycleRecord &GcHeap::collect(bool Forced) {
  if (!MutatorsActive.load(std::memory_order_acquire))
    return collectStopped(Forced);

  // Stop the world: wait out any in-flight request, then claim our own and
  // wait until every registered mutator other than us is parked. The
  // initiator holds SpMu across the whole cycle, so late pollers simply
  // block until the world restarts.
  MutatorThread *Self = selfMutatorOrNull();
  std::unique_lock<std::mutex> L(SpMu);
  while (SafepointRequested.load(std::memory_order_relaxed)) {
    if (Self) {
      Self->AtSafepoint = true;
      SpCv.notify_all();
    }
    SpCv.wait(L, [&] {
      return !SafepointRequested.load(std::memory_order_relaxed);
    });
    if (Self)
      Self->AtSafepoint = false;
  }
  SafepointRequested.store(true, std::memory_order_release);
  SpCv.wait(L, [&] {
    for (const std::unique_ptr<MutatorThread> &Rec : Mutators)
      if (Rec->Registered && Rec.get() != Self && !Rec->AtSafepoint)
        return false;
    return true;
  });

  const GcCycleRecord &Rec = collectStopped(Forced);

  SafepointRequested.store(false, std::memory_order_release);
  SpCv.notify_all();
  return Rec;
}

const GcCycleRecord &GcHeap::collectStopped(bool Forced) {
  assert(!InCollection && "re-entrant collection");
  InCollection = true;
  CHAM_TRACE_SPAN_ARG("gc", "cycle", "cycle",
                      static_cast<int64_t>(CycleRecords.size() + 1));
  auto Start = std::chrono::steady_clock::now();

  // Return every thread's ungranted cached slots first (un-bumping the
  // frontier where possible): the slot table then looks exactly as if the
  // locked path had served every allocation, which keeps sweep order and
  // future slot reuse independent of the caching (DESIGN.md §12).
  flushAllSlotCaches();

  // Let the profiler drain per-thread event buffers before any live/death
  // statistics of this cycle land (DESIGN.md §9: flush precedes fold).
  if (Hooks)
    Hooks->onStopTheWorld();

  ++CurrentEpoch;
  GcCycleRecord Record;
  Record.Cycle = CycleRecords.size() + 1;
  Record.Forced = Forced;

  {
    CHAM_TRACE_SPAN("gc", "mark");
    markPhase(Record);
  }
  {
    CHAM_TRACE_SPAN("gc", "sweep");
    sweepPhase(Record);
  }

  // Deferred emergency shrink (see allocateLocked): caches are flushed and
  // the world is stopped, so trimming FreeSlots and the published count
  // cannot race a refill.
  if (PendingShrink) {
    PendingShrink = false;
    shrinkSlotTable();
  }

  auto End = std::chrono::steady_clock::now();
  Record.DurationNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());

  GcCycles.inc();
  if (Forced)
    GcForcedCycles.inc();
  GcFreedBytes.add(Record.FreedBytes);
  GcFreedObjects.add(Record.FreedObjects);
  GcPauseNanos.observe(Record.DurationNanos);
  GcPauseHdrNanos.observe(Record.DurationNanos);
  GcBytesInUse.set(static_cast<int64_t>(bytesInUse()));
  GcObjectsInUse.set(static_cast<int64_t>(objectsInUse()));

  // Decision-provenance epoch boundary: advance the ledger's epoch to this
  // cycle and append the global EpochMark so every decision recorded during
  // the upcoming fold (and until the next cycle) is attributable to the
  // heap state it actually saw. Appended while the world is stopped (under
  // SpMu for threaded cycles) — record() never allocates, so the spinlock
  // discipline holds.
  if (obs::DecisionLog &Ledger = obs::DecisionLog::instance();
      Ledger.enabled()) {
    Ledger.setEpoch(Record.Cycle);
    obs::DecisionRecord Mark;
    Mark.Epoch = Record.Cycle;
    Mark.Kind = obs::DecisionKind::EpochMark;
    Mark.Allocations = objectsInUse();
    Mark.TotLive = bytesInUse();
    Mark.TotUsed = Record.FreedBytes;
    Mark.Capacity = static_cast<uint32_t>(
        Record.FreedObjects > ~0u ? ~0u : Record.FreedObjects);
    Ledger.record(Mark);
  }

  CycleRecords.push_back(std::move(Record));
  InCollection = false;
  if (Hooks) {
    // "fold": the profiler folds this cycle's liveness statistics into its
    // per-context models (DESIGN.md §9).
    CHAM_TRACE_SPAN("gc", "fold");
    Hooks->onCycleEnd(CycleRecords.back());
  }
  return CycleRecords.back();
}

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

namespace {
/// Tracer that validates outgoing references instead of marking.
class VerifyTracer : public GcTracer {
public:
  explicit VerifyTracer(std::function<bool(uint32_t)> SlotOccupied)
      : SlotOccupied(std::move(SlotOccupied)) {}

  void visit(ObjectRef Ref) override {
    if (Ref.isNull() || !Problem.empty())
      return;
    if (!SlotOccupied(Ref.slot()))
      Problem = "dangling reference to slot "
                + std::to_string(Ref.slot());
  }

  std::string Problem;

private:
  std::function<bool(uint32_t)> SlotOccupied;
};
} // namespace

bool GcHeap::verifyHeap(std::string *ErrorOut) const {
  auto Fail = [&](const std::string &Message) {
    if (ErrorOut)
      *ErrorOut = Message;
    return false;
  };

  const uint32_t NumSlots = SlotCount.load(std::memory_order_relaxed);
  auto SlotOccupied = [this, NumSlots](uint32_t Slot) {
    return Slot < NumSlots && slotRef(Slot) != nullptr;
  };

  uint64_t Bytes = 0;
  uint64_t Objects = 0;
  VerifyTracer Tracer(SlotOccupied);
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    const HeapObject *Obj = slotRef(Slot).get();
    if (!Obj)
      continue;
    ++Objects;
    Bytes += Obj->shallowBytes();
    if (Obj->self().isNull() || Obj->self().slot() != Slot)
      return Fail("object in slot " + std::to_string(Slot)
                  + " has a mismatched self-reference");
    if (Obj->typeId() >= Types.size())
      return Fail("object in slot " + std::to_string(Slot)
                  + " has an unregistered TypeId");
    Obj->trace(Tracer);
    if (!Tracer.Problem.empty())
      return Fail("object in slot " + std::to_string(Slot) + ": "
                  + Tracer.Problem);
  }

  if (Bytes != bytesInUse())
    return Fail("byte accounting mismatch: tracked "
                + std::to_string(bytesInUse()) + ", actual "
                + std::to_string(Bytes));
  if (Objects != objectsInUse())
    return Fail("object accounting mismatch: tracked "
                + std::to_string(objectsInUse()) + ", actual "
                + std::to_string(Objects));

  // Every ungranted cached slot must be an in-range empty cell, and no
  // slot may be grantable twice (cached twice, or both cached and free).
  std::unordered_set<uint32_t> Grantable(FreeSlots.begin(), FreeSlots.end());
  if (Grantable.size() != FreeSlots.size())
    return Fail("duplicate entry in the free-slot list");
  auto VerifyCache = [&](const MutatorThread &Mut) -> std::string {
    for (size_t I = Mut.SlotCachePos; I < Mut.SlotCache.size(); ++I) {
      uint32_t Slot = Mut.SlotCache[I] & SlotIndexMask;
      if (Slot >= NumSlots)
        return "cached slot " + std::to_string(Slot)
               + " is beyond the slot table";
      if (slotRef(Slot))
        return "cached slot " + std::to_string(Slot) + " is occupied";
      if (!Grantable.insert(Slot).second)
        return "slot " + std::to_string(Slot)
               + " is grantable through two paths";
    }
    return "";
  };
  std::string CacheProblem = VerifyCache(Main);
  if (CacheProblem.empty())
    for (const std::unique_ptr<MutatorThread> &Mut : Mutators) {
      CacheProblem = VerifyCache(*Mut);
      if (!CacheProblem.empty())
        break;
    }
  if (!CacheProblem.empty())
    return Fail(CacheProblem);

  // Root list linkage, every thread's segment.
  auto VerifySegment = [&](const MutatorThread &Mut) -> std::string {
    const RootNode *Prev = &Mut.RootsHead;
    for (const RootNode *Node = Mut.RootsHead.Next; Node;
         Node = Node->Next) {
      if (Node->Prev != Prev)
        return "root list back-link is broken";
      if (!Node->Ref.isNull() && !SlotOccupied(Node->Ref.slot()))
        return "root references an empty slot";
      Prev = Node;
    }
    return "";
  };
  std::string Problem = VerifySegment(Main);
  if (Problem.empty())
    for (const std::unique_ptr<MutatorThread> &Mut : Mutators) {
      Problem = VerifySegment(*Mut);
      if (!Problem.empty())
        break;
    }
  if (!Problem.empty())
    return Fail(Problem);
  return true;
}
