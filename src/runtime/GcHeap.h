//===--- GcHeap.h - Managed heap with a collection-aware GC ----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The managed heap and its mark-and-sweep collector — the substrate that
/// stands in for the paper's J9 JVM. The heap tracks a simulated byte size
/// for every object under a `MemoryModel`, triggers a collection when an
/// allocation would exceed the configured heap limit, and signals
/// out-of-memory when live data alone exceeds the limit (the condition the
/// minimal-heap-size experiments of Fig. 6 bisect on).
///
/// The collector follows the paper's base parallel mark-and-sweep design
/// (§4.3.2): tracing runs on `gcThreads()` workers (1 by default) that
/// claim objects with a CAS on the mark epoch, and sweeping partitions the
/// slot table into one contiguous range per worker. The workers live in a
/// persistent `GcWorkerPool` owned by the heap (created lazily on the first
/// parallel cycle), so a cycle costs a wake/notify rather than a thread
/// spawn/join. Every cycle statistic is a commutative sum and every
/// profiler event is buffered per worker and replayed on the calling thread
/// in slot order after the phase barrier, so the recorded metrics are
/// identical at any thread count. During marking the collector consults the
/// semantic ADT map of every object and, for collection wrappers, computes
/// the ADT's live / used / core sizes and reports them to the installed
/// profiler hooks; during sweeping it reports dying collections so their
/// per-instance statistics can be folded into their allocation context (the
/// sweep-phase alternative to finalizers, §4.4).
///
/// The *mutator* side admits N application threads (DESIGN.md §9): each
/// thread registers through `registerMutatorThread` (see the runtime
/// layer's `MutatorScope`) and gets its own root-list segment and temp-root
/// stack; object references read lock-free through a chunked slot table
/// whose chunks are published once and never move; allocation serialises on
/// one mutex; and a collection triggered while mutators run stops the world
/// through a safepoint protocol — mutators poll at operation boundaries
/// (`safepointPoll`) or park in a `GcSafeRegion` while blocked. With no
/// registered mutators every path compiles down to the single-threaded
/// original (one relaxed flag load on the hot paths).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_GCHEAP_H
#define CHAMELEON_RUNTIME_GCHEAP_H

#include "runtime/GcCycle.h"
#include "runtime/GcWorkerPool.h"
#include "runtime/HeapHooks.h"
#include "runtime/HeapObject.h"
#include "runtime/MemoryModel.h"
#include "runtime/SemanticMap.h"
#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace chameleon {

/// Intrusive root-list node. Handles embed one; registration is O(1)
/// pointer splicing, cheap enough that handles can be moved and copied in
/// hot paths (vector reshuffles, per-iteration temporaries).
struct RootNode {
  ObjectRef Ref;
  RootNode *Prev = nullptr;
  RootNode *Next = nullptr;
  /// True while linked into a heap's root list.
  bool linked() const { return Prev != nullptr; }
};

/// Maximum depth of a per-thread temp-root stack (see pushTempRoot).
inline constexpr unsigned GcMaxTempRoots = 32;

/// Per-mutator-thread heap state: a root-list segment, a temp-root stack,
/// and the safepoint flag the stop-the-world protocol handshakes on. The
/// heap owns one embedded record for the main (unregistered) thread and one
/// per registered mutator. Fields other than the safepoint state are only
/// touched by the owning thread (or by the collector while the world is
/// stopped); the safepoint state is guarded by the heap's safepoint mutex.
struct MutatorThread {
  /// Sentinel head of this thread's intrusive root-list segment.
  RootNode RootsHead;
  ObjectRef TempRoots[GcMaxTempRoots];
  unsigned TempRootDepth = 0;
  std::thread::id ThreadId;
  /// True while the thread is stopped (parked at a poll or inside a
  /// GcSafeRegion). Guarded by the heap's safepoint mutex.
  bool AtSafepoint = false;
  /// False once unregistered (the record is retained; its lists are empty).
  bool Registered = false;

  /// -- Per-thread slot cache (DESIGN.md §12) -------------------------------
  /// A FIFO batch of pre-granted slot ids served without any lock on the
  /// allocation fast path. Entries tagged with SlotBumpTag were carved off
  /// the bump frontier (rather than popped from FreeSlots); the flush at
  /// every stop-the-world uses the tag to restore exactly the slot-table
  /// state the locked path would have, which is what keeps slot sequences
  /// — and therefore sweep order and every downstream statistic —
  /// byte-identical with caches on or off. Owned by the thread; touched by
  /// the collector only while the world is stopped.
  std::vector<uint32_t> SlotCache;
  size_t SlotCachePos = 0;
  /// Plain tally of cache-served grants, drained into the registry's
  /// cham.alloc.slot_cache_hits at refills and flushes.
  uint64_t SlotHits = 0;
};

/// A managed heap. Single-threaded by default; N mutator threads are
/// supported once they register (DESIGN.md §9).
class GcHeap {
public:
  /// Creates a heap with the given layout model and limit in model bytes
  /// (0 = unlimited).
  explicit GcHeap(MemoryModel Model = MemoryModel::jvm32(),
                  uint64_t HeapLimitBytes = 0);
  ~GcHeap();

  GcHeap(const GcHeap &) = delete;
  GcHeap &operator=(const GcHeap &) = delete;

  /// The layout model used for all size accounting.
  const MemoryModel &model() const { return Model; }

  /// The semantic-map registry for this heap.
  TypeRegistry &types() { return Types; }
  const TypeRegistry &types() const { return Types; }

  /// Installs (or clears) the profiler callback sink.
  void setProfilerHooks(HeapProfilerHooks *NewHooks) { Hooks = NewHooks; }

  /// Changes the heap limit (0 = unlimited). Does not trigger a collection.
  void setHeapLimit(uint64_t Bytes) { HeapLimitBytes = Bytes; }
  uint64_t heapLimit() const { return HeapLimitBytes; }

  /// Soft heap limit (0 = none), the graceful-degradation threshold below
  /// the hard limit: an allocation that would cross it triggers an
  /// emergency collect-then-shrink pass (rate-limited by allocation
  /// volume), and if the heap is still over afterwards the profiler hooks
  /// are told (`onHeapPressure`) so they can shed load; once usage drops
  /// back under the limit with 1/8 hysteresis headroom the hooks get
  /// `onHeapPressureCleared`. Unlike the hard limit, crossing the soft
  /// limit is never an error.
  void setSoftHeapLimit(uint64_t Bytes) { SoftLimitBytes = Bytes; }
  uint64_t softHeapLimit() const { return SoftLimitBytes; }

  /// Number of emergency (soft-limit) collections so far.
  uint64_t emergencyCollects() const { return EmergencyCollects; }

  /// True while the heap sits over its soft limit even after an emergency
  /// collection (i.e. the profiler has been told to shed).
  bool underPressure() const {
    return UnderPressure.load(std::memory_order_relaxed);
  }

  /// Minimum fraction of the heap limit that must be free after a
  /// pressure collection; less means the program is effectively spending
  /// its time collecting, and the heap declares OutOfMemory (HotSpot's
  /// GC-overhead criterion). 0 disables the check.
  void setMinFreeFraction(double Fraction) { MinFreeFraction = Fraction; }
  double minFreeFraction() const { return MinFreeFraction; }

  /// When nonzero, forces a (statistics-sampling) collection every time
  /// this many bytes have been allocated. Profiled runs use it so that the
  /// per-cycle collection statistics of Table 3 accumulate even when the
  /// heap limit alone would trigger few collections.
  void setGcSampleEveryBytes(uint64_t Bytes) { GcSampleEveryBytes = Bytes; }

  /// When set, each cycle record carries a per-type live-size breakdown
  /// (Table 3 "Type Distribution"). Off by default: it costs a vector per
  /// cycle.
  void setRecordTypeDistribution(bool On) { RecordTypeDistribution = On; }

  /// Number of collector threads (paper §4.3.2: "several parallel collector
  /// threads perform the tracing phase"). 1 (default) marks and sweeps on
  /// the calling thread. All cycle statistics are commutative sums and all
  /// profiler events are replayed in deterministic order, so the recorded
  /// results are identical regardless of the thread count; profiler hooks
  /// always run on the calling thread after the phase barrier. Changing the
  /// count retires any existing worker pool; the next parallel cycle
  /// re-creates it at the new size.
  void setGcThreads(unsigned Threads);
  unsigned gcThreads() const { return GcThreads; }

  /// When false, parallel phases fall back to spawning (and joining) fresh
  /// threads every cycle instead of waking the persistent pool — the
  /// pre-pool behaviour, kept as an A/B knob for the GC-throughput bench.
  void setUseWorkerPool(bool On);
  bool useWorkerPool() const { return UseWorkerPool; }

  /// When true (default), each mutator thread allocates slot ids out of a
  /// per-thread cache refilled in batches under a spinlock, so the hot
  /// allocation path takes no lock at all; when false, every allocation
  /// serialises on AllocMu exactly as before (the A/B baseline for the
  /// `--contend` bench). Flushes all caches on any change, so slot-table
  /// state is identical to what the locked path would have produced; safe
  /// to call only while no mutator threads are running.
  void setUseThreadCaches(bool On);
  bool useThreadCaches() const { return UseThreadCaches; }

  /// -- Concurrent mutators (DESIGN.md §9) ----------------------------------

  /// Registers the calling thread as a mutator: it gets its own root-list
  /// segment and temp-root stack, and the stop-the-world protocol waits for
  /// it before any collection. A registered thread must reach safepoints
  /// regularly — every collection-handle operation polls — or park in a
  /// `GcSafeRegion` while blocked, and must unregister (on the same thread)
  /// before it exits. Use the runtime layer's `MutatorScope`, which pairs
  /// this with the profiler-side registration.
  MutatorThread *registerMutatorThread();

  /// Unregisters \p M (calling thread must be its owner). Surviving roots
  /// are spliced into the main thread's segment, so handles created on the
  /// worker stay valid after it exits.
  void unregisterMutatorThread(MutatorThread *M);

  /// True while any mutator thread is registered. While true, allocation
  /// takes the heap's allocation mutex and collections stop the world; the
  /// *unregistered* threads (typically the coordinating main thread) must
  /// stay quiescent except while every registered mutator is parked.
  bool concurrentMutatorsActive() const {
    return MutatorsActive.load(std::memory_order_acquire);
  }

  /// The cheap check mutator threads make at operation boundaries: one
  /// acquire load and a predicted-not-taken branch. When a collection is
  /// pending, blocks until the world restarts.
  CHAM_MAY_SAFEPOINT void safepointPoll() {
    if (SafepointRequested.load(std::memory_order_acquire))
      safepointSlow();
  }

  /// Moves \p Obj into the heap and returns its reference.
  ///
  /// If the allocation would push the heap past its limit, a collection runs
  /// first; if live data still exceeds the limit afterwards the heap enters
  /// the out-of-memory state (the allocation itself still succeeds so the
  /// program remains structurally consistent — run drivers observe
  /// `outOfMemory()` and abort the run, mirroring a JVM OutOfMemoryError).
  CHAM_MAY_SAFEPOINT ObjectRef allocate(std::unique_ptr<HeapObject> Obj);

  /// Returns the object \p Ref points to. \p Ref must be non-null and live.
  /// Lock-free: published slots never move (chunked slot table).
  CHAM_NO_SAFEPOINT HeapObject &get(ObjectRef Ref) {
    assert(!Ref.isNull() && "dereferencing null ObjectRef");
    assert(Ref.slot() < SlotCount.load(std::memory_order_relaxed)
           && "ObjectRef beyond slot table");
    HeapObject *Obj = slotRef(Ref.slot()).get();
    assert(Obj && "dangling ObjectRef");
    return *Obj;
  }
  const HeapObject &get(ObjectRef Ref) const {
    return const_cast<GcHeap *>(this)->get(Ref);
  }

  /// Returns the object as \p T. Unchecked downcast: the caller must know
  /// the object's dynamic type (collections always do — the reference was
  /// produced by their own allocation).
  template <typename T> T &getAs(ObjectRef Ref) {
    return static_cast<T &>(get(Ref));
  }
  template <typename T> const T &getAs(ObjectRef Ref) const {
    return static_cast<const T &>(get(Ref));
  }

  /// Links \p Node as a GC root in the calling thread's root segment; the
  /// referenced object (if any) stays live. Use `Handle` rather than
  /// calling this directly.
  void addRoot(RootNode *Node) {
    assert(Node && !Node->linked() && "root node already linked");
    RootNode &Head = rootOwner().RootsHead;
    Node->Prev = &Head;
    Node->Next = Head.Next;
    if (Head.Next)
      Head.Next->Prev = Node;
    Head.Next = Node;
  }

  /// Unlinks a root previously added with addRoot. Positional: works
  /// regardless of which thread's segment the node sits in (the splicing
  /// at unregistration relies on this).
  void removeRoot(RootNode *Node) {
    assert(Node && Node->linked() && "removing an unlinked root node");
    Node->Prev->Next = Node->Next;
    if (Node->Next)
      Node->Next->Prev = Node->Prev;
    Node->Prev = nullptr;
    Node->Next = nullptr;
  }

  /// Maximum depth of a temp-root stack (see pushTempRoot).
  static constexpr unsigned MaxTempRoots = GcMaxTempRoots;

  /// Pushes a temporary root on the calling thread's temp-root stack. Temp
  /// roots protect operands held only in C++ locals across an allocation
  /// that might trigger a collection (e.g. a value being inserted while the
  /// map allocates its entry). They are a bounded stack because their
  /// lifetime is one collection operation; use `TempRootScope`, not these
  /// calls.
  void pushTempRoot(ObjectRef Ref) {
    MutatorThread &M = rootOwner();
    assert(M.TempRootDepth < MaxTempRoots && "temp root stack overflow");
    M.TempRoots[M.TempRootDepth++] = Ref;
  }

  /// Pops the \p Count most recent temp roots.
  void popTempRoots(unsigned Count) {
    MutatorThread &M = rootOwner();
    assert(Count <= M.TempRootDepth && "temp root stack underflow");
    M.TempRootDepth -= Count;
  }

  /// Runs one full mark-and-sweep cycle. \p Forced marks the record as an
  /// explicit request (statistics sampling) rather than allocation pressure.
  /// With registered mutators, first stops the world (all registered
  /// threads other than the caller parked at safepoints). Returns the
  /// completed cycle record.
  CHAM_MAY_SAFEPOINT const GcCycleRecord &collect(bool Forced = false);

  /// Applies \p Fn to every live-or-unswept object in the heap. Used by the
  /// end-of-run harvest that folds statistics of still-live collections;
  /// templated on the callback so the once-per-object call inlines instead
  /// of going through a std::function dispatch.
  template <typename CallbackT> void forEachObject(CallbackT &&Fn) {
    for (uint32_t Slot = 0, E = SlotCount.load(std::memory_order_relaxed);
         Slot != E; ++Slot)
      if (HeapObject *Obj = slotRef(Slot).get())
        Fn(*Obj);
  }

  /// Structural validator (the analogue of an IR verifier): checks that
  /// every object's self-reference matches its slot, that every traced
  /// outgoing reference points at an occupied slot, that every root list is
  /// well linked, and that the byte/object accounting matches the slots.
  /// \returns true when consistent; otherwise false, with a description of
  /// the first problem in \p ErrorOut (when non-null).
  bool verifyHeap(std::string *ErrorOut = nullptr) const;

  /// True once live data has exceeded the heap limit — or once the GC
  /// overhead guard tripped (GcOverheadLimit consecutive pressure
  /// collections each reclaiming less than 1/64 of the limit, the analogue
  /// of HotSpot's "GC overhead limit exceeded"). Sticky until cleared.
  bool outOfMemory() const { return OomFlag.load(std::memory_order_relaxed); }

  /// Consecutive low-yield pressure collections tolerated before the heap
  /// declares OutOfMemory. Prevents unbounded collect-per-allocation
  /// thrashing when the limit sits just above the live size.
  static constexpr unsigned GcOverheadLimit = 8;

  /// Clears the out-of-memory flag (used between bisection probes that
  /// reuse a heap; fresh heaps are the common case).
  void clearOutOfMemory() { OomFlag.store(false, std::memory_order_relaxed); }

  /// Bytes currently occupied by allocated (not yet swept) objects.
  uint64_t bytesInUse() const {
    return BytesInUse.load(std::memory_order_relaxed);
  }

  /// Number of allocated (not yet swept) objects.
  uint64_t objectsInUse() const {
    return ObjectsInUse.load(std::memory_order_relaxed);
  }

  /// Cumulative allocation volume since construction.
  uint64_t totalAllocatedBytes() const {
    return TotalAllocatedBytes.load(std::memory_order_relaxed);
  }
  uint64_t totalAllocatedObjects() const {
    return TotalAllocatedObjects.load(std::memory_order_relaxed);
  }

  /// Number of completed GC cycles.
  uint64_t cycleCount() const { return CycleRecords.size(); }

  /// All completed cycle records, oldest first.
  const std::vector<GcCycleRecord> &cycles() const { return CycleRecords; }

private:
  class Marker;
  class ParallelMarker;
  friend class GcSafeRegion;

  /// -- Chunked slot table ---------------------------------------------------
  /// Slot storage is an array of fixed-size chunks published through atomic
  /// pointers: a chunk, once installed, never moves, so `get()` stays
  /// lock-free while another thread (holding the allocation mutex) grows
  /// the table. Slot = chunk index (high bits) + offset (low bits).
  static constexpr unsigned SlotChunkShift = 12;
  static constexpr uint32_t SlotChunkCapacity = 1u << SlotChunkShift;
  static constexpr uint32_t MaxSlotChunks = 1u << 14; // 64M slots
  struct SlotChunk {
    std::unique_ptr<HeapObject> Objs[SlotChunkCapacity];
  };

  std::unique_ptr<HeapObject> &slotRef(uint32_t Slot) const {
    assert((Slot >> SlotChunkShift) < MaxSlotChunks && "slot out of range");
    SlotChunk *C =
        Chunks[Slot >> SlotChunkShift].load(std::memory_order_acquire);
    assert(C && "slot in an unallocated chunk");
    return C->Objs[Slot & (SlotChunkCapacity - 1)];
  }

  /// The single-threaded allocation body (caller holds AllocMu when
  /// mutators are active).
  ObjectRef allocateLocked(std::unique_ptr<HeapObject> Obj);

  /// -- Per-thread slot caches (DESIGN.md §12) ------------------------------
  /// Bit set on SlotCache entries carved off the bump frontier (as opposed
  /// to recycled from FreeSlots); the flush uses it to un-bump instead of
  /// pushing a free-slot entry the locked path would never have produced.
  static constexpr uint32_t SlotBumpTag = 1u << 31;
  static constexpr uint32_t SlotIndexMask = SlotBumpTag - 1;
  /// Slots granted per refill. Small enough that a stop-the-world flush
  /// rarely un-bumps much; large enough that SlotMu is cold.
  static constexpr uint32_t SlotCacheBatch = 32;

  /// True when allocating \p Bytes must fall back to the locked path
  /// because one of allocateLocked's collection triggers would fire (sample
  /// cadence, soft limit, pressure clearing, hard limit). Relaxed mirror of
  /// the exact trigger conditions; a stale read only costs a harmless trip
  /// through AllocMu.
  bool allocTriggersPending(uint64_t Bytes) const;

  /// Grants \p M the next slot id, refilling its cache (batched, under
  /// SlotMu) when empty. Caller must be M's owning thread; returns the slot
  /// with any SlotBumpTag already stripped.
  CHAM_NO_SAFEPOINT uint32_t grantSlot(MutatorThread &M);
  /// Refills M.SlotCache with SlotCacheBatch grants: FreeSlots entries
  /// first (FIFO order of the locked path), then bump-carved tagged ones.
  CHAM_NO_SAFEPOINT void refillSlotCache(MutatorThread &M);
  /// Returns M's ungranted slots. With \p StoppedWorld, cached bump-carved
  /// slots adjacent to the frontier are un-bumped (SlotCount rolled back)
  /// so the table state is exactly the locked path's; otherwise they are
  /// pushed on FreeSlots (caller holds SlotMu or is single-threaded).
  void flushSlotCache(MutatorThread &M, bool StoppedWorld);
  /// Flushes every thread's cache; world must be stopped (or no mutators).
  void flushAllSlotCaches();

  /// Lock-free fast path: grants a cached slot and places the object
  /// without AllocMu. Returns false when a trigger is pending or the cache
  /// machinery is off, in which case the caller takes the locked path.
  bool allocateFast(std::unique_ptr<HeapObject> &Obj, ObjectRef &RefOut);

  /// Returns trailing all-empty slot-table capacity to the OS analogue:
  /// trims the published slot count past the last live slot, drops the
  /// free-slot entries above it, and frees wholly-trailing chunks. Safe
  /// against concurrent lock-free readers because no live reference can
  /// point into the trimmed region. Called after emergency collections.
  void shrinkSlotTable();

  /// The collection body, entered with the world already stopped (or no
  /// mutators registered).
  const GcCycleRecord &collectStopped(bool Forced);

  /// The calling thread's MutatorThread record, or null when the thread
  /// never registered with this heap.
  MutatorThread *selfMutatorOrNull();
  /// Slow path of rootOwner (mutators active): resolve via thread-local.
  MutatorThread &rootOwnerSlow();
  MutatorThread &rootOwner() {
    if (!MutatorsActive.load(std::memory_order_relaxed))
      return Main;
    return rootOwnerSlow();
  }

  CHAM_MAY_SAFEPOINT void safepointSlow();
  void enterSafeRegion();
  void leaveSafeRegion();

  /// Marks from roots; fills the cycle record's live statistics. The
  /// phase bodies run with the world stopped and must never re-enter the
  /// safepoint machinery.
  CHAM_NO_SAFEPOINT void markPhase(GcCycleRecord &Record);
  /// The multi-threaded tracing phase (GcThreads > 1).
  CHAM_NO_SAFEPOINT void markPhaseParallel(GcCycleRecord &Record);
  /// Sweeps unmarked objects; fills the record's freed statistics.
  CHAM_NO_SAFEPOINT void sweepPhase(GcCycleRecord &Record);
  /// The multi-threaded sweep (GcThreads > 1): one contiguous slot range
  /// per worker, per-worker freed/death buffers, deterministic replay.
  CHAM_NO_SAFEPOINT void sweepPhaseParallel(GcCycleRecord &Record);
  /// Runs `Task(WorkerIndex)` on GcThreads workers and waits for all of
  /// them — through the persistent pool, or (UseWorkerPool off) through
  /// freshly spawned threads.
  void runOnWorkers(const std::function<void(unsigned)> &Task);

  MemoryModel Model;
  uint64_t HeapLimitBytes;
  double MinFreeFraction = 0.10;
  uint64_t GcSampleEveryBytes = 0;
  std::atomic<uint64_t> LastSampleAt{0};
  uint64_t SoftLimitBytes = 0;
  std::atomic<uint64_t> LastEmergencyAt{0};
  uint64_t EmergencyCollects = 0;
  std::atomic<bool> UnderPressure{false};
  TypeRegistry Types;
  HeapProfilerHooks *Hooks = nullptr;

  std::unique_ptr<std::atomic<SlotChunk *>[]> Chunks;
  std::atomic<uint32_t> SlotCount{0};
  std::vector<uint32_t> FreeSlots;
  /// Guards FreeSlots and the bump frontier during batched cache refills
  /// while mutators are active (AllocMu alone covers them otherwise).
  SpinLock SlotMu CHAM_LOCK_RANK(20);

  /// The main (unregistered) thread's roots and temp roots; also the
  /// landing segment for roots spliced out of unregistering mutators.
  MutatorThread Main;
  /// Registered mutator records; retained (Registered=false, lists empty)
  /// after unregistration so pointers stay valid for the heap's lifetime.
  std::vector<std::unique_ptr<MutatorThread>> Mutators;

  /// Identifies this heap instance in the thread-local mutator cache, so a
  /// heap reallocated at a dead heap's address cannot inherit stale state.
  const uint64_t InstanceId;

  std::atomic<bool> MutatorsActive{false};
  std::atomic<bool> SafepointRequested{false};
  /// Guards the safepoint handshake state (AtSafepoint flags, the Mutators
  /// vector) and is held by the collection initiator for the whole stopped
  /// window.
  std::mutex SpMu CHAM_LOCK_RANK(40);
  std::condition_variable SpCv;
  /// Serialises allocation when mutators are active.
  std::mutex AllocMu CHAM_LOCK_RANK(30);

  std::atomic<uint64_t> BytesInUse{0};
  std::atomic<uint64_t> ObjectsInUse{0};
  std::atomic<uint64_t> TotalAllocatedBytes{0};
  std::atomic<uint64_t> TotalAllocatedObjects{0};
  uint64_t CurrentEpoch = 0;
  unsigned LowYieldStreak = 0;
  std::atomic<bool> OomFlag{false};
  bool InCollection = false;
  bool RecordTypeDistribution = false;
  unsigned GcThreads = 1;
  bool UseWorkerPool = true;
  bool UseThreadCaches = true;
  /// Set instead of shrinking inline when an emergency collection runs
  /// with mutators active: the shrink must not race cache refills reading
  /// FreeSlots, so collectStopped performs it while the world is stopped.
  bool PendingShrink = false;
  /// Lazily created on the first parallel cycle; retired when the thread
  /// count changes or the pool is disabled.
  std::unique_ptr<GcWorkerPool> Pool;
  std::vector<GcCycleRecord> CycleRecords;
};

/// RAII scope marking the calling (registered) mutator as stopped for the
/// duration: a pending stop-the-world proceeds without waiting for this
/// thread. Enter one around any blocking wait (barriers, queue pops, lock
/// acquisitions outside the heap); the thread must not touch the heap while
/// inside. No-op on threads that never registered.
class GcSafeRegion {
public:
  explicit GcSafeRegion(GcHeap &Heap) : Heap(Heap) {
    Heap.enterSafeRegion();
  }
  GcSafeRegion(const GcSafeRegion &) = delete;
  GcSafeRegion &operator=(const GcSafeRegion &) = delete;
  /// Blocks until no collection is in progress, then resumes mutation.
  ~GcSafeRegion() { Heap.leaveSafeRegion(); }

private:
  GcHeap &Heap;
};

/// RAII scope for temp roots: pushes up to three references on construction
/// and pops them on destruction. Null references are pushed too (the marker
/// skips them); that keeps the pop count static.
class TempRootScope {
public:
  TempRootScope(GcHeap &Heap, ObjectRef A,
                ObjectRef B = ObjectRef::null(),
                ObjectRef C = ObjectRef::null())
      : Heap(Heap) {
    Heap.pushTempRoot(A);
    Heap.pushTempRoot(B);
    Heap.pushTempRoot(C);
  }

  TempRootScope(const TempRootScope &) = delete;
  TempRootScope &operator=(const TempRootScope &) = delete;

  ~TempRootScope() { Heap.popTempRoots(3); }

private:
  GcHeap &Heap;
};

/// RAII GC root: keeps the object referenced by its embedded node alive
/// while in scope. Copyable (each copy is an independent root), movable.
/// The node links into the root segment of the thread performing the
/// construction/copy/move; destroying a handle that lives in another
/// *running* thread's segment is a race — transfer handles only across
/// synchronisation points (the unregistration splice moves a finished
/// worker's surviving roots to the main segment).
class Handle {
public:
  Handle() = default;

  Handle(GcHeap &Heap, ObjectRef Ref) : Heap(&Heap) {
    Node.Ref = Ref;
    Heap.addRoot(&Node);
  }

  Handle(const Handle &Other) : Heap(Other.Heap) {
    Node.Ref = Other.Node.Ref;
    if (Heap)
      Heap->addRoot(&Node);
  }

  Handle(Handle &&Other) noexcept : Heap(Other.Heap) {
    Node.Ref = Other.Node.Ref;
    if (Heap) {
      Heap->removeRoot(&Other.Node);
      Heap->addRoot(&Node);
    }
    Other.Heap = nullptr;
    Other.Node.Ref = ObjectRef::null();
  }

  Handle &operator=(const Handle &Other) {
    if (this == &Other)
      return *this;
    reset();
    Heap = Other.Heap;
    Node.Ref = Other.Node.Ref;
    if (Heap)
      Heap->addRoot(&Node);
    return *this;
  }

  Handle &operator=(Handle &&Other) noexcept {
    if (this == &Other)
      return *this;
    reset();
    Heap = Other.Heap;
    Node.Ref = Other.Node.Ref;
    if (Heap) {
      Heap->removeRoot(&Other.Node);
      Heap->addRoot(&Node);
    }
    Other.Heap = nullptr;
    Other.Node.Ref = ObjectRef::null();
    return *this;
  }

  ~Handle() { reset(); }

  /// Drops the root (the handle becomes empty).
  void reset() {
    if (Heap)
      Heap->removeRoot(&Node);
    Heap = nullptr;
    Node.Ref = ObjectRef::null();
  }

  /// Re-targets the handle.
  void set(GcHeap &NewHeap, ObjectRef NewRef) {
    reset();
    Heap = &NewHeap;
    Node.Ref = NewRef;
    NewHeap.addRoot(&Node);
  }

  /// The referenced object, or null for an empty handle.
  ObjectRef ref() const { return Node.Ref; }

  /// True when the handle roots nothing.
  bool isNull() const { return Node.Ref.isNull(); }

  /// The heap this handle roots into (null when empty).
  GcHeap *heap() const { return Heap; }

private:
  GcHeap *Heap = nullptr;
  RootNode Node;
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_GCHEAP_H
