//===--- GcWorkerPool.cpp - Persistent GC worker threads ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/GcWorkerPool.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>

using namespace chameleon;

namespace {
// One increment per worker wake-up across every pool: dispatches / cycles
// approximates how many parallel phases each collection ran.
CHAM_METRIC_COUNTER(GcPoolTasks, "cham.gc.pool_tasks");
} // namespace

GcWorkerPool::GcWorkerPool(unsigned Workers) : Workers(Workers) {
  assert(Workers >= 1 && "pool needs at least one worker");
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

GcWorkerPool::~GcWorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void GcWorkerPool::run(const std::function<void(unsigned)> &TaskFn) {
  std::unique_lock<std::mutex> Lock(Mu);
  assert(Remaining == 0 && "pool dispatch is not reentrant");
  Task = &TaskFn;
  Remaining = Workers;
  ++Generation;
  WakeCv.notify_all();
  DoneCv.wait(Lock, [this] { return Remaining == 0; });
  Task = nullptr;
}

void GcWorkerPool::workerMain(unsigned Index) {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    WakeCv.wait(Lock, [&] {
      return ShuttingDown || Generation != SeenGeneration;
    });
    if (ShuttingDown)
      return;
    SeenGeneration = Generation;
    const std::function<void(unsigned)> *Current = Task;
    Lock.unlock();
    GcPoolTasks.inc();
    {
      CHAM_TRACE_SPAN_ARG("gc", "pool.task", "worker",
                          static_cast<int64_t>(Index));
      (*Current)(Index);
    }
    Lock.lock();
    if (--Remaining == 0)
      DoneCv.notify_one();
  }
}
