//===--- GcWorkerPool.h - Persistent GC worker threads ---------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent pool of collector worker threads. The paper's collector
/// (§4.3.2) runs its tracing phase on several parallel threads; spawning and
/// joining those threads on every cycle costs far more than the wake/notify
/// of parked workers once cycles are frequent (profiled runs force a
/// statistics-sampling cycle every few hundred KiB of allocation). The pool
/// is owned by `GcHeap`, created lazily on the first parallel cycle, and
/// keeps its workers parked on a condition variable between dispatches.
///
/// `run(Task)` executes `Task(WorkerIndex)` on every worker and returns when
/// all of them have finished — the same barrier semantics as the former
/// spawn-per-cycle code, so the mark and sweep phases use it unchanged. The
/// pool mutex is acquired/released around each dispatch, which provides the
/// happens-before edges between the calling thread's phase setup and the
/// workers (and back again for the workers' buffered results).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_GCWORKERPOOL_H
#define CHAMELEON_RUNTIME_GCWORKERPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chameleon {

/// A fixed-size pool of parked worker threads dedicated to GC phases.
class GcWorkerPool {
public:
  /// Starts \p Workers threads; they park immediately.
  explicit GcWorkerPool(unsigned Workers);

  /// Wakes any parked workers and joins them.
  ~GcWorkerPool();

  GcWorkerPool(const GcWorkerPool &) = delete;
  GcWorkerPool &operator=(const GcWorkerPool &) = delete;

  unsigned workerCount() const { return Workers; }

  /// Runs `Task(I)` for every worker index I in [0, workerCount()) on the
  /// pool threads and blocks until all of them return. Not reentrant; only
  /// the thread driving the collection may call it.
  void run(const std::function<void(unsigned)> &Task);

  /// Number of dispatches served (one per phase per parallel cycle).
  uint64_t dispatchCount() const { return Generation; }

private:
  void workerMain(unsigned Index);

  unsigned Workers;
  std::vector<std::thread> Threads;

  std::mutex Mu;
  /// Workers park on this until a new generation or shutdown.
  std::condition_variable WakeCv;
  /// The dispatching thread parks on this until Remaining drops to zero.
  std::condition_variable DoneCv;
  const std::function<void(unsigned)> *Task = nullptr;
  uint64_t Generation = 0;
  unsigned Remaining = 0;
  bool ShuttingDown = false;
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_GCWORKERPOOL_H
