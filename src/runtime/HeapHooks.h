//===--- HeapHooks.h - Collector-to-profiler callback interface -*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The callback interface through which the collection-aware collector feeds
/// the semantic profiler. The runtime layer knows nothing about the profiler
/// types; it hands over the opaque context tag the semantic map extracted
/// from the wrapper (paper §4.3: the collector "finds the ContextInfo object
/// and records the necessary information for that allocation context").
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_HEAPHOOKS_H
#define CHAMELEON_RUNTIME_HEAPHOOKS_H

#include "runtime/GcCycle.h"
#include "runtime/SemanticMap.h"

namespace chameleon {

/// Implemented by the semantic profiler; installed on a `GcHeap`.
class HeapProfilerHooks {
public:
  virtual ~HeapProfilerHooks();

  /// Called during marking for every live collection wrapper.
  /// \p ContextTag is the wrapper's ContextInfo (opaque), possibly null.
  virtual void onLiveCollection(const HeapObject &Obj,
                                const CollectionSizes &Sizes,
                                void *ContextTag) = 0;

  /// Called during sweeping for every dead collection wrapper, before it is
  /// destroyed. \p ObjectInfoTag is its ObjectContextInfo (opaque), possibly
  /// null. This is the sweep-phase alternative to finalizers that §4.4
  /// recommends.
  virtual void onCollectionDeath(const HeapObject &Obj, void *ContextTag,
                                 void *ObjectInfoTag) = 0;

  /// Called once at the end of each cycle with the cycle's record.
  virtual void onCycleEnd(const GcCycleRecord &Record) = 0;

  /// Called at the start of every cycle, after the world has stopped (all
  /// registered mutators parked) and before any marking. Profilers that
  /// buffer per-mutator-thread events drain them here so the cycle's
  /// live/death statistics fold against up-to-date contexts (DESIGN.md §9).
  /// Default: nothing — single-threaded profilers have nothing to drain.
  virtual void onStopTheWorld() {}

  /// Called when an allocation leaves the heap over its soft limit even
  /// after an emergency collection: the profiler should shed load (back off
  /// its sampling rate, bound its buffers). May fire repeatedly while the
  /// pressure lasts — one call per emergency collection that failed to get
  /// back under the limit. Default: ignore (no soft limit configured, or
  /// the sink has nothing to shed).
  virtual void onHeapPressure(uint64_t BytesInUse, uint64_t SoftLimitBytes) {
    (void)BytesInUse;
    (void)SoftLimitBytes;
  }

  /// Called once heap usage has dropped back under the soft limit (with
  /// hysteresis); the profiler may start restoring its sampling rate.
  virtual void onHeapPressureCleared() {}
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_HEAPHOOKS_H
