//===--- HeapObject.h - Base class of managed objects ----------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base class for every object living in the managed heap. An object carries
/// the `TypeId` under which its semantic map was registered, its simulated
/// size in bytes under the `MemoryModel`, and GC bookkeeping (slot index and
/// mark epoch). Subclasses enumerate their outgoing references by overriding
/// `trace`.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_HEAPOBJECT_H
#define CHAMELEON_RUNTIME_HEAPOBJECT_H

#include "runtime/ObjectRef.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace chameleon {

class GcHeap;

/// Identifies a type registered in a heap's `TypeRegistry`.
using TypeId = uint32_t;

/// Visitor through which objects report their outgoing references during
/// the marking phase.
class GcTracer {
public:
  virtual ~GcTracer();

  /// Marks \p Ref live and queues it for tracing. Null refs are ignored.
  virtual void visit(ObjectRef Ref) = 0;
};

/// A managed heap object. C++-side ownership belongs to the heap; program
/// code refers to objects only through `ObjectRef` (and roots them through
/// `Handle`).
class HeapObject {
public:
  HeapObject(TypeId Type, uint64_t ShallowBytes)
      : Type(Type), ShallowBytes(ShallowBytes) {}
  virtual ~HeapObject();

  HeapObject(const HeapObject &) = delete;
  HeapObject &operator=(const HeapObject &) = delete;

  /// Managed-object C++ storage comes from the runtime's size-class
  /// allocator (thread caches over central free lists, DESIGN.md §12), so
  /// sweep-time destruction recycles storage instead of hitting malloc.
  /// Class-scope operators: every `new Subclass(...)` — all allocation
  /// goes through std::make_unique — routes here with no call-site change.
  /// Defined in ThreadCache.cpp. Over-aligned subclasses (alignof > 16)
  /// would need an aligned overload; none exist and adding one without the
  /// allocator's support is a compile error by design.
  static void *operator new(size_t Size);
  static void operator delete(void *P) noexcept;
  static void operator delete(void *P, size_t Size) noexcept;

  /// Reports every outgoing reference to \p Tracer. The default reports
  /// nothing (leaf object).
  virtual void trace(GcTracer &Tracer) const;

  /// The type this object was allocated as.
  TypeId typeId() const { return Type; }

  /// Simulated size of this object alone, in model bytes.
  uint64_t shallowBytes() const { return ShallowBytes; }

  /// This object's own reference (valid once allocated into a heap).
  ObjectRef self() const { return Self; }

private:
  friend class GcHeap;

  TypeId Type;
  uint64_t ShallowBytes;
  ObjectRef Self;
  /// Object is live in cycle N iff MarkEpoch == heap's current epoch.
  /// Atomic so parallel marker threads can claim objects with a CAS; the
  /// sequential path uses relaxed loads/stores (same cost as plain ones).
  std::atomic<uint64_t> MarkEpoch{0};
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_HEAPOBJECT_H
