//===--- MemoryModel.h - Simulated Java object layout ----------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated object-layout model of the managed heap.
///
/// Chameleon's space metrics (live / used / core collection data, paper
/// §3.2.2) are byte counts under the JVM's object layout. This repository
/// replaces the JVM with a simulated heap, so the layout is made explicit
/// and configurable here. The defaults model the 32-bit layout the paper
/// reasons with in §2.3: an 8-byte object header, 4-byte references, 8-byte
/// alignment — under which a `HashMap` entry (header + next + prev + data
/// pointers) occupies exactly the 24 bytes the paper quotes.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_MEMORYMODEL_H
#define CHAMELEON_RUNTIME_MEMORYMODEL_H

#include <cassert>
#include <cstdint>

namespace chameleon {

/// Describes how simulated objects are laid out in the managed heap.
struct MemoryModel {
  /// Bytes of header on every plain object (mark word + class pointer).
  uint32_t ObjectHeaderBytes = 8;
  /// Bytes of header on every array (object header + length word).
  uint32_t ArrayHeaderBytes = 12;
  /// Bytes per reference field / reference array slot.
  uint32_t PointerBytes = 4;
  /// Allocation granule; every object size is rounded up to a multiple.
  uint32_t AlignmentBytes = 8;

  /// Rounds \p N up to the alignment granule.
  uint64_t align(uint64_t N) const {
    assert(AlignmentBytes != 0 && (AlignmentBytes & (AlignmentBytes - 1)) == 0
           && "alignment must be a nonzero power of two");
    return (N + AlignmentBytes - 1) & ~static_cast<uint64_t>(AlignmentBytes
                                                             - 1);
  }

  /// Size of a plain object with \p PointerFields reference fields and
  /// \p ScalarBytes bytes of primitive fields.
  uint64_t objectBytes(uint32_t PointerFields, uint32_t ScalarBytes = 0) const {
    return align(ObjectHeaderBytes
                 + static_cast<uint64_t>(PointerFields) * PointerBytes
                 + ScalarBytes);
  }

  /// Size of a reference array of \p Length slots.
  uint64_t arrayBytes(uint64_t Length) const {
    return align(ArrayHeaderBytes + Length * PointerBytes);
  }

  /// The 32-bit layout used throughout the paper (default).
  static MemoryModel jvm32() { return MemoryModel(); }

  /// A 64-bit layout (16-byte headers, 8-byte references) for sensitivity
  /// experiments; not used by the headline reproduction.
  static MemoryModel jvm64() {
    MemoryModel M;
    M.ObjectHeaderBytes = 16;
    M.ArrayHeaderBytes = 24;
    M.PointerBytes = 8;
    M.AlignmentBytes = 8;
    return M;
  }
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_MEMORYMODEL_H
