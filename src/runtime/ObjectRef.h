//===--- ObjectRef.h - Handle to a managed heap object ---------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ObjectRef` is a compact reference to an object in the managed heap — the
/// simulated analogue of a Java reference. The value 0 is the null reference.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_OBJECTREF_H
#define CHAMELEON_RUNTIME_OBJECTREF_H

#include <cstdint>
#include <functional>

namespace chameleon {

/// A reference to a managed heap object, or null.
class ObjectRef {
public:
  /// Constructs the null reference.
  ObjectRef() = default;

  /// Returns the null reference.
  static ObjectRef null() { return ObjectRef(); }

  /// Builds a reference from a heap slot index.
  static ObjectRef fromSlot(uint32_t Slot) {
    ObjectRef R;
    R.Raw = Slot + 1;
    return R;
  }

  /// True for the null reference.
  bool isNull() const { return Raw == 0; }

  /// The heap slot index; must not be called on null.
  uint32_t slot() const { return Raw - 1; }

  /// Raw encoded bits (0 for null); used by Value tagging.
  uint32_t raw() const { return Raw; }

  /// Rebuilds a reference from its raw bits.
  static ObjectRef fromRaw(uint32_t Raw) {
    ObjectRef R;
    R.Raw = Raw;
    return R;
  }

  friend bool operator==(ObjectRef A, ObjectRef B) { return A.Raw == B.Raw; }
  friend bool operator!=(ObjectRef A, ObjectRef B) { return A.Raw != B.Raw; }

private:
  uint32_t Raw = 0;
};

} // namespace chameleon

namespace std {
template <> struct hash<chameleon::ObjectRef> {
  size_t operator()(chameleon::ObjectRef R) const noexcept {
    return std::hash<uint32_t>()(R.raw());
  }
};
} // namespace std

#endif // CHAMELEON_RUNTIME_OBJECTREF_H
