//===--- PageArena.cpp - Slab backing store for the allocator -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PageArena.h"

#include <cassert>
#include <new>

using namespace chameleon::alloc;

void *PageArena::carve(size_t Bytes) {
  assert(Bytes > 0 && Bytes <= kSlabBytes && "span exceeds slab size");
  Bytes = (Bytes + 15) & ~size_t{15}; // keep the cursor 16-aligned
  SpinLockGuard G(Mu);
  if (Remaining < Bytes) {
    // The slab tail (< one span) is abandoned, a bounded waste tcmalloc
    // accepts too; ::operator new returns max_align_t-aligned storage so
    // the fresh cursor is 16-aligned.
    char *Slab = static_cast<char *>(::operator new(kSlabBytes));
    Slabs.push_back(Slab);
    Cursor = Slab;
    Remaining = kSlabBytes;
    Reserved += kSlabBytes;
  }
  char *Run = Cursor;
  Cursor += Bytes;
  Remaining -= Bytes;
  return Run;
}

uint64_t PageArena::reservedBytes() const {
  SpinLockGuard G(Mu);
  return Reserved;
}
