//===--- PageArena.h - Slab backing store for the allocator ----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backing store of the allocation substrate (DESIGN.md §12): a bump
/// allocator over large slabs obtained from ::operator new. Central free
/// lists carve spans (runs of same-class blocks) out of the arena when they
/// run dry; carved memory is never returned to the C++ heap — blocks
/// recirculate through the central lists and thread caches for the life of
/// the process, exactly like tcmalloc's page heap. Every span starts
/// 16-aligned (see SizeClasses.h for why that suffices).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_PAGEARENA_H
#define CHAMELEON_RUNTIME_PAGEARENA_H

#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chameleon::alloc {

class PageArena {
public:
  /// Slab granularity. Spans never exceed this, so one allocation from the
  /// C++ heap serves many carve requests.
  static constexpr size_t kSlabBytes = 1u << 20; // 1 MiB

  PageArena() = default;
  PageArena(const PageArena &) = delete;
  PageArena &operator=(const PageArena &) = delete;

  /// Carves a 16-aligned run of \p Bytes (<= kSlabBytes) from the current
  /// slab, starting a fresh slab when the remainder is too small.
  /// Thread-safe.
  CHAM_NO_SAFEPOINT void *carve(size_t Bytes);

  /// Total bytes obtained from the C++ heap so far.
  uint64_t reservedBytes() const;

private:
  mutable SpinLock Mu CHAM_LOCK_RANK(5);
  char *Cursor = nullptr;
  size_t Remaining = 0;
  uint64_t Reserved = 0;
  /// Slab bookkeeping. The arena is only ever destroyed at process exit
  /// (it lives behind a leaked singleton, see ThreadCache.cpp), so blocks
  /// handed out can never dangle; the vector keeps the slabs reachable so
  /// leak checkers see "still reachable", not "lost".
  std::vector<char *> Slabs;
};

} // namespace chameleon::alloc

#endif // CHAMELEON_RUNTIME_PAGEARENA_H
