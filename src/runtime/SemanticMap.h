//===--- SemanticMap.h - Collection-aware type descriptors -----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic ADT maps (paper §4.3.2). A collection ADT typically consists of
/// several heap objects (a wrapper, a backing structure, internal arrays,
/// per-element entries). A blind heap walk cannot tell an `Object[]` that
/// backs an `ArrayList` from an unrelated array; the semantic map registered
/// for each type tells the collector how to compute, from the *wrapper*
/// object, the aggregate live / used / core size of the whole ADT, and where
/// to find its allocation-context record. The collector is parametric on
/// these maps, so custom collection implementations profile exactly like the
/// built-in ones — the property the paper emphasises for user-supplied
/// collections.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_SEMANTICMAP_H
#define CHAMELEON_RUNTIME_SEMANTICMAP_H

#include "runtime/HeapObject.h"

#include <cassert>
#include <string>
#include <vector>

namespace chameleon {

class GcHeap;

/// The three space measures the collector computes per collection
/// (paper §3.2.2): occupied, actually-used, and ideal lower bound.
struct CollectionSizes {
  /// Total bytes of the ADT: wrapper + implementation + internals.
  uint64_t Live = 0;
  /// Live minus reserved-but-unused capacity (empty array slots, etc.).
  uint64_t Used = 0;
  /// Ideal bytes if the content were stored in an exactly-sized pointer
  /// array — the optimisation lower bound.
  uint64_t Core = 0;

  CollectionSizes &operator+=(const CollectionSizes &O) {
    Live += O.Live;
    Used += O.Used;
    Core += O.Core;
    return *this;
  }
};

/// Classifies how the collector treats objects of a type.
enum class TypeKind : uint8_t {
  /// Ordinary application object; contributes only to overall live data.
  Plain,
  /// A collection wrapper: the collector computes ADT sizes from it and
  /// attributes them to its allocation context.
  CollectionWrapper,
  /// An object owned by a collection ADT (backing array, entry, backing
  /// implementation). Its bytes are accounted through its owner's semantic
  /// map and must not be double-counted as an independent collection.
  CollectionInternal,
};

/// Per-type descriptor consulted by the collector. Function pointers keep
/// the runtime layer independent of the profiler and collections layers
/// above it; the layers that register maps cast the opaque tags back to
/// their own types.
struct SemanticMap {
  /// Human-readable type name, e.g. "HashMap" or "Object[]".
  std::string Name;
  TypeKind Kind = TypeKind::Plain;
  /// For CollectionWrapper types: computes the ADT's aggregate sizes.
  CollectionSizes (*ComputeSizes)(const HeapObject &Obj,
                                  const GcHeap &Heap) = nullptr;
  /// For CollectionWrapper types: returns the allocation-context record
  /// (a `profiler::ContextInfo *`, opaque here), or null when the wrapper
  /// was allocated with profiling off.
  void *(*ContextTagOf)(const HeapObject &Obj) = nullptr;
  /// For CollectionWrapper types: returns the per-instance usage record
  /// (a `profiler::ObjectContextInfo *`, opaque here), or null.
  void *(*ObjectInfoOf)(const HeapObject &Obj) = nullptr;
};

/// Registry of semantic maps for one heap. TypeIds are dense indices in
/// registration order; registration happens during runtime construction
/// (never from static constructors, per the coding guide).
class TypeRegistry {
public:
  /// Registers \p Map and returns its TypeId.
  TypeId registerType(SemanticMap Map) {
    assert((Map.Kind != TypeKind::CollectionWrapper
            || Map.ComputeSizes != nullptr)
           && "collection wrappers must provide a size function");
    Maps.push_back(std::move(Map));
    return static_cast<TypeId>(Maps.size() - 1);
  }

  /// Looks up the map registered for \p Type.
  const SemanticMap &get(TypeId Type) const {
    assert(Type < Maps.size() && "unregistered TypeId");
    return Maps[Type];
  }

  /// Number of registered types.
  size_t size() const { return Maps.size(); }

private:
  std::vector<SemanticMap> Maps;
};

} // namespace chameleon

#endif // CHAMELEON_RUNTIME_SEMANTICMAP_H
