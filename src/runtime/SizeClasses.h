//===--- SizeClasses.h - Allocation size-class table -----------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The size-class map of the tcmalloc-style allocation substrate
/// (DESIGN.md §12). A size class is a bucket of C++ block sizes that share
/// one central free list and one per-thread cache list; allocating from a
/// class hands out a block of the class's (rounded-up) size.
///
/// The table follows the gperftools shape: 8-byte-granular classes up to
/// 128 bytes (where most of the simulated-JVM object headers, map entries
/// and iterator objects land), geometrically coarser granularity up to one
/// 4 KiB page, and page-multiple classes up to 32 KiB. Anything larger is
/// not pooled at all (kDirectClass): oversize blocks go straight to
/// ::operator new/delete.
///
/// Layout guarantee: class sizes above 128 bytes are multiples of 16, and
/// the odd (…%16 == 8) classes all sit below 128 bytes. Since any C++ type
/// with alignof 16 has sizeof a multiple of 16 — and the block header is
/// 16 bytes — every allocation that needs 16-byte alignment lands in a
/// 16-multiple class and therefore on a 16-aligned block (spans start
/// 16-aligned). 8-aligned blocks only ever serve types with alignof <= 8.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_SIZECLASSES_H
#define CHAMELEON_RUNTIME_SIZECLASSES_H

#include <cstddef>
#include <cstdint>

namespace chameleon::alloc {

/// Number of pooled size classes. 16 classes of 8 B steps to 128, then 8
/// classes each of 16/32/64/128/256 B steps to 4 KiB, then 4 page-multiple
/// classes (8/16/24/32 KiB): 16 + 5*8 + 4 = 60.
inline constexpr uint32_t kNumClasses = 60;

/// Largest block size served from the pools; bigger requests bypass them.
inline constexpr uint32_t kMaxPooledSize = 32768;

/// Sentinel class index for blocks handed to ::operator new directly
/// (oversize blocks, and every block in passthrough mode).
inline constexpr uint32_t kDirectClass = 0xFFFFFFFFu;

/// Block size of class \p Idx in bytes.
constexpr uint32_t classSize(uint32_t Idx) {
  if (Idx < 16)
    return (Idx + 1) * 8; // 8, 16, …, 128
  if (Idx < 24)
    return 128 + (Idx - 15) * 16; // 144, …, 256
  if (Idx < 32)
    return 256 + (Idx - 23) * 32; // 288, …, 512
  if (Idx < 40)
    return 512 + (Idx - 31) * 64; // 576, …, 1024
  if (Idx < 48)
    return 1024 + (Idx - 39) * 128; // 1152, …, 2048
  if (Idx < 56)
    return 2048 + (Idx - 47) * 256; // 2304, …, 4096
  return (Idx - 55) * 8192; // 8192, 16384, 24576, 32768
}

/// Smallest class whose block fits \p Size bytes. \p Size must be in
/// [1, kMaxPooledSize].
constexpr uint32_t classIndexFor(size_t Size) {
  if (Size <= 128)
    return static_cast<uint32_t>((Size + 7) / 8) - 1;
  if (Size <= 256)
    return 16 + static_cast<uint32_t>((Size - 128 + 15) / 16) - 1;
  if (Size <= 512)
    return 24 + static_cast<uint32_t>((Size - 256 + 31) / 32) - 1;
  if (Size <= 1024)
    return 32 + static_cast<uint32_t>((Size - 512 + 63) / 64) - 1;
  if (Size <= 2048)
    return 40 + static_cast<uint32_t>((Size - 1024 + 127) / 128) - 1;
  if (Size <= 4096)
    return 48 + static_cast<uint32_t>((Size - 2048 + 255) / 256) - 1;
  return 56 + static_cast<uint32_t>((Size + 8191) / 8192) - 1;
}

/// How many blocks move between a thread cache and the central list in one
/// transfer: enough to amortise the central lock, capped so big classes do
/// not hoard whole pages per thread.
constexpr uint32_t transferBatch(uint32_t Idx) {
  uint32_t N = 4096 / classSize(Idx);
  return N < 2 ? 2 : (N > 32 ? 32 : N);
}

} // namespace chameleon::alloc

#endif // CHAMELEON_RUNTIME_SIZECLASSES_H
