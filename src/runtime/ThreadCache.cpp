//===--- ThreadCache.cpp - Per-thread allocation front end ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadCache.h"

#include "obs/Metrics.h"
#include "runtime/HeapObject.h"
#include "runtime/PageArena.h"
#include "support/Assert.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

using namespace chameleon;
using namespace chameleon::alloc;

namespace {

// Front-end telemetry (cham.alloc.*, DESIGN.md §12). The hot path bumps
// plain thread-local tallies; publishStats() folds deltas in here from the
// batched slow paths and from profiler epoch flushes.
CHAM_METRIC_COUNTER(AllocCacheHits, "cham.alloc.cache_hits");
CHAM_METRIC_COUNTER(AllocCacheMisses, "cham.alloc.cache_misses");
CHAM_METRIC_COUNTER(AllocTransferBatches, "cham.alloc.transfer_batches");
CHAM_METRIC_COUNTER(AllocDirectAllocs, "cham.alloc.direct_allocs");
CHAM_METRIC_COUNTER(AllocDoubleFree, "cham.alloc.double_free");

/// Largest transferBatch() over all classes (bounds the stack buffers).
constexpr uint32_t kMaxBatch = 32;

/// Cache capacity ceiling, in transfer batches (AIMD additive increase
/// saturates here).
constexpr uint32_t kMaxCapacityBatches = 8;

BlockHeader *&nextOf(BlockHeader *B) {
  return *static_cast<BlockHeader **>(blockPayload(B));
}

Mode initialMode() {
  if (const char *Env = std::getenv("CHAM_ALLOC_MODE")) {
    if (std::strcmp(Env, "passthrough") == 0)
      return Mode::Passthrough;
    if (std::strcmp(Env, "central") == 0)
      return Mode::Central;
  }
  return Mode::Cached;
}

std::atomic<uint8_t> &modeCell() {
  static std::atomic<uint8_t> Cell{static_cast<uint8_t>(initialMode())};
  return Cell;
}

/// Thread-cache lifetime tracking: deallocations that arrive after the
/// thread's cache was destroyed (static/thread teardown) go straight to
/// the central lists instead of resurrecting the dead thread_local.
thread_local enum class TlsPhase : uint8_t {
  Unborn,
  Alive,
  Dead
} TheTlsPhase = TlsPhase::Unborn;

struct TlsCacheSlot {
  TlsCacheSlot() { TheTlsPhase = TlsPhase::Alive; }
  ~TlsCacheSlot() { TheTlsPhase = TlsPhase::Dead; }
  ThreadCache Cache;
};

ThreadCache *threadCacheIfUsable() {
  if (TheTlsPhase == TlsPhase::Dead)
    return nullptr;
  return &threadCache();
}

} // namespace

Mode chameleon::alloc::mode() {
  return static_cast<Mode>(modeCell().load(std::memory_order_relaxed));
}

void chameleon::alloc::setMode(Mode M) {
  modeCell().store(static_cast<uint8_t>(M), std::memory_order_relaxed);
}

ThreadCache &chameleon::alloc::threadCache() {
  static thread_local TlsCacheSlot Slot;
  return Slot.Cache;
}

ThreadCache::~ThreadCache() {
  flush();
  publishStats();
  if (Cell)
    Cell->store(nullptr, std::memory_order_release);
}

std::shared_ptr<ThreadCache::LiveCell> ThreadCache::liveCell() {
  if (!Cell)
    Cell = std::make_shared<LiveCell>(this);
  return Cell;
}

BlockHeader *ThreadCache::allocate(uint32_t ClassIdx) {
  ClassList &L = Lists[ClassIdx];
  if (BlockHeader *B = L.Head) {
    L.Head = nextOf(B);
    --L.Count;
    ++Hits;
    return B;
  }
  ++Misses;
  const uint32_t Batch = transferBatch(ClassIdx);
  // AIMD growth: a miss means the working set outran the cache.
  L.Capacity = L.Capacity == 0
                   ? Batch
                   : std::min(L.Capacity + Batch,
                              Batch * kMaxCapacityBatches);
  BlockHeader *Buf[kMaxBatch];
  CentralState &Central = centralState();
  uint32_t Got =
      Central.Lists[ClassIdx].popBatch(Buf, Batch, ClassIdx, *Central.Arena);
  ++TransferBatches;
  assert(Got >= 1 && "central list must always deliver");
  for (uint32_t I = 1; I < Got; ++I) {
    nextOf(Buf[I]) = L.Head;
    L.Head = Buf[I];
    ++L.Count;
  }
  publishStats();
  return Buf[0];
}

void ThreadCache::deallocate(BlockHeader *Block, uint32_t ClassIdx) {
  ClassList &L = Lists[ClassIdx];
  const uint32_t Batch = transferBatch(ClassIdx);
  if (L.Capacity == 0)
    L.Capacity = Batch;
  nextOf(Block) = L.Head;
  L.Head = Block;
  ++L.Count;
  if (L.Count <= L.Capacity)
    return;
  // Overflow: release one batch and halve the capacity (the multiplicative
  // decrease; a burst of frees should not pin blocks in this thread).
  BlockHeader *Buf[kMaxBatch];
  uint32_t N = 0;
  while (N < Batch && L.Head) {
    Buf[N++] = L.Head;
    L.Head = nextOf(L.Head);
    --L.Count;
  }
  centralState().Lists[ClassIdx].pushBatch(Buf, N);
  ++TransferBatches;
  L.Capacity = std::max(Batch, L.Capacity / 2);
  publishStats();
}

void ThreadCache::flush() {
  CentralState &Central = centralState();
  for (uint32_t C = 0; C < kNumClasses; ++C) {
    ClassList &L = Lists[C];
    while (L.Head) {
      BlockHeader *Buf[kMaxBatch];
      uint32_t N = 0;
      while (N < kMaxBatch && L.Head) {
        Buf[N++] = L.Head;
        L.Head = nextOf(L.Head);
        --L.Count;
      }
      Central.Lists[C].pushBatch(Buf, N);
      ++TransferBatches;
    }
    assert(L.Count == 0);
  }
}

void ThreadCache::publishStats() {
  if (Hits != PublishedHits) {
    AllocCacheHits.add(Hits - PublishedHits);
    PublishedHits = Hits;
  }
  if (Misses != PublishedMisses) {
    AllocCacheMisses.add(Misses - PublishedMisses);
    PublishedMisses = Misses;
  }
  if (TransferBatches != PublishedTransfers) {
    AllocTransferBatches.add(TransferBatches - PublishedTransfers);
    PublishedTransfers = TransferBatches;
  }
}

void *chameleon::alloc::allocateBlock(size_t UserSize) {
  const size_t Total = UserSize + sizeof(BlockHeader);
  const Mode M = mode();
  if (M == Mode::Passthrough || Total > kMaxPooledSize) {
    auto *B = static_cast<BlockHeader *>(::operator new(Total));
    B->State = kDirectTag;
    B->ClassOrSize = Total;
    AllocDirectAllocs.inc();
    return blockPayload(B);
  }
  const uint32_t Cls = classIndexFor(Total);
  BlockHeader *B = nullptr;
  CentralState &Central = centralState();
  if (M == Mode::Cached) {
    if (ThreadCache *Cache = threadCacheIfUsable())
      B = Cache->allocate(Cls);
  }
  if (!B)
    Central.Lists[Cls].popBatch(&B, 1, Cls, *Central.Arena);
  assert(B->State == kFreeTag && "allocating a non-free block");
  B->State = kLiveTag;
  B->ClassOrSize = Cls;
  return blockPayload(B);
}

void chameleon::alloc::deallocateBlock(void *Payload) noexcept {
  if (!Payload)
    return;
  BlockHeader *B = blockOfPayload(Payload);
  switch (B->State) {
  case kDirectTag:
    ::operator delete(B);
    return;
  case kLiveTag: {
    const uint32_t Cls = static_cast<uint32_t>(B->ClassOrSize);
    assert(Cls < kNumClasses && "live block with a bad class index");
    B->State = kFreeTag;
    if (mode() == Mode::Cached)
      if (ThreadCache *Cache = threadCacheIfUsable()) {
        Cache->deallocate(B, Cls);
        return;
      }
    centralState().Lists[Cls].pushBatch(&B, 1);
    return;
  }
  case kFreeTag:
    // Double return. Count it and leak the block: pushing it again would
    // corrupt a free list, which is strictly worse. The ASan job catches
    // the caller via the passthrough mode, where this becomes a real
    // double-delete.
    AllocDoubleFree.inc();
    CHAM_DCHECK(false, "double return of a pooled block");
    return;
  default:
    assert(false && "pointer not obtained from allocateBlock");
  }
}

//===----------------------------------------------------------------------===//
// HeapObject storage operators
//===----------------------------------------------------------------------===//

void *HeapObject::operator new(size_t Size) {
  return alloc::allocateBlock(Size);
}

void HeapObject::operator delete(void *P) noexcept {
  alloc::deallocateBlock(P);
}

void HeapObject::operator delete(void *P, size_t) noexcept {
  alloc::deallocateBlock(P);
}
