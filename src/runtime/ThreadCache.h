//===--- ThreadCache.h - Per-thread allocation front end -------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front end of the tcmalloc-style allocation substrate (DESIGN.md
/// §12): a per-thread cache of free blocks per size class, so the hot
/// allocate/deallocate path is a thread-local list push/pop with no atomic
/// operations. Misses refill a whole transfer batch from the class's
/// central list; overflows return a batch. Cache capacity adapts AIMD-style
/// (grow by one batch on a miss, halve on overflow) so a thread's cache
/// tracks its live churn per class instead of hoarding.
///
/// `HeapObject::operator new/delete` route every managed object's C++
/// storage through this allocator (see allocateBlock/deallocateBlock), so
/// collections, map entries, iterators and application payloads all recycle
/// through the pools — the `Handle::retire`/sweep path returns storage here
/// when the GC destroys an object. The mode knob keeps two escape hatches:
/// `Central` bypasses the thread caches (every operation pays the central
/// spinlock — the contention baseline for the A/B bench) and `Passthrough`
/// forwards to ::operator new/delete (full ASan redzone/use-after-free
/// coverage; also selectable via CHAM_ALLOC_MODE=passthrough).
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_RUNTIME_THREADCACHE_H
#define CHAMELEON_RUNTIME_THREADCACHE_H

#include "runtime/CentralFreeList.h"
#include "runtime/SizeClasses.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace chameleon::alloc {

/// How the process serves HeapObject storage.
enum class Mode : uint8_t {
  /// Thread caches over central lists over the arena (the default).
  Cached,
  /// Central lists only: every alloc/free takes the class spinlock.
  Central,
  /// Straight ::operator new/delete per object (sanitizer-friendly).
  Passthrough,
};

/// Process-wide mode. Reading is one relaxed load; switching affects only
/// future allocations (each block's header remembers how to free it).
Mode mode();
void setMode(Mode M);

/// One thread's cache. Obtain the calling thread's instance via
/// threadCache(); the type is public so the profiler can keep a handle to
/// the cache of each mutator thread (ProfilerThreadState::AllocCache) and
/// publish its counters at deterministic flush points.
class ThreadCache {
public:
  ThreadCache() = default;
  ThreadCache(const ThreadCache &) = delete;
  ThreadCache &operator=(const ThreadCache &) = delete;
  /// Thread exit: every cached block goes back to its central list.
  ~ThreadCache();

  /// Pops a block of \p ClassIdx, refilling from the central list on miss.
  CHAM_NO_SAFEPOINT BlockHeader *allocate(uint32_t ClassIdx);

  /// Pushes \p Block back; releases a batch centralward on overflow.
  CHAM_NO_SAFEPOINT void deallocate(BlockHeader *Block, uint32_t ClassIdx);

  /// Returns every cached block to the central lists (the cache stays
  /// usable). Tests use it to make cache-state deterministic across runs.
  void flush();

  /// Adds the hit/miss/transfer tallies accumulated since the last publish
  /// to the global cham.alloc.* counters. Called from the slow paths and
  /// from profiler epoch flushes; the hot path only bumps plain locals.
  void publishStats();

  /// Cross-thread liveness token: holds this cache's address until the
  /// cache is destroyed (thread exit), then null. Holders that publish
  /// from another thread (the profiler's epoch flush) load through it, so
  /// a dead thread's cache — a destroyed thread_local — is never touched.
  using LiveCell = std::atomic<ThreadCache *>;
  std::shared_ptr<LiveCell> liveCell();

private:
  struct ClassList {
    BlockHeader *Head = nullptr;
    uint32_t Count = 0;
    /// AIMD capacity; 0 means "not used yet" (initialised to one transfer
    /// batch on first touch).
    uint32_t Capacity = 0;
  };

  ClassList Lists[kNumClasses];

  // Plain per-thread tallies; publishStats() moves deltas to the registry.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t TransferBatches = 0;
  uint64_t PublishedHits = 0;
  uint64_t PublishedMisses = 0;
  uint64_t PublishedTransfers = 0;

  /// Created on first liveCell() call; nulled by the destructor.
  std::shared_ptr<LiveCell> Cell;
};

/// The calling thread's cache (function-local thread_local: constructed on
/// first use, flushed at thread exit).
ThreadCache &threadCache();

/// Allocates storage for a HeapObject of \p UserSize bytes according to
/// the current mode. The returned pointer is the payload (header hidden),
/// aligned for any HeapObject subclass.
CHAM_NO_SAFEPOINT void *allocateBlock(size_t UserSize);

/// Returns a block obtained from allocateBlock. Routes by the block's own
/// header, so blocks survive mode switches; a double return is counted
/// (cham.alloc.double_free) and the block leaked rather than corrupting a
/// free list.
CHAM_NO_SAFEPOINT void deallocateBlock(void *Payload) noexcept;

} // namespace chameleon::alloc

#endif // CHAMELEON_RUNTIME_THREADCACHE_H
