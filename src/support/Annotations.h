//===--- Annotations.h - Static-analysis annotation macros -----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// No-op annotation macros read by `chameleon-checker` (src/analysis,
/// DESIGN.md §13). They expand to nothing — the compiler never sees them —
/// but the checker's token-level frontend recognises the macro names and
/// turns them into statically enforced contracts:
///
///  - `CHAM_MAY_SAFEPOINT` on a function declaration or definition marks a
///    function that may reach a GC safepoint (poll, allocation, or a
///    collection trigger). These are the seeds of the checker's transitive
///    safepoint-reachability analysis.
///
///  - `CHAM_NO_SAFEPOINT` marks a function that must never reach a
///    safepoint — allocator slow paths, marker/sweeper internals, anything
///    that runs while the world is stopped or while holding a spinlock.
///    The checker reports `check-safepoint-reach` when such a function can
///    transitively call anything may-safepoint.
///
///  - `CHAM_LOCK_RANK(N)` trails a lock member declaration
///    (`SpinLock Mu CHAM_LOCK_RANK(10);`) and assigns it a deadlock-
///    avoidance rank. Locks must be acquired in strictly decreasing rank
///    order; the checker reports `check-lock-rank` on inversions. The
///    repo's hierarchy (outermost first): FlightRecorder::Mu (60) >
///    FleetAgent::Mu (55) > FleetAggregator::Mu (50) > InMemoryHub::Mu
///    (45) > InMemoryHub::Pipe::Mu (44) > GcHeap::SpMu (40) >
///    DecisionLog::Mu (35) > GcHeap::AllocMu (30) > GcHeap::SlotMu (20)
///    > CentralFreeList::Mu (10) > PageArena::Mu (5). DecisionLog sits
///    between SpMu and AllocMu because GC-boundary records are appended
///    while the world is stopped; FlightRecorder is outermost because
///    checkpoint() snapshots every other subsystem.
///
/// Findings the checker gets wrong (its frontend is token-level: macros,
/// templates and overload sets are resolved heuristically) are silenced in
/// place with a suppression comment naming the diagnostic:
///
///     // cham-checker-ok(check-raw-across-safepoint): rooted via ShadowRoot
///
/// or recorded in tools/checker_baseline.txt for pre-existing debt.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_ANNOTATIONS_H
#define CHAMELEON_SUPPORT_ANNOTATIONS_H

/// The annotated function may reach a GC safepoint (transitively).
#define CHAM_MAY_SAFEPOINT

/// The annotated function must never reach a GC safepoint (transitively).
#define CHAM_NO_SAFEPOINT

/// Deadlock-avoidance rank of a lock member; acquire in strictly
/// decreasing rank order.
#define CHAM_LOCK_RANK(N)

#endif // CHAMELEON_SUPPORT_ANNOTATIONS_H
