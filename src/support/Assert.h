//===--- Assert.h - Assertion helpers for Chameleon ------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small assertion helpers shared by every Chameleon library. The project
/// follows the LLVM convention of asserting liberally with a message and of
/// marking impossible control flow with an unreachable macro instead of
/// `assert(false)`.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_ASSERT_H
#define CHAMELEON_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached. Prints the message
/// and aborts; in optimized builds this still aborts (cheap, and the library
/// is a research tool where silent miscompiles are worse than an abort).
#define CHAM_UNREACHABLE(Msg)                                                  \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", __FILE__, __LINE__,     \
                 (Msg));                                                       \
    std::abort();                                                              \
  } while (false)

/// Contract check for caller bugs the runtime can also tolerate (double
/// retire, use after retire, ...). The build keeps plain assert() enabled
/// even in optimized configurations, so these checks get their own opt-in
/// macro: compiling with -DCHAMELEON_PARANOID turns them into hard aborts,
/// the default build counts the violation and carries on.
#ifdef CHAMELEON_PARANOID
#define CHAM_DCHECK(Cond, Msg) assert((Cond) && Msg)
#else
#define CHAM_DCHECK(Cond, Msg) ((void)0)
#endif

#endif // CHAMELEON_SUPPORT_ASSERT_H
