//===--- FaultInjector.cpp - Deterministic fault injection ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "obs/Metrics.h"

namespace {
// The injector's accounting, registry-backed (one global injector, so
// plain statics). arm() re-baselines them; stats() reads them back.
CHAM_METRIC_COUNTER(FaultHits, "cham.fault.hits");
CHAM_METRIC_COUNTER(FaultAllocFailures, "cham.fault.alloc_failures_thrown");
CHAM_METRIC_COUNTER(FaultForcedGcs, "cham.fault.forced_gcs");
CHAM_METRIC_COUNTER(FaultSuppressed, "cham.fault.suppressed_failures");
} // namespace

namespace chameleon {

bool faultSiteMatch(const char *Pattern, const char *Site) {
  // Iterative glob with single-star backtracking: on mismatch past a '*',
  // rewind to the star and let it swallow one more site character.
  const char *Star = nullptr;
  const char *Resume = nullptr;
  while (*Site) {
    if (*Pattern == '*') {
      Star = Pattern++;
      Resume = Site;
    } else if (*Pattern == *Site) {
      ++Pattern;
      ++Site;
    } else if (Star) {
      Pattern = Star + 1;
      Site = ++Resume;
    } else {
      return false;
    }
  }
  while (*Pattern == '*')
    ++Pattern;
  return *Pattern == '\0';
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Injector;
  return Injector;
}

void FaultInjector::arm(const FaultPlan &Plan) {
  std::lock_guard<std::mutex> Lock(Mu);
  Rules.clear();
  Rules.reserve(Plan.Rules.size());
  for (size_t I = 0; I < Plan.Rules.size(); ++I) {
    RuleState State;
    State.Rule = Plan.Rules[I];
    // Each rule gets its own stream: decorrelate the rules of one plan, and
    // decorrelate the same rule list under different seeds.
    State.Rng = SplitMix64(Plan.Seed + 0x9E3779B97F4A7C15ull * (I + 1));
    Rules.push_back(std::move(State));
  }
  FaultHits.reset();
  FaultAllocFailures.reset();
  FaultForcedGcs.reset();
  FaultSuppressed.reset();
  Armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { Armed.store(false, std::memory_order_release); }

FaultAction FaultInjector::evaluate(const char *Site, bool AllowFail,
                                    bool AllowGc) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Armed.load(std::memory_order_relaxed))
    return FaultAction::None; // lost a disarm race; stay quiet
  FaultHits.inc();
  FaultAction Delivered = FaultAction::None;
  for (RuleState &State : Rules) {
    if (!faultSiteMatch(State.Rule.SitePattern.c_str(), Site))
      continue;
    ++State.Hits;
    bool WantsFire;
    if (State.Rule.NthHit != 0)
      WantsFire = State.Hits == State.Rule.NthHit;
    else
      // Draw unconditionally so the stream position depends only on the hit
      // count, never on what other rules delivered.
      WantsFire = State.Rng.nextBool(State.Rule.Probability);
    if (!WantsFire || State.Fires >= State.Rule.MaxFires)
      continue;
    if (State.Rule.Action == FaultAction::FailAlloc && !AllowFail) {
      FaultSuppressed.inc();
      continue;
    }
    if (State.Rule.Action == FaultAction::ForceGc && !AllowGc)
      continue;
    if (Delivered != FaultAction::None)
      continue; // a prior rule already claimed this hit
    ++State.Fires;
    Delivered = State.Rule.Action;
    if (Delivered == FaultAction::FailAlloc)
      FaultAllocFailures.inc();
    else
      FaultForcedGcs.inc();
  }
  return Delivered;
}

FaultStats FaultInjector::stats() const {
  FaultStats S;
  S.Hits = FaultHits.value();
  S.AllocFailuresThrown = FaultAllocFailures.value();
  S.ForcedGcs = FaultForcedGcs.value();
  S.SuppressedFailures = FaultSuppressed.value();
  return S;
}

std::vector<FaultInjector::RuleReport> FaultInjector::ruleReports() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<RuleReport> Reports;
  Reports.reserve(Rules.size());
  for (const RuleState &State : Rules)
    Reports.push_back({State.Rule.SitePattern, State.Hits, State.Fires});
  return Reports;
}

} // namespace chameleon
