//===--- FaultInjector.h - Deterministic fault injection ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, site-tagged fault injection. Production code marks interesting
/// instants with CHAM_FAULT("site") (throw-only sites) or
/// CHAM_FAULT_GC("site", Heap) (sites that may additionally force a full
/// collection). A test or chaos harness arms a FaultPlan — an ordered list
/// of rules matching site names by glob and firing on an exact Nth hit or
/// with a seeded per-hit probability — and the marked code starts failing
/// deterministically.
///
/// Injected allocation failures (`FaultAction::FailAlloc`) are delivered as
/// a thrown InjectedFault, but only inside a FaultInjector::FailScope; the
/// runtime arms such a scope around transactional work that is prepared to
/// unwind (live migration). Outside any FailScope a matched failure is
/// counted as suppressed instead of thrown, so a plan with broad globs
/// cannot crash code that has no recovery story.
///
/// When no plan is armed the whole machinery is a single relaxed atomic
/// load; compiling with -DCHAMELEON_NO_FAULT_INJECTION removes even that.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_FAULTINJECTOR_H
#define CHAMELEON_SUPPORT_FAULTINJECTOR_H

#include "support/SplitMix64.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chameleon {

enum class FaultAction : uint8_t { None, FailAlloc, ForceGc };

/// Thrown (from CHAM_FAULT sites inside an armed FailScope) to simulate an
/// allocation failure. Deliberately not derived from std::exception: nothing
/// but the migration transaction may catch it, and a stray `catch (const
/// std::exception &)` must not swallow it silently.
struct InjectedFault {
  const char *Site;
};

struct FaultRule {
  /// Glob over site names; '*' matches any (possibly empty) run of
  /// characters, every other character matches itself.
  std::string SitePattern;
  FaultAction Action = FaultAction::FailAlloc;
  /// 1-based: fire on exactly the Nth matching hit. 0 = fire per-hit with
  /// \c Probability instead.
  uint64_t NthHit = 0;
  /// Per-hit fire chance, drawn from this rule's own seeded stream; the
  /// draw sequence depends only on (plan seed, rule index, hit count), so
  /// replaying a seed replays the exact fault schedule.
  double Probability = 0.0;
  /// Stop firing after this many deliveries (~0 = unlimited).
  uint64_t MaxFires = ~0ull;
};

struct FaultPlan {
  uint64_t Seed = 0;
  std::vector<FaultRule> Rules;
};

/// Snapshot of the injector's accounting. The counters themselves live in
/// the telemetry metrics registry (`cham.fault.*`, DESIGN.md §11); this
/// struct is the thin read the pre-telemetry callers keep using.
struct FaultStats {
  uint64_t Hits = 0;               ///< Injection points evaluated while armed.
  uint64_t AllocFailuresThrown = 0;///< FailAlloc actually delivered.
  uint64_t ForcedGcs = 0;          ///< ForceGc actually delivered.
  uint64_t SuppressedFailures = 0; ///< FailAlloc matched outside a FailScope.
};

/// \returns true when \p Site matches \p Pattern ('*' wildcards).
bool faultSiteMatch(const char *Pattern, const char *Site);

class FaultInjector {
public:
  /// The process-global injector all CHAM_FAULT sites consult.
  static FaultInjector &instance();

  static bool enabled() { return Armed.load(std::memory_order_relaxed); }
  static bool failScopeArmed() { return FailScopeDepth > 0; }

  /// Installs \p Plan and starts evaluating sites. Resets all counters.
  void arm(const FaultPlan &Plan);

  /// Stops evaluating sites. Rule state and counters survive until the next
  /// arm() so harnesses can report what actually fired.
  void disarm();

  /// Core decision for one injection-point hit. Called by the CHAM_FAULT
  /// macros only while enabled(). FailAlloc is only returned when
  /// \p AllowFail (the caller is inside a FailScope); ForceGc only when
  /// \p AllowGc (the site can tolerate a collection). The first rule whose
  /// action is deliverable wins, but every matching rule advances its hit
  /// counter and probability stream so outcomes stay seed-deterministic
  /// regardless of scope state.
  FaultAction evaluate(const char *Site, bool AllowFail, bool AllowGc);

  FaultStats stats() const;

  struct RuleReport {
    std::string SitePattern;
    uint64_t Hits = 0;
    uint64_t Fires = 0;
  };
  std::vector<RuleReport> ruleReports() const;

  /// RAII: while at least one FailScope is live on this thread, matched
  /// FailAlloc rules are thrown rather than suppressed.
  class FailScope {
  public:
    FailScope() { ++FailScopeDepth; }
    ~FailScope() { --FailScopeDepth; }
    FailScope(const FailScope &) = delete;
    FailScope &operator=(const FailScope &) = delete;
  };

private:
  struct RuleState {
    FaultRule Rule;
    SplitMix64 Rng{0};
    uint64_t Hits = 0;
    uint64_t Fires = 0;
  };

  inline static std::atomic<bool> Armed{false};
  inline static thread_local int FailScopeDepth = 0;

  mutable std::mutex Mu;
  std::vector<RuleState> Rules;
};

} // namespace chameleon

#if defined(CHAMELEON_NO_FAULT_INJECTION)

#define CHAM_FAULT(SiteStr) ((void)0)
#define CHAM_FAULT_GC(SiteStr, Heap) ((void)0)

#else

/// Throw-only injection point: may deliver FailAlloc (inside a FailScope).
#define CHAM_FAULT(SiteStr)                                                    \
  do {                                                                         \
    if (::chameleon::FaultInjector::enabled() &&                               \
        ::chameleon::FaultInjector::instance().evaluate(                       \
            SiteStr, ::chameleon::FaultInjector::failScopeArmed(),             \
            /*AllowGc=*/false) == ::chameleon::FaultAction::FailAlloc)         \
      throw ::chameleon::InjectedFault{SiteStr};                               \
  } while (false)

/// Injection point that may additionally force a full collection on the
/// given heap (any expression with a collect(bool) member).
#define CHAM_FAULT_GC(SiteStr, Heap)                                           \
  do {                                                                         \
    if (::chameleon::FaultInjector::enabled()) {                               \
      switch (::chameleon::FaultInjector::instance().evaluate(                 \
          SiteStr, ::chameleon::FaultInjector::failScopeArmed(),               \
          /*AllowGc=*/true)) {                                                 \
      case ::chameleon::FaultAction::FailAlloc:                                \
        throw ::chameleon::InjectedFault{SiteStr};                             \
      case ::chameleon::FaultAction::ForceGc:                                  \
        (Heap).collect(/*Forced=*/true);                                       \
        break;                                                                 \
      default:                                                                 \
        break;                                                                 \
      }                                                                        \
    }                                                                          \
  } while (false)

#endif // CHAMELEON_NO_FAULT_INJECTION

#endif // CHAMELEON_SUPPORT_FAULTINJECTOR_H
