//===--- Format.cpp - Text formatting helpers ----------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdio>

using namespace chameleon;

std::string chameleon::formatBytes(uint64_t Bytes) {
  char Buf[64];
  if (Bytes < 1024) {
    std::snprintf(Buf, sizeof(Buf), "%llu B",
                  static_cast<unsigned long long>(Bytes));
    return Buf;
  }
  const char *Units[] = {"KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  int Unit = -1;
  while (Value >= 1024.0 && Unit < 3) {
    Value /= 1024.0;
    ++Unit;
  }
  std::snprintf(Buf, sizeof(Buf), "%.2f %s", Value, Units[Unit]);
  return Buf;
}

std::string chameleon::formatPercent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Fraction * 100.0);
  return Buf;
}

std::string chameleon::formatDouble(double X, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, X);
  return Buf;
}

TextTable::TextTable(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() &&
         "row arity must match header arity");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I != 0)
        Line += "  ";
      Line += Cells[I];
      Line.append(Widths[I] - Cells[I].size(), ' ');
    }
    // Trim trailing spaces so golden tests are whitespace-stable.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t Total = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    Total += Widths[I] + (I == 0 ? 0 : 2);
  Out.append(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
