//===--- Format.h - Text formatting helpers --------------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small text-formatting helpers used by reports, benches and examples:
/// human-readable byte counts, fixed-point percentages, and a simple
/// fixed-width table writer that renders the rows the paper's figures report.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_FORMAT_H
#define CHAMELEON_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace chameleon {

/// Renders \p Bytes as a human readable quantity, e.g. "1.50 MiB".
std::string formatBytes(uint64_t Bytes);

/// Renders \p Fraction (0..1) as a percentage with one decimal, e.g. "42.5%".
std::string formatPercent(double Fraction);

/// Renders \p X with \p Decimals fractional digits.
std::string formatDouble(double X, int Decimals = 2);

/// Fixed-width plain-text table writer. Collects rows and renders them with
/// columns sized to the widest cell, the format used by every bench binary.
class TextTable {
public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> Headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (headers, separator, rows) as a string.
  std::string render() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace chameleon

#endif // CHAMELEON_SUPPORT_FORMAT_H
