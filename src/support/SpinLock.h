//===--- SpinLock.h - Tiny test-and-set spinlock ---------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-word test-and-test-and-set spinlock for critical sections that are
/// a handful of pointer writes long (the allocator's central free lists and
/// the slot-grant section of the GC heap). Deliberately not a fair or
/// blocking lock: the protected sections never allocate, never call out,
/// and never nest another lock inside, so spinning is cheaper than parking.
/// After a bounded spin the waiter yields its timeslice — when threads
/// outnumber cores the holder may be preempted mid-section, and a pure
/// busy-wait would burn the holder's only path back onto the CPU.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_SPINLOCK_H
#define CHAMELEON_SUPPORT_SPINLOCK_H

#include <atomic>
#include <thread>

namespace chameleon {

class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  /// Acquires without contention accounting.
  void lock() {
    uint64_t Unused = 0;
    lockCounted(Unused);
  }

  /// Acquires; bumps \p ContendedOut once when the first attempt failed
  /// (the "somebody held the central lock" signal the alloc.* contention
  /// metric sums).
  void lockCounted(uint64_t &ContendedOut) {
    if (tryLock())
      return;
    ++ContendedOut;
    uint32_t Spins = 0;
    for (;;) {
      // Test before test-and-set: spin on a read-only load so the waiting
      // core does not ping-pong the cache line.
      while (Flag.test(std::memory_order_relaxed))
        if (++Spins >= kSpinsBeforeYield) {
          Spins = 0;
          std::this_thread::yield();
        }
      if (tryLock())
        return;
    }
  }

  bool tryLock() { return !Flag.test_and_set(std::memory_order_acquire); }

  void unlock() { Flag.clear(std::memory_order_release); }

private:
  static constexpr uint32_t kSpinsBeforeYield = 64;

  std::atomic_flag Flag = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock.
class SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) : L(L) { L.lock(); }
  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;
  ~SpinLockGuard() { L.unlock(); }

private:
  SpinLock &L;
};

} // namespace chameleon

#endif // CHAMELEON_SUPPORT_SPINLOCK_H
