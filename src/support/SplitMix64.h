//===--- SplitMix64.h - Deterministic random numbers -----------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic PRNG (SplitMix64, Steele et al., OOPSLA'14 fast
/// splittable generators). Every workload simulacrum and every property test
/// in the repository draws randomness exclusively from this generator so that
/// runs are bit-for-bit reproducible across machines.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_SPLITMIX64_H
#define CHAMELEON_SUPPORT_SPLITMIX64_H

#include <cassert>
#include <cstdint>

namespace chameleon {

/// Deterministic 64-bit pseudo random number generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Modulo bias is irrelevant for workload generation purposes.
    return next() % Bound;
  }

  /// Returns a uniform value in the inclusive range [Lo, Hi].
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace chameleon

#endif // CHAMELEON_SUPPORT_SPLITMIX64_H
