//===--- Statistics.cpp - Streaming statistical accumulators -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cmath>

using namespace chameleon;

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

void RunningStat::merge(const RunningStat &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  double Delta = Other.Mean - Mean;
  uint64_t Combined = N + Other.N;
  double NA = static_cast<double>(N);
  double NB = static_cast<double>(Other.N);
  Mean += Delta * NB / static_cast<double>(Combined);
  M2 += Other.M2 + Delta * Delta * NA * NB / static_cast<double>(Combined);
  if (Other.Min < Min)
    Min = Other.Min;
  if (Other.Max > Max)
    Max = Other.Max;
  N = Combined;
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }
