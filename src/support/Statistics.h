//===--- Statistics.h - Streaming statistical accumulators -----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming statistics used throughout the semantic profiler. The paper's
/// Table 1 requires, per allocation context, the average and standard
/// deviation of operation counts and of maximal collection sizes; the
/// `RunningStat` accumulator provides those via Welford's online algorithm
/// without storing samples. `TotalMax` tracks the total-over-all-GC-cycles /
/// maximum-in-any-cycle pair used by every heap metric in Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_SUPPORT_STATISTICS_H
#define CHAMELEON_SUPPORT_STATISTICS_H

#include <cstdint>

namespace chameleon {

/// Online mean / variance / min / max accumulator (Welford).
class RunningStat {
public:
  /// Adds one sample.
  void add(double X);

  /// Merges another accumulator into this one (parallel Welford / Chan).
  void merge(const RunningStat &Other);

  /// Number of samples seen so far.
  uint64_t count() const { return N; }

  /// Mean of the samples; 0 when empty.
  double mean() const { return N == 0 ? 0.0 : Mean; }

  /// Population variance of the samples; 0 for fewer than two samples.
  double variance() const;

  /// Population standard deviation; 0 for fewer than two samples.
  double stddev() const;

  /// Smallest sample; 0 when empty.
  double min() const { return N == 0 ? 0.0 : Min; }

  /// Largest sample; 0 when empty.
  double max() const { return N == 0 ? 0.0 : Max; }

  /// Sum of all samples.
  double sum() const { return Mean * static_cast<double>(N); }

  /// Raw second central moment (sum of squared deviations). Together with
  /// count/mean/min/max this is the accumulator's complete state, which is
  /// what the fleet layer serializes: restoring via fromMoments and merging
  /// in a canonical order reproduces the exact bit pattern a local
  /// accumulator would have reached.
  double m2() const { return M2; }

  /// Rebuilds an accumulator from previously exported moments (the inverse
  /// of count/mean/m2/min/max). The doubles must round-trip bit-exactly —
  /// serialize them as IEEE-754 bit patterns, not decimal text.
  static RunningStat fromMoments(uint64_t N, double Mean, double M2,
                                 double Min, double Max) {
    RunningStat S;
    S.N = N;
    S.Mean = Mean;
    S.M2 = M2;
    S.Min = Min;
    S.Max = Max;
    return S;
  }

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Tracks the Total/Max pair of Table 1: a quantity observed once per GC
/// cycle, reported both summed over all cycles and as the cycle maximum.
class TotalMax {
public:
  /// Records the value observed in one GC cycle.
  void observe(uint64_t CycleValue) {
    Total += CycleValue;
    if (CycleValue > Maximum)
      Maximum = CycleValue;
    ++Cycles;
  }

  /// Sum over all observed cycles.
  uint64_t total() const { return Total; }

  /// Largest single-cycle value.
  uint64_t max() const { return Maximum; }

  /// Number of cycles observed.
  uint64_t cycles() const { return Cycles; }

  /// Merges another accumulator (cycle streams concatenate: totals and
  /// cycle counts add, maxima take the larger). Integer state, so the merge
  /// is exact and commutative.
  void merge(const TotalMax &Other) {
    Total += Other.Total;
    if (Other.Maximum > Maximum)
      Maximum = Other.Maximum;
    Cycles += Other.Cycles;
  }

  /// Rebuilds an accumulator from exported state (fleet snapshot restore).
  static TotalMax fromParts(uint64_t Total, uint64_t Maximum,
                            uint64_t Cycles) {
    TotalMax T;
    T.Total = Total;
    T.Maximum = Maximum;
    T.Cycles = Cycles;
    return T;
  }

private:
  uint64_t Total = 0;
  uint64_t Maximum = 0;
  uint64_t Cycles = 0;
};

} // namespace chameleon

#endif // CHAMELEON_SUPPORT_STATISTICS_H
