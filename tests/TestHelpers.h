//===--- TestHelpers.h - Shared test fixtures ------------------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: a simple traceable heap object for
/// runtime-level tests and small factories for profiler/collection tests.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_TESTS_TESTHELPERS_H
#define CHAMELEON_TESTS_TESTHELPERS_H

#include "runtime/GcHeap.h"

#include <memory>
#include <vector>

namespace chameleon::testing {

/// A plain object with a fixed number of outgoing reference slots.
class Node : public HeapObject {
public:
  Node(TypeId Type, uint64_t Bytes, unsigned Slots)
      : HeapObject(Type, Bytes), Refs(Slots) {}

  void setRef(unsigned I, ObjectRef R) { Refs.at(I) = R; }
  ObjectRef getRef(unsigned I) const { return Refs.at(I); }

  void trace(GcTracer &Tracer) const override {
    for (ObjectRef R : Refs)
      Tracer.visit(R);
  }

private:
  std::vector<ObjectRef> Refs;
};

/// Registers a plain node type on \p Heap and returns its id.
inline TypeId registerNodeType(GcHeap &Heap, const char *Name = "Node") {
  SemanticMap Map;
  Map.Name = Name;
  Map.Kind = TypeKind::Plain;
  return Heap.types().registerType(std::move(Map));
}

/// Allocates a Node with \p Slots reference slots and \p Bytes model size.
inline ObjectRef allocNode(GcHeap &Heap, TypeId Type, unsigned Slots,
                           uint64_t Bytes = 16) {
  return Heap.allocate(std::make_unique<Node>(Type, Bytes, Slots));
}

} // namespace chameleon::testing

#endif // CHAMELEON_TESTS_TESTHELPERS_H
