//===--- CheckerTest.cpp - chameleon-checker tests ------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static-analysis library behind tools/chameleon-checker:
/// golden-file comparisons over the tools/testdata check fixtures (one
/// seeded violation per diagnostic ID plus a clean fixture), the tier-1
/// guarantee that the real tree analyzes clean modulo the committed
/// baseline, and unit coverage for the baseline format, suppression
/// comments, the JSON rendering, and the lexer's preprocessor skipping.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Extractor.h"
#include "analysis/Lexer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace chameleon;
using namespace chameleon::analysis;

namespace {

std::string readTestdata(const std::string &Name) {
  std::string Path = std::string(CHAMELEON_TOOLS_TESTDATA) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Analyzes tools/testdata/<stem>.cpp in isolation and compares the
/// rendered diagnostics against tools/testdata/<stem>.expected.
void checkGolden(const std::string &Stem) {
  std::string Source = readTestdata(Stem + ".cpp");
  std::string Expected = readTestdata(Stem + ".expected");
  TreeModel M;
  M.Files.push_back(extractFile(Stem + ".cpp", Source));
  std::vector<CheckDiag> Diags = analyzeModel(M);
  sortCheckDiags(Diags);
  EXPECT_EQ(formatCheckDiags(Diags), Expected) << "fixture " << Stem;
}

//===----------------------------------------------------------------------===//
// Golden-file fixtures: one seeded violation per diagnostic ID
//===----------------------------------------------------------------------===//

TEST(CheckerGolden, SafepointReach) { checkGolden("check_safepoint_reach"); }
TEST(CheckerGolden, RawAcrossSafepoint) {
  checkGolden("check_raw_across_safepoint");
}
TEST(CheckerGolden, LockRank) { checkGolden("check_lock_rank"); }
TEST(CheckerGolden, AllocUnderSpinlock) {
  checkGolden("check_alloc_under_spinlock");
}
TEST(CheckerGolden, MetricName) { checkGolden("check_metric_name"); }
TEST(CheckerGolden, MetricDup) { checkGolden("check_metric_dup"); }
TEST(CheckerGolden, FaultTagDup) { checkGolden("check_fault_tag_dup"); }

/// The clean fixture exercises every checked construct correctly (including
/// a suppression comment) and must produce zero diagnostics.
TEST(CheckerGolden, CleanFixtureHasNoFindings) { checkGolden("check_clean"); }

//===----------------------------------------------------------------------===//
// Tier-1: the real tree analyzes clean modulo the committed baseline
//===----------------------------------------------------------------------===//

TEST(Checker, TreeIsCleanModuloBaseline) {
  const std::string Root = CHAMELEON_SOURCE_ROOT;
  AnalyzerOptions Opts;
  Opts.Inputs = {Root + "/src", Root + "/tools", Root + "/bench"};
  Opts.RelativeTo = Root;

  std::ifstream In(Root + "/tools/checker_baseline.txt");
  ASSERT_TRUE(In.good()) << "cannot open tools/checker_baseline.txt";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Opts.Base = parseBaseline(Buf.str());

  AnalysisResult R = analyze(Opts);
  EXPECT_GT(R.FilesAnalyzed, 100u) << "directory walk found too few files";
  EXPECT_EQ(formatCheckDiags(R.Diags), "")
      << "new checker findings: fix them, waive with a cham-checker-ok "
         "comment, or (for accepted debt) add the key to "
         "tools/checker_baseline.txt";
  EXPECT_TRUE(R.StaleBaselineKeys.empty())
      << "stale baseline entries (the debt was paid; delete the lines): "
      << R.StaleBaselineKeys.front();
  // The baseline is real debt, not dead weight: every key matches.
  EXPECT_EQ(R.Baselined.size(), Opts.Base.Keys.size());
}

//===----------------------------------------------------------------------===//
// Baseline format
//===----------------------------------------------------------------------===//

TEST(CheckerBaseline, ParseSkipsCommentsAndBlanks) {
  Baseline B = parseBaseline("# header\n\n"
                             "check-a|f.cpp|S\n"
                             "  check-b|g.cpp|T  \n"
                             "# trailing\n");
  EXPECT_EQ(B.Keys.size(), 2u);
  EXPECT_TRUE(B.Keys.count("check-a|f.cpp|S"));
  EXPECT_TRUE(B.Keys.count("check-b|g.cpp|T"));
}

TEST(CheckerBaseline, RoundTripsThroughRender) {
  CheckDiag D1{"b.cpp", 9, 1, CheckSeverity::Warning, "check-x", "m", "S"};
  CheckDiag D2{"a.cpp", 3, 1, CheckSeverity::Warning, "check-y", "m", "T"};
  CheckDiag Dup = D1;
  Dup.Line = 42; // same key, different position — must deduplicate
  std::string Text = renderBaseline({D1, D2, Dup});
  Baseline B = parseBaseline(Text);
  EXPECT_EQ(B.Keys.size(), 2u);
  EXPECT_TRUE(B.contains(D1));
  EXPECT_TRUE(B.contains(D2));
}

TEST(CheckerBaseline, StaleKeysAreReported) {
  Baseline B = parseBaseline("check-x|a.cpp|S\ncheck-gone|z.cpp|T\n");
  CheckDiag D{"a.cpp", 1, 1, CheckSeverity::Warning, "check-x", "m", "S"};
  std::vector<std::string> Stale = staleBaselineKeys(B, {D});
  ASSERT_EQ(Stale.size(), 1u);
  EXPECT_EQ(Stale.front(), "check-gone|z.cpp|T");
}

//===----------------------------------------------------------------------===//
// Suppression comments
//===----------------------------------------------------------------------===//

// The dup check flags the second and later sites of a reused tag, so the
// suppression marker goes above the *second* site.
TEST(CheckerSuppress, MarkerCoversItsOwnAndTheNextLine) {
  const std::string Source =
      "void growA() {\n"
      "  CHAM_FAULT(\"dup.tag\");\n"
      "}\n"
      "void growB() {\n"
      "  // cham-checker-ok(check-fault-tag-dup): intentional\n"
      "  CHAM_FAULT(\"dup.tag\");\n"
      "}\n";
  TreeModel M;
  M.Files.push_back(extractFile("sup.cpp", Source));
  std::vector<CheckDiag> Diags = analyzeModel(M);
  EXPECT_EQ(Diags.size(), 0u);
}

TEST(CheckerSuppress, WrongIdDoesNotSilence) {
  const std::string Source =
      "void growA() {\n"
      "  CHAM_FAULT(\"dup.tag\");\n"
      "}\n"
      "void growB() {\n"
      "  // cham-checker-ok(check-metric-name): wrong id\n"
      "  CHAM_FAULT(\"dup.tag\");\n"
      "}\n";
  TreeModel M;
  M.Files.push_back(extractFile("sup.cpp", Source));
  std::vector<CheckDiag> Diags = analyzeModel(M);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].ID, "check-fault-tag-dup");
  EXPECT_EQ(Diags[0].Line, 6u);
}

//===----------------------------------------------------------------------===//
// JSON rendering
//===----------------------------------------------------------------------===//

TEST(CheckerJson, EscapesAndStructures) {
  CheckDiag D{"a\"b.cpp", 7,       3, CheckSeverity::Error,
              "check-x",  "msg\n", "S"};
  std::string J = checkDiagsToJson({D});
  EXPECT_NE(J.find("\"file\": \"a\\\"b.cpp\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"line\": 7"), std::string::npos) << J;
  EXPECT_NE(J.find("\"severity\": \"error\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"message\": \"msg\\n\""), std::string::npos) << J;
}

TEST(CheckerJson, EmptyListIsAnEmptyArray) {
  EXPECT_EQ(checkDiagsToJson({}), "[]\n");
}

//===----------------------------------------------------------------------===//
// Lexer: facts inside preprocessor lines and comments never register
//===----------------------------------------------------------------------===//

TEST(CheckerLexer, MacroDefinitionsAndCommentsAreSkipped) {
  const std::string Source =
      "#define GROW(T) CHAM_FAULT(T)\n"
      "// CHAM_FAULT(\"comment.tag\")\n"
      "void grow() {\n"
      "  CHAM_FAULT(\"real.tag\");\n"
      "}\n";
  FileModel F = extractFile("pp.cpp", Source);
  ASSERT_EQ(F.FaultSites.size(), 1u);
  EXPECT_EQ(F.FaultSites[0].Tag, "real.tag");
  EXPECT_EQ(F.FaultSites[0].Line, 4u);
}

TEST(CheckerLexer, SuppressionsSurviveLexing) {
  LexedFile L = lexCxx("int x; // cham-checker-ok(check-lock-rank): why\n");
  ASSERT_EQ(L.Suppressions.size(), 1u);
  EXPECT_EQ(L.Suppressions[0].ID, "check-lock-rank");
  EXPECT_EQ(L.Suppressions[0].Line, 1u);
}

} // namespace
