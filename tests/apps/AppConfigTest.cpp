//===--- AppConfigTest.cpp - Scaled workload configuration tests ----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulacra are size-parameterised; these tests run each at a small
/// scale through its typed config (not the registry defaults), checking
/// determinism and that the pathology each encodes still registers in the
/// profile at small sizes.
///
//===----------------------------------------------------------------------===//

#include "apps/BloatSim.h"
#include "apps/FindbugsSim.h"
#include "apps/FopSim.h"
#include "apps/NeutralSim.h"
#include "apps/PmdSim.h"
#include "apps/SootSim.h"
#include "apps/TvlaSim.h"
#include "core/Chameleon.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

RuntimeConfig smallConfig() {
  RuntimeConfig Config;
  Config.GcSampleEveryBytes = 64 * 1024;
  return Config;
}

TEST(AppConfig, TvlaScalesDown) {
  TvlaConfig Config;
  Config.NumStates = 200;
  Config.LiveWindow = 150;
  CollectionRuntime RT(smallConfig());
  runTvla(RT, Config);
  RT.harvestLiveStatistics();
  // 7 factory contexts + worklist + constraints + vocabulary.
  EXPECT_GE(RT.profiler().contexts().size(), 9u);
  EXPECT_FALSE(RT.heap().outOfMemory());
  std::string Error;
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

TEST(AppConfig, TvlaIsDeterministicAcrossRuns) {
  auto Run = [] {
    TvlaConfig Config;
    Config.NumStates = 150;
    CollectionRuntime RT(smallConfig());
    runTvla(RT, Config);
    return RT.heap().totalAllocatedBytes();
  };
  EXPECT_EQ(Run(), Run());
}

TEST(AppConfig, BloatSpikePhaseScales) {
  BloatConfig Config;
  Config.Phases = 4;
  Config.NodesPerPhase = 150;
  Config.SpikePhase = 2;
  Config.SpikeMultiplier = 4;
  CollectionRuntime RT(smallConfig());
  runBloat(RT, Config);
  // The never-used Defs/ExcHandlers contexts must exist with zero ops.
  bool SawNeverUsed = false;
  for (const ContextInfo *Info : RT.profiler().contexts())
    if (Info->typeName() == "LinkedList" && Info->allocations() > 100)
      SawNeverUsed = true;
  EXPECT_TRUE(SawNeverUsed);
}

TEST(AppConfig, SootSingletonFractionIsRespected) {
  SootConfig Config;
  Config.Methods = 40;
  Config.BranchFraction = 1.0; // every statement is a branch
  CollectionRuntime RT(smallConfig());
  runSoot(RT, Config);
  RT.harvestLiveStatistics();
  const ContextInfo *CondBox = nullptr;
  for (const ContextInfo *Info : RT.profiler().contexts())
    if (RT.profiler().contextLabel(*Info).find("JIfStmt")
        != std::string::npos)
      CondBox = Info;
  ASSERT_NE(CondBox, nullptr);
  EXPECT_EQ(CondBox->allocations(),
            static_cast<uint64_t>(Config.Methods)
                * Config.StmtsPerMethod);
  EXPECT_DOUBLE_EQ(CondBox->maxSizeStat().mean(), 1.0);
  EXPECT_DOUBLE_EQ(CondBox->maxSizeStat().stddev(), 0.0);
}

TEST(AppConfig, FindbugsAnnotationEmptinessTracksConfig) {
  FindbugsConfig Config;
  Config.Classes = 120;
  Config.NoAnnotationsFraction = 1.0; // all annotation maps stay empty
  CollectionRuntime RT(smallConfig());
  runFindbugs(RT, Config);
  RT.harvestLiveStatistics();
  for (const ContextInfo *Info : RT.profiler().contexts()) {
    if (RT.profiler().contextLabel(*Info).find("getAnnotations")
        == std::string::npos)
      continue;
    EXPECT_DOUBLE_EQ(Info->maxSizeStat().mean(), 0.0);
    EXPECT_DOUBLE_EQ(Info->maxSizeStat().max(), 0.0);
  }
}

TEST(AppConfig, PmdChildListCapacityIsTheMistakenOne) {
  PmdConfig Config;
  Config.Files = 6;
  Config.NodesPerFile = 40;
  Config.SymbolsPerSet = 400;
  Config.MistakenCapacity = 17;
  CollectionRuntime RT(smallConfig());
  runPmd(RT, Config);
  RT.harvestLiveStatistics();
  const ContextInfo *Children = nullptr;
  for (const ContextInfo *Info : RT.profiler().contexts())
    if (RT.profiler().contextLabel(*Info).find("SimpleNode")
        != std::string::npos)
      Children = Info;
  ASSERT_NE(Children, nullptr);
  EXPECT_DOUBLE_EQ(Children->initialCapacityStat().mean(), 17.0);
}

TEST(AppConfig, NeutralAppScreensOutAndStaysSuggestionFree) {
  // §5.1: applications without collection waste produce no suggestions
  // and fail the potential screen.
  NeutralConfig Config;
  Config.GrammarRules = 150;
  Chameleon Tool;
  RunResult R = Tool.profile(
      [&](CollectionRuntime &RT) { runNeutral(RT, Config); }, 4 << 20);
  EXPECT_TRUE(R.Completed);
  for (const rules::Suggestion &S : R.Suggestions)
    EXPECT_EQ(S.Action, rules::ActionKind::Warn)
        << "unexpected actionable suggestion from " << S.RuleName;
  ScreeningResult Screen = screenPotential(R, 0.04);
  EXPECT_FALSE(Screen.WorthOptimizing);
}

TEST(AppConfig, FopGlyphBytesShapeTheCollectionShare) {
  auto CollectionShare = [](uint32_t GlyphBytes) {
    FopConfig Config;
    Config.Pages = 6;
    Config.GlyphBytesPerArea = GlyphBytes;
    CollectionRuntime RT(smallConfig());
    runFop(RT, Config);
    // The area tree lives only inside runFop, so sample the share from
    // the cycles recorded while it ran.
    double Max = 0;
    for (const GcCycleRecord &Rec : RT.heap().cycles())
      Max = std::max(Max, Rec.collectionLiveFraction());
    return Max;
  };
  // More non-collection payload -> smaller collection share.
  EXPECT_GT(CollectionShare(100), CollectionShare(4000));
}

} // namespace
