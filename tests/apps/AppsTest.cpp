//===--- AppsTest.cpp - Benchmark simulacra integration tests -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-benchmark integration tests: each simulacrum is deterministic,
/// produces the suggestions its paper counterpart motivates (§5.3), and
/// exhibits the paper's per-benchmark result shape — including PMD's
/// deliberate negative result for the minimal-heap metric.
///
//===----------------------------------------------------------------------===//

#include "apps/AppSpec.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

/// True when any suggestion was produced by \p RuleName for a context
/// whose label contains \p LabelPart.
bool suggested(const RunResult &R, const std::string &RuleName,
               const std::string &LabelPart) {
  for (const rules::Suggestion &S : R.Suggestions)
    if (S.RuleName == RuleName
        && S.ContextLabel.find(LabelPart) != std::string::npos)
      return true;
  return false;
}

TEST(Apps, RegistryHasTheSixPaperBenchmarks) {
  ASSERT_EQ(allApps().size(), 6u);
  for (const char *Name :
       {"bloat", "fop", "findbugs", "pmd", "soot", "tvla"})
    EXPECT_EQ(getApp(Name).Name, Name);
}

TEST(Apps, RunsAreDeterministic) {
  const AppSpec &App = getApp("tvla");
  Chameleon Tool;
  RunResult A = Tool.profile(App.Run, App.ProfileHeapLimit);
  RunResult B = Tool.profile(App.Run, App.ProfileHeapLimit);
  EXPECT_EQ(A.TotalAllocatedBytes, B.TotalAllocatedBytes);
  EXPECT_EQ(A.TotalAllocatedObjects, B.TotalAllocatedObjects);
  EXPECT_EQ(A.GcCycles, B.GcCycles);
  EXPECT_EQ(A.Report, B.Report);
}

TEST(Apps, AllBenchmarksCompleteUnderTheirProfileLimit) {
  for (const AppSpec &App : allApps()) {
    Chameleon Tool;
    RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
    EXPECT_TRUE(R.Completed) << App.Name;
    EXPECT_GT(R.GcCycles, 0u) << App.Name;
    EXPECT_FALSE(R.Suggestions.empty()) << App.Name;
  }
}

TEST(Apps, TvlaGetsTheFactoryArrayMapSuggestions) {
  const AppSpec &App = getApp("tvla");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  // §2.1: HashMaps from the factory contexts become ArrayMaps; the
  // context label carries the factory frame and the caller frame.
  EXPECT_TRUE(suggested(R, "small-hashmap", "HashMapFactory"));
  EXPECT_TRUE(suggested(R, "linkedlist-random-access", "worklist"));
  EXPECT_TRUE(suggested(R, "incremental-resizing", "Constraints"));
  // Several distinct factory contexts must be separated by the partial
  // calling context (the paper reports seven).
  unsigned FactoryContexts = 0;
  for (const rules::Suggestion &S : R.Suggestions)
    if (S.RuleName == "small-hashmap"
        && S.ContextLabel.find("HashMapFactory") != std::string::npos)
      ++FactoryContexts;
  EXPECT_EQ(FactoryContexts, 7u);
}

TEST(Apps, BloatGetsNeverUsedAndLazySuggestions) {
  const AppSpec &App = getApp("bloat");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  EXPECT_TRUE(suggested(R, "never-used-lists", "bloat.tree.Node"));
  EXPECT_TRUE(suggested(R, "never-used", "bloat.tree.Node"));
}

TEST(Apps, BloatShowsTheFig8Spike) {
  const AppSpec &App = getApp("bloat");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  ASSERT_GT(R.Cycles.size(), 4u);
  // The spike phase must push the collection share of live data well
  // above the quiet phases (Fig. 8's single dominant spike).
  double MinFrac = 1.0, MaxFrac = 0.0;
  for (const GcCycleRecord &Rec : R.Cycles) {
    if (Rec.LiveBytes == 0)
      continue;
    MinFrac = std::min(MinFrac, Rec.collectionLiveFraction());
    MaxFrac = std::max(MaxFrac, Rec.collectionLiveFraction());
  }
  EXPECT_GT(MaxFrac, MinFrac + 0.15);
}

TEST(Apps, SootGetsSingletonAndCapacitySuggestions) {
  const AppSpec &App = getApp("soot");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  EXPECT_TRUE(suggested(R, "singleton-lists", "JIfStmt"));
  EXPECT_TRUE(suggested(R, "oversized-capacity", "soot.Body"));
}

TEST(Apps, FindbugsGetsArrayMapAndLazySuggestions) {
  const AppSpec &App = getApp("findbugs");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  EXPECT_TRUE(suggested(R, "small-hashmap", "getFieldInfo"));
  EXPECT_TRUE(suggested(R, "mostly-empty-maps", "getAnnotations"));
  EXPECT_TRUE(suggested(R, "small-hashset", "CallGraph"));
}

TEST(Apps, FopGetsNeverUsedLayoutLists) {
  const AppSpec &App = getApp("fop");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  EXPECT_TRUE(suggested(R, "small-hashmap", "getTraits"));
  EXPECT_TRUE(
      suggested(R, "never-used-lists", "InlineStackingLayoutManager"));
}

TEST(Apps, PmdSuggestionsTargetOnlyShortLivedContexts) {
  const AppSpec &App = getApp("pmd");
  Chameleon Tool;
  RunResult R = Tool.profile(App.Run, App.ProfileHeapLimit);
  ASSERT_FALSE(R.Suggestions.empty());
  for (const rules::Suggestion &S : R.Suggestions)
    EXPECT_NE(S.ContextLabel.find("SimpleNode"), std::string::npos)
        << "the long-lived symbol structures must not be flagged, got "
        << S.ContextLabel;
}

TEST(Apps, PmdPlanCutsAllocationVolumeNotMinHeap) {
  // The paper's negative result: no minimal-heap win, but a significant
  // allocation-volume (hence GC count) reduction.
  const AppSpec &App = getApp("pmd");
  Chameleon Tool;
  RunResult Profiled = Tool.profile(App.Run, App.ProfileHeapLimit);
  RunResult Before = Tool.run(App.Run, nullptr, App.ProfileHeapLimit);
  RunResult After =
      Tool.run(App.Run, &Profiled.Plan, App.ProfileHeapLimit);
  EXPECT_LT(After.TotalAllocatedBytes,
            (Before.TotalAllocatedBytes * 3) / 4);
  EXPECT_LT(After.GcCycles, Before.GcCycles);
}

TEST(Apps, TvlaPlanHalvesTheMinimalHeap) {
  const AppSpec &App = getApp("tvla");
  Chameleon Tool;
  RunResult Profiled = Tool.profile(App.Run, App.ProfileHeapLimit);
  uint64_t Before = Tool.findMinimalHeap(App.Run, nullptr, App.MinHeapLo,
                                         App.MinHeapHi,
                                         App.MinHeapTolerance);
  uint64_t After = Tool.findMinimalHeap(App.Run, &Profiled.Plan,
                                        App.MinHeapLo, App.MinHeapHi,
                                        App.MinHeapTolerance);
  // Paper §5.3: minimal-heap reduction of 53.95%; accept 40-65%.
  double Ratio = static_cast<double>(After) / static_cast<double>(Before);
  EXPECT_LT(Ratio, 0.60);
  EXPECT_GT(Ratio, 0.35);
}

} // namespace
