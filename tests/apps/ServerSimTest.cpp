//===--- ServerSimTest.cpp - Thread-count invariance tests ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the concurrent-mutator pipeline (DESIGN.md
/// §9), proven end to end: the multi-threaded server workload produces a
/// byte-identical profiling report — GC cycle records and per-context
/// statistics — no matter how many mutator threads handled the requests.
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

ServerSimResult runWithThreads(uint32_t Threads) {
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimConfig Config;
  Config.MutatorThreads = Threads;
  return runServerSim(RT, Config);
}

TEST(ServerSim, MutatorThreadsInvariance) {
  ServerSimResult One = runWithThreads(1);
  ASSERT_FALSE(One.Report.empty());
  EXPECT_EQ(One.TotalRequests, 720u);
  // The report must mention both halves: cycles and contexts.
  EXPECT_NE(One.Report.find("gc cycles:"), std::string::npos);
  EXPECT_NE(One.Report.find("contexts:"), std::string::npos);

  ServerSimResult Two = runWithThreads(2);
  ServerSimResult Eight = runWithThreads(8);
  EXPECT_EQ(One.Report, Two.Report)
      << "2-thread report diverged from the single-threaded baseline";
  EXPECT_EQ(One.Report, Eight.Report)
      << "8-thread report diverged from the single-threaded baseline";
}

std::string slurp(const std::string &Path) {
  std::string Out;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

/// Sum of every live instance of one metric.
uint64_t metricValue(const std::string &Name) {
  uint64_t V = 0;
  for (const obs::MetricSnapshot &S :
       obs::MetricsRegistry::instance().snapshot(Name))
    V += S.Value;
  return V;
}

/// Telemetry is strictly read-only: exporting a bundle must not perturb
/// the simulation, so the report stays byte-identical to a plain run —
/// and the trace ring must be sized so a tier-1 workload never overflows
/// it (cham.obs.trace_dropped stays zero; a dropped event would make the
/// exported timeline depend on scheduling).
TEST(ServerSim, TelemetryDoesNotChangeTheReport) {
  ServerSimResult Plain = runWithThreads(4);
  ASSERT_FALSE(Plain.Report.empty());

  const uint64_t Dropped0 = metricValue("cham.obs.trace_dropped");
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimConfig Config;
  Config.MutatorThreads = 4;
  Config.TelemetryOutDir = ::testing::TempDir() + "serversim-telemetry";
  ServerSimResult Traced = runServerSim(RT, Config);

  EXPECT_EQ(Plain.Report, Traced.Report)
      << "telemetry export perturbed the simulation";
  EXPECT_FALSE(obs::TraceRecorder::enabled())
      << "runServerSim must disarm the recorder before returning";
  EXPECT_EQ(metricValue("cham.obs.trace_dropped") - Dropped0, 0u)
      << "trace ring overflowed during a tier-1 workload";
}

/// The exported bundle is complete and well-formed: valid JSON with GC
/// phase spans and request spans on the timeline (chaos mode adds the
/// migration/degradation events — covered by the chameleon-stats smoke
/// tests over a chaos bundle).
TEST(ServerSim, TelemetryBundleHasExpectedTimeline) {
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimConfig Config;
  Config.TelemetryOutDir = ::testing::TempDir() + "serversim-bundle";
  runServerSim(RT, Config);

  std::string Trace = slurp(Config.TelemetryOutDir + "/trace.json");
  ASSERT_FALSE(Trace.empty()) << "trace.json was not written";
  obs::json::Value Doc;
  std::string Error;
  ASSERT_TRUE(obs::json::parse(Trace, Doc, &Error)) << Error;
  const obs::json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);

#if !defined(CHAMELEON_NO_TELEMETRY)
  bool SawGcCycle = false, SawMark = false, SawSweep = false;
  bool SawRequest = false, SawBarrier = false;
  for (const obs::json::Value &Ev : Events->array()) {
    const std::string Cat = Ev.strOr("cat", "");
    const std::string Name = Ev.strOr("name", "");
    SawGcCycle |= Cat == "gc" && Name == "cycle";
    SawMark |= Cat == "gc" && Name == "mark";
    SawSweep |= Cat == "gc" && Name == "sweep";
    SawRequest |= Cat == "server" && Name == "request";
    SawBarrier |= Cat == "server" && Name == "epoch_barrier";
  }
  EXPECT_TRUE(SawGcCycle);
  EXPECT_TRUE(SawMark);
  EXPECT_TRUE(SawSweep);
  EXPECT_TRUE(SawRequest);
  EXPECT_TRUE(SawBarrier);
#endif

  std::string Metrics = slurp(Config.TelemetryOutDir + "/metrics.json");
  ASSERT_TRUE(obs::json::parse(Metrics, Doc, &Error)) << Error;
  bool SawGcCycles = false;
  for (const obs::json::Value &M : Doc.find("metrics")->array())
    SawGcCycles |= M.strOr("name", "") == "cham.gc.cycles" &&
                   M.numberOr("value", 0) > 0;
  EXPECT_TRUE(SawGcCycles) << "cham.gc.cycles missing or zero";

  std::string Prom = slurp(Config.TelemetryOutDir + "/metrics.prom");
  EXPECT_NE(Prom.find("# TYPE cham_gc_pause_nanos histogram"),
            std::string::npos);
}

TEST(ServerSim, ReportReflectsWorkload) {
  ServerSimResult R = runWithThreads(4);
  // The request-scoped scratch/result contexts and the session state
  // contexts must all appear, with the boot allocations accounted.
  EXPECT_NE(R.Report.find("server.Session.attrs:31"), std::string::npos);
  EXPECT_NE(R.Report.find("server.Session.history:32"), std::string::npos);
  EXPECT_NE(R.Report.find("server.LoginHandler.scratch:58"),
            std::string::npos);
  EXPECT_NE(R.Report.find("server.QueryHandler.results:91"),
            std::string::npos);
  // One forced statistics cycle per epoch.
  EXPECT_NE(R.Report.find("cycle 3 forced=1"), std::string::npos);
}

} // namespace
