//===--- ServerSimTest.cpp - Thread-count invariance tests ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the concurrent-mutator pipeline (DESIGN.md
/// §9), proven end to end: the multi-threaded server workload produces a
/// byte-identical profiling report — GC cycle records and per-context
/// statistics — no matter how many mutator threads handled the requests.
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

ServerSimResult runWithThreads(uint32_t Threads) {
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimConfig Config;
  Config.MutatorThreads = Threads;
  return runServerSim(RT, Config);
}

TEST(ServerSim, MutatorThreadsInvariance) {
  ServerSimResult One = runWithThreads(1);
  ASSERT_FALSE(One.Report.empty());
  EXPECT_EQ(One.TotalRequests, 720u);
  // The report must mention both halves: cycles and contexts.
  EXPECT_NE(One.Report.find("gc cycles:"), std::string::npos);
  EXPECT_NE(One.Report.find("contexts:"), std::string::npos);

  ServerSimResult Two = runWithThreads(2);
  ServerSimResult Eight = runWithThreads(8);
  EXPECT_EQ(One.Report, Two.Report)
      << "2-thread report diverged from the single-threaded baseline";
  EXPECT_EQ(One.Report, Eight.Report)
      << "8-thread report diverged from the single-threaded baseline";
}

TEST(ServerSim, ReportReflectsWorkload) {
  ServerSimResult R = runWithThreads(4);
  // The request-scoped scratch/result contexts and the session state
  // contexts must all appear, with the boot allocations accounted.
  EXPECT_NE(R.Report.find("server.Session.attrs:31"), std::string::npos);
  EXPECT_NE(R.Report.find("server.Session.history:32"), std::string::npos);
  EXPECT_NE(R.Report.find("server.LoginHandler.scratch:58"),
            std::string::npos);
  EXPECT_NE(R.Report.find("server.QueryHandler.results:91"),
            std::string::npos);
  // One forced statistics cycle per epoch.
  EXPECT_NE(R.Report.find("cycle 3 forced=1"), std::string::npos);
}

} // namespace
