//===--- TraceFormatTest.cpp - Trace serialization tests ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace wire format's contracts (DESIGN.md §14): canonical encoding
/// (equal traces → equal bytes, write→read→write is the identity),
/// rejection of malformed input with a diagnostic (bad magic, version
/// skew, digest/checksum mismatch, truncation — never UB), and the
/// validator's replay-safety rules.
///
//===----------------------------------------------------------------------===//

#include "apps/TraceFormat.h"
#include "apps/TraceWorkload.h"
#include "apps/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

WorkloadGenConfig smallConfig() {
  WorkloadGenConfig Config;
  Config.Sessions = 4;
  Config.Epochs = 2;
  Config.RequestsPerEpoch = 24;
  Config.HistoryBound = 8;
  return Config;
}

TEST(TraceFormat, RoundTripIsByteIdentical) {
  Trace T = generatePhaseShiftTrace(smallConfig());
  ASSERT_TRUE(validateTrace(T));
  std::string Bytes = writeTrace(T);

  Trace Back;
  std::string Error;
  ASSERT_TRUE(readTrace(Bytes, Back, &Error)) << Error;
  EXPECT_EQ(Back.Header.Generator, "phase-shift");
  EXPECT_EQ(Back.taskCount(), T.taskCount());
  EXPECT_EQ(Back.opCount(), T.opCount());
  EXPECT_EQ(writeTrace(Back), Bytes);
}

TEST(TraceFormat, FileRoundTrip) {
  Trace T = generateBurstTrace(smallConfig());
  std::string Path = testing::TempDir() + "/chamtrace_roundtrip.trace";
  std::string Error;
  ASSERT_TRUE(writeTraceFile(Path, T, &Error)) << Error;
  Trace Back;
  ASSERT_TRUE(readTraceFile(Path, Back, &Error)) << Error;
  EXPECT_EQ(writeTrace(Back), writeTrace(T));
  std::remove(Path.c_str());
}

TEST(TraceFormat, RejectsBadMagic) {
  Trace T = generateZipfTrace(smallConfig());
  std::string Bytes = writeTrace(T);
  Bytes[0] = 'X';
  Trace Back;
  std::string Error;
  EXPECT_FALSE(readTrace(Bytes, Back, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(TraceFormat, RejectsWrongVersion) {
  Trace T = generateZipfTrace(smallConfig());
  std::string Bytes = writeTrace(T);
  size_t Pos = Bytes.find("CHAMTRACE 1");
  ASSERT_NE(Pos, std::string::npos);
  Bytes[Pos + sizeof("CHAMTRACE ") - 1] = '7';
  Trace Back;
  std::string Error;
  EXPECT_FALSE(readTrace(Bytes, Back, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(TraceFormat, RejectsHeaderTampering) {
  Trace T = generateZipfTrace(smallConfig());
  std::string Bytes = writeTrace(T);
  // Editing a semantic header field out-of-band breaks the digest line.
  size_t Pos = Bytes.find("sessions 4");
  ASSERT_NE(Pos, std::string::npos);
  Bytes[Pos + sizeof("sessions ") - 1] = '5';
  Trace Back;
  std::string Error;
  EXPECT_FALSE(readTrace(Bytes, Back, &Error));
  EXPECT_NE(Error.find("digest"), std::string::npos) << Error;
}

TEST(TraceFormat, RejectsPayloadCorruptionAndTruncation) {
  Trace T = generatePhaseShiftTrace(smallConfig());
  std::string Bytes = writeTrace(T);

  // Flip one payload byte: either the decoder trips on the damaged
  // structure or the end checksum catches it — always a diagnostic.
  std::string Flipped = Bytes;
  Flipped[Bytes.size() - 64] ^= 0x40;
  Trace Back;
  std::string Error;
  EXPECT_FALSE(readTrace(Flipped, Back, &Error));
  EXPECT_FALSE(Error.empty());

  // Every truncation point is rejected cleanly (stride keeps it fast).
  for (size_t Len = 0; Len < Bytes.size(); Len += 97) {
    Error.clear();
    EXPECT_FALSE(readTrace(Bytes.substr(0, Len), Back, &Error));
    EXPECT_FALSE(Error.empty()) << "truncation at " << Len;
  }
  EXPECT_FALSE(readTrace(Bytes.substr(0, Bytes.size() - 1), Back, &Error));
}

TEST(TraceFormat, RecordReplayRecordIsByteIdentical) {
  Trace T = generatePhaseShiftTrace(smallConfig());
  std::string Bytes = writeTrace(T);

  TraceCapture Capture;
  ReplayConfig Config;
  Config.MutatorThreads = 2;
  Config.RecordTo = &Capture;
  CollectionRuntime RT(traceReplayRuntimeConfig(Config));
  ReplayResult R = replayTrace(RT, T, Config);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(writeTrace(Capture.finish()), Bytes);
}

TEST(TraceFormat, ValidatorCatchesReplayUnsafeTraces) {
  std::string Error;

  // Use of a retired temp.
  {
    Trace T = generateBurstTrace(smallConfig());
    TaskTrace Bad;
    Bad.alloc(traceTempReg(0), AdtKind::List, ImplKind::ArrayList, 4, 0);
    Bad.op0(TraceOpCode::Retire, traceTempReg(0));
    Bad.op1(TraceOpCode::ListAdd, traceTempReg(0), 1);
    Bad.Task.Id = 1u << 20;
    Bad.Task.Session = 0;
    Bad.Task.FrameIdx = 0;
    T.Epochs.back().push_back(Bad.Task);
    EXPECT_FALSE(validateTrace(T, &Error));
  }
  // Global allocation outside boot.
  {
    Trace T = generateBurstTrace(smallConfig());
    TaskTrace Bad;
    Bad.alloc(traceGlobalReg(0), AdtKind::Map, ImplKind::HashMap, 1, 4);
    Bad.Task.Id = 1u << 20;
    Bad.Task.Session = 0;
    Bad.Task.FrameIdx = 0;
    T.Epochs.back().push_back(Bad.Task);
    EXPECT_FALSE(validateTrace(T, &Error));
  }
  // Temp leaked past task end.
  {
    Trace T = generateBurstTrace(smallConfig());
    TaskTrace Bad;
    Bad.alloc(traceTempReg(0), AdtKind::Set, ImplKind::HashSet, 3, 0);
    Bad.Task.Id = 1u << 20;
    Bad.Task.Session = 0;
    Bad.Task.FrameIdx = 0;
    T.Epochs.back().push_back(Bad.Task);
    EXPECT_FALSE(validateTrace(T, &Error));
  }
  // Op shape vs register ADT mismatch.
  {
    Trace T = generateBurstTrace(smallConfig());
    TaskTrace Bad;
    Bad.op1(TraceOpCode::ListAdd, traceGlobalReg(0), 1); // global 0 is a Map
    Bad.Task.Id = 1u << 20;
    Bad.Task.Session = 0;
    Bad.Task.FrameIdx = 0;
    T.Epochs.back().push_back(Bad.Task);
    EXPECT_FALSE(validateTrace(T, &Error));
  }
  // A session touching another session's global.
  {
    Trace T = generateBurstTrace(smallConfig());
    TaskTrace Bad;
    Bad.op2(TraceOpCode::MapPut, traceGlobalReg(0), 1, 2); // session 0's map
    Bad.Task.Id = 1u << 20;
    Bad.Task.Session = 1;
    Bad.Task.FrameIdx = 0;
    T.Epochs.back().push_back(Bad.Task);
    EXPECT_FALSE(validateTrace(T, &Error));
  }
}

} // namespace
