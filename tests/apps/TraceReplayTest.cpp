//===--- TraceReplayTest.cpp - Record/replay differential tests -----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record/replay determinism contract (DESIGN.md §14), proven end to
/// end: a recorded ServerSim run replays to a byte-identical profiling
/// report at MutatorThreads 1, 2, and 8 — including through a file
/// round-trip — and recording itself does not perturb the recorded run.
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"
#include "apps/TraceFormat.h"
#include "apps/TraceWorkload.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

ServerSimConfig smallSimConfig() {
  ServerSimConfig Config;
  Config.Sessions = 8;
  Config.Epochs = 3;
  Config.RequestsPerEpoch = 96;
  Config.HistoryBound = 16;
  return Config;
}

/// Records one ServerSim run; returns the trace and the live report.
Trace recordServerSim(std::string &ReportOut) {
  TraceCapture Capture;
  ServerSimConfig Config = smallSimConfig();
  Config.RecordTo = &Capture;
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimResult Result = runServerSim(RT, Config);
  ReportOut = Result.Report;
  return Capture.finish();
}

std::string replayWithThreads(const Trace &T, uint32_t Threads) {
  ReplayConfig Config;
  Config.MutatorThreads = Threads;
  CollectionRuntime RT(traceReplayRuntimeConfig(Config));
  ReplayResult R = replayTrace(RT, T, Config);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Report;
}

TEST(TraceReplay, RecordingDoesNotChangeTheRun) {
  std::string Recorded;
  Trace T = recordServerSim(Recorded);
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimResult Plain = runServerSim(RT, smallSimConfig());
  EXPECT_EQ(Plain.Report, Recorded);
  EXPECT_EQ(T.taskCount(), 3u * 96u);
  ASSERT_TRUE(T.Boot.has_value());
  EXPECT_EQ(T.Boot->Ops.size(), 2u * 8u);
}

TEST(TraceReplay, ByteIdenticalReportAtAnyThreadCount) {
  std::string Recorded;
  Trace T = recordServerSim(Recorded);
  ASSERT_TRUE(validateTrace(T));
  for (uint32_t Threads : {1u, 2u, 8u}) {
    std::string Replayed = replayWithThreads(T, Threads);
    EXPECT_EQ(Replayed, Recorded) << "MutatorThreads=" << Threads;
  }
}

TEST(TraceReplay, SurvivesAFileRoundTrip) {
  std::string Recorded;
  Trace T = recordServerSim(Recorded);
  std::string Path = testing::TempDir() + "/chamtrace_serversim.trace";
  std::string Error;
  ASSERT_TRUE(writeTraceFile(Path, T, &Error)) << Error;
  Trace Back;
  ASSERT_TRUE(readTraceFile(Path, Back, &Error)) << Error;
  std::remove(Path.c_str());
  EXPECT_EQ(Back.Header.Generator, "serversim");
  EXPECT_EQ(replayWithThreads(Back, 2), Recorded);
}

TEST(TraceReplay, ReplayRejectsInvalidTraces) {
  std::string Recorded;
  Trace T = recordServerSim(Recorded);
  T.Epochs[0][0].FrameIdx = 1000; // out of range
  ReplayConfig Config;
  CollectionRuntime RT(traceReplayRuntimeConfig(Config));
  ReplayResult R = replayTrace(RT, T, Config);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(R.Report.empty());
}

} // namespace
