//===--- WorkloadGenTest.cpp - Adversarial workload zoo tests -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload zoo's adversarial guarantees: the phase-shift and Zipf
/// traces provably force the OnlineAdaptor into repeated live migrations
/// (≥2 each, with the expected target backings), the phase-change
/// accounting is deterministic under a fixed chaos seed (golden-run
/// equality plus the exact counter identities), and the burst trace's
/// heap returns to its baseline at every epoch barrier.
///
//===----------------------------------------------------------------------===//

#include "apps/TraceWorkload.h"
#include "apps/WorkloadGen.h"
#include "runtime/GcCycle.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

uint32_t backingCount(const ReplayResult &R, ImplKind Kind) {
  for (const auto &[Impl, Count] : R.GlobalBackings)
    if (Impl == Kind)
      return Count;
  return 0;
}

ReplayResult adaptiveReplay(const Trace &T, uint32_t Threads, bool Chaos,
                            uint64_t ChaosSeed = 0xC4A05) {
  ReplayConfig Config;
  Config.MutatorThreads = Threads;
  Config.OnlineAdapt = true;
  Config.Chaos = Chaos;
  Config.ChaosSeed = ChaosSeed;
  if (Chaos)
    Config.ChaosSoftHeapLimitBytes = 16 * 1024;
  CollectionRuntime RT(traceReplayRuntimeConfig(Config));
  return replayTrace(RT, T, Config);
}

TEST(WorkloadGen, ZooTracesAreValidAndReplayable) {
  WorkloadGenConfig Config;
  Config.Sessions = 4;
  Config.Epochs = 2;
  Config.RequestsPerEpoch = 32;
  for (const WorkloadGenerator &G : workloadZoo()) {
    Trace T = G.Generate(Config);
    std::string Error;
    EXPECT_TRUE(validateTrace(T, &Error)) << G.Name << ": " << Error;
    EXPECT_EQ(T.Header.Generator, G.Name);
    ReplayConfig RC;
    RC.MutatorThreads = 2;
    CollectionRuntime RT(traceReplayRuntimeConfig(RC));
    ReplayResult R = replayTrace(RT, T, RC);
    EXPECT_TRUE(R.Ok) << G.Name << ": " << R.Error;
    EXPECT_EQ(R.Tasks, T.taskCount()) << G.Name;
  }
  EXPECT_NE(findWorkloadGenerator("zipf"), nullptr);
  EXPECT_EQ(findWorkloadGenerator("no-such-generator"), nullptr);
}

TEST(WorkloadGen, PhaseShiftForcesRepeatedMigrations) {
  Trace T = generatePhaseShiftTrace(WorkloadGenConfig());
  ReplayResult R = adaptiveReplay(T, 2, /*Chaos=*/false);
  ASSERT_TRUE(R.Ok) << R.Error;
  // The phase change must drive at least two distinct online migrations:
  // session maps to ArrayMap in the map phase, session lists to ArrayList
  // after the flip.
  EXPECT_GE(R.MigrationsCommitted, 2u);
  EXPECT_GE(backingCount(R, ImplKind::ArrayMap), 1u);
  EXPECT_GE(backingCount(R, ImplKind::ArrayList), 1u);
  EXPECT_EQ(R.MigrationsRequested,
            R.MigrationsCommitted + R.MigrationsAborted);
  EXPECT_FALSE(R.AdaptReport.empty());
}

TEST(WorkloadGen, ZipfForcesRepeatedMigrations) {
  Trace T = generateZipfTrace(WorkloadGenConfig());
  ReplayResult R = adaptiveReplay(T, 2, /*Chaos=*/false);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.MigrationsCommitted, 2u);
  EXPECT_GE(backingCount(R, ImplKind::ArrayMap) +
                backingCount(R, ImplKind::ArrayList),
            2u);
}

TEST(WorkloadGen, PhaseChangeAccountingIsGoldenUnderFixedChaosSeed) {
  Trace T = generatePhaseShiftTrace(WorkloadGenConfig());
  // Single-threaded chaos replay is fully deterministic: the golden run
  // and the checked run must agree on every counter and report byte.
  ReplayResult Golden = adaptiveReplay(T, 1, /*Chaos=*/true, 0xC4A05);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;
  ReplayResult R = adaptiveReplay(T, 1, /*Chaos=*/true, 0xC4A05);
  ASSERT_TRUE(R.Ok) << R.Error;

  EXPECT_EQ(R.MigrationsRequested, Golden.MigrationsRequested);
  EXPECT_EQ(R.MigrationsCommitted, Golden.MigrationsCommitted);
  EXPECT_EQ(R.MigrationsAborted, Golden.MigrationsAborted);
  EXPECT_EQ(R.PinnedContexts, Golden.PinnedContexts);
  EXPECT_EQ(R.AdaptReport, Golden.AdaptReport);
  EXPECT_EQ(R.Report, Golden.Report);

  // The accounting identities hold exactly — no leaked attempts, every
  // request resolved as a commit or an abort.
  EXPECT_EQ(R.MigrationsRequested,
            R.MigrationsCommitted + R.MigrationsAborted);
  EXPECT_GE(R.MigrationsCommitted, 2u);
  // The chaos plan's migrate.* failure rate makes aborts overwhelmingly
  // likely across hundreds of requests; backoff/pinning is exercised.
  EXPECT_GT(R.MigrationsAborted, 0u);
}

TEST(WorkloadGen, BurstHeapReturnsToBaselineBetweenEpochs) {
  WorkloadGenConfig Config;
  Trace T = generateBurstTrace(Config);
  ReplayConfig RC;
  RC.MutatorThreads = 2;
  CollectionRuntime RT(traceReplayRuntimeConfig(RC));
  ReplayResult R = replayTrace(RT, T, RC);
  ASSERT_TRUE(R.Ok) << R.Error;

  // One forced cycle per epoch barrier; every request's net heap effect
  // is zero, so post-GC live bytes are identical at every barrier.
  const std::vector<GcCycleRecord> &Cycles = RT.heap().cycles();
  ASSERT_GE(Cycles.size(), Config.Epochs);
  uint64_t Baseline = 0;
  uint32_t Forced = 0;
  for (const GcCycleRecord &Rec : Cycles) {
    if (!Rec.Forced)
      continue;
    if (++Forced == 1)
      Baseline = Rec.LiveBytes;
    EXPECT_EQ(Rec.LiveBytes, Baseline) << "cycle " << Rec.Cycle;
  }
  EXPECT_EQ(Forced, Config.Epochs);
}

} // namespace
