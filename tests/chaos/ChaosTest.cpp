//===--- ChaosTest.cpp - Randomized fault-injection chaos suite -----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos suite (`ctest -L chaos`): every registered migratable
/// implementation and the online migration machinery run under a
/// randomized fault plan — injected allocation failures inside live
/// migrations, forced GCs at allocation instants — while a lockstep
/// standard-library reference model checks the differential invariant:
/// the observable contents always match, even across aborted migrations.
/// A deterministic fail-at-publish case guarantees at least one aborted
/// migration per run regardless of the seed, and a ServerSim chaos run
/// checks the shutdown report is well formed and that the degradation
/// accounting balances (noted == folded + dropped).
///
/// The seed comes from CHAM_CHAOS_SEED (any strtoull base-0 form) and is
/// printed at the start of every test so a CI failure can be replayed.
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"

#include "collections/Handles.h"
#include "core/Chameleon.h"
#include "support/FaultInjector.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

using namespace chameleon;

namespace {

constexpr uint64_t Gamma = 0x9E3779B97F4A7C15ULL;

/// The run's chaos seed: CHAM_CHAOS_SEED when set, a fixed default
/// otherwise (CI passes 3 fixed seeds plus the run id).
uint64_t chaosSeed() {
  if (const char *Env = std::getenv("CHAM_CHAOS_SEED"))
    if (*Env != '\0')
      return std::strtoull(Env, nullptr, 0);
  return 0xC4A05;
}

/// Announces the replay seed on stderr and in the gtest trace stack.
#define CHAOS_TRACE(Seed)                                                      \
  std::fprintf(stderr, "[chaos] seed=0x%llx (replay: CHAM_CHAOS_SEED=0x%llx)\n", \
               static_cast<unsigned long long>(Seed),                          \
               static_cast<unsigned long long>(Seed));                         \
  SCOPED_TRACE(::testing::Message() << "chaos seed 0x" << std::hex << (Seed))

/// Disarms the process-global injector when a test ends, whatever happens.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

/// The randomized ambient plan for differential runs: migrations fail
/// often, implementation-internal reserves occasionally (suppressed
/// outside migration FailScopes, aborting inside them), and allocation
/// sometimes happens right after a forced collection.
FaultPlan ambientPlan(uint64_t Seed) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.Rules.push_back(
      {"migrate.*", FaultAction::FailAlloc, /*NthHit=*/0, /*Probability=*/0.2});
  Plan.Rules.push_back(
      {"*.reserve", FaultAction::FailAlloc, /*NthHit=*/0, /*Probability=*/0.05});
  Plan.Rules.push_back(
      {"gc.alloc", FaultAction::ForceGc, /*NthHit=*/0, /*Probability=*/0.01});
  return Plan;
}

/// Built-in kinds a live collection can migrate to, per ADT (the
/// degenerate shape-specialised kinds are allocation-time only).
const ImplKind ListKinds[] = {ImplKind::ArrayList, ImplKind::LinkedList,
                              ImplKind::LazyArrayList, ImplKind::IntArrayList,
                              ImplKind::HashedList};
const ImplKind SetKinds[] = {ImplKind::HashSet, ImplKind::ArraySet,
                             ImplKind::LazySet, ImplKind::LinkedHashSet,
                             ImplKind::SizeAdaptingSet};
const ImplKind MapKinds[] = {ImplKind::HashMap, ImplKind::ArrayMap,
                             ImplKind::LazyMap, ImplKind::SizeAdaptingMap};

template <size_t N>
ImplKind pick(SplitMix64 &Rng, const ImplKind (&Kinds)[N]) {
  return Kinds[Rng.nextBelow(N)];
}

std::vector<int64_t> iterateList(const List &L) {
  std::vector<int64_t> Out;
  ValueIter It = L.iterate();
  Value V;
  while (It.next(V))
    Out.push_back(V.asInt());
  return Out;
}

std::vector<int64_t> iterateSetSorted(const Set &S) {
  std::vector<int64_t> Out;
  ValueIter It = S.iterate();
  Value V;
  while (It.next(V))
    Out.push_back(V.asInt());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Lists: order-sensitive compare against a std::vector model. Values are
/// unique (a monotonic counter) so deduplicating backings (HashedList)
/// behave identically to the model, and int32-small so IntArrayList can
/// represent them.
void runListChaos(ImplKind Start, uint64_t Seed, uint64_t &Aborts,
                  uint64_t &Commits) {
  SCOPED_TRACE(implKindName(Start));
  DisarmGuard Guard;
  CollectionRuntime RT;
  FaultInjector::instance().arm(ambientPlan(Seed));
  SplitMix64 Rng(Seed ^ (Gamma * (implIndex(Start) + 1)));

  List L = RT.newListOf(Start, RT.site("Chaos.list:1"));
  std::vector<int64_t> Model;
  int64_t NextVal = 0;

  for (int Op = 0; Op < 400; ++Op) {
    if (Op % 8 == 7) {
      MigrationOutcome Out =
          RT.migrateCollection(L.wrapperRef(), pick(Rng, ListKinds));
      Aborts += Out == MigrationOutcome::Aborted;
      Commits += Out == MigrationOutcome::Committed;
      ASSERT_EQ(iterateList(L), Model) << "contents diverged after migration";
      continue;
    }
    uint32_t Size = static_cast<uint32_t>(Model.size());
    // HashedList is a set-shaped List backing: positional insert/update
    // abort by contract (the rules only install it where the profile
    // shows they are never used), so the workload skips them there too.
    bool Positional = L.backing() != ImplKind::HashedList;
    switch (Rng.nextBelow(6)) {
    case 0: {
      int64_t V = NextVal++;
      L.add(Value::ofInt(V));
      Model.push_back(V);
      break;
    }
    case 1: {
      int64_t V = NextVal++;
      uint32_t At =
          Positional ? static_cast<uint32_t>(Rng.nextBelow(Size + 1)) : Size;
      if (Positional)
        L.add(At, Value::ofInt(V));
      else
        L.add(Value::ofInt(V));
      Model.insert(Model.begin() + At, V);
      break;
    }
    case 2: {
      if (Size == 0)
        break;
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Size));
      ASSERT_EQ(L.removeAt(At).asInt(), Model[At]);
      Model.erase(Model.begin() + At);
      break;
    }
    case 3: {
      if (Size == 0)
        break;
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Size));
      ASSERT_EQ(L.get(At).asInt(), Model[At]);
      break;
    }
    case 4: {
      if (Size == 0)
        break;
      if (!Positional) {
        ASSERT_EQ(L.removeFirst().asInt(), Model.front());
        Model.erase(Model.begin());
        break;
      }
      int64_t V = NextVal++;
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Size));
      ASSERT_EQ(L.set(At, Value::ofInt(V)).asInt(), Model[At]);
      Model[At] = V;
      break;
    }
    case 5: {
      int64_t V = static_cast<int64_t>(Rng.nextBelow(
          static_cast<uint64_t>(NextVal) + 2));
      bool InModel =
          std::find(Model.begin(), Model.end(), V) != Model.end();
      ASSERT_EQ(L.contains(Value::ofInt(V)), InModel);
      break;
    }
    }
    ASSERT_EQ(L.size(), Model.size());
  }

  FaultInjector::instance().disarm();
  ASSERT_EQ(iterateList(L), Model);
  std::string Error;
  ASSERT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

/// Sets: membership compare against std::set; iteration order is the
/// backing's own business, so contents compare sorted.
void runSetChaos(ImplKind Start, uint64_t Seed, uint64_t &Aborts,
                 uint64_t &Commits) {
  SCOPED_TRACE(implKindName(Start));
  DisarmGuard Guard;
  CollectionRuntime RT;
  FaultInjector::instance().arm(ambientPlan(Seed));
  SplitMix64 Rng(Seed ^ (Gamma * (implIndex(Start) + 1)));

  Set S = RT.newSetOf(Start, RT.site("Chaos.set:1"));
  std::set<int64_t> Model;

  for (int Op = 0; Op < 400; ++Op) {
    if (Op % 8 == 7) {
      MigrationOutcome Out =
          RT.migrateCollection(S.wrapperRef(), pick(Rng, SetKinds));
      Aborts += Out == MigrationOutcome::Aborted;
      Commits += Out == MigrationOutcome::Committed;
      ASSERT_EQ(iterateSetSorted(S),
                std::vector<int64_t>(Model.begin(), Model.end()))
          << "contents diverged after migration";
      continue;
    }
    int64_t V = static_cast<int64_t>(Rng.nextBelow(50));
    switch (Rng.nextBelow(3)) {
    case 0:
      ASSERT_EQ(S.add(Value::ofInt(V)), Model.insert(V).second);
      break;
    case 1:
      ASSERT_EQ(S.remove(Value::ofInt(V)), Model.erase(V) > 0);
      break;
    case 2:
      ASSERT_EQ(S.contains(Value::ofInt(V)), Model.count(V) > 0);
      break;
    }
    ASSERT_EQ(S.size(), Model.size());
  }

  FaultInjector::instance().disarm();
  ASSERT_EQ(iterateSetSorted(S),
            std::vector<int64_t>(Model.begin(), Model.end()));
  std::string Error;
  ASSERT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

void runMapChaos(ImplKind Start, uint64_t Seed, uint64_t &Aborts,
                 uint64_t &Commits) {
  SCOPED_TRACE(implKindName(Start));
  DisarmGuard Guard;
  CollectionRuntime RT;
  FaultInjector::instance().arm(ambientPlan(Seed));
  SplitMix64 Rng(Seed ^ (Gamma * (implIndex(Start) + 1)));

  Map M = RT.newMapOf(Start, RT.site("Chaos.map:1"));
  std::map<int64_t, int64_t> Model;

  auto checkAll = [&] {
    ASSERT_EQ(M.size(), Model.size());
    for (const auto &[K, V] : Model) {
      Value Got = M.get(Value::ofInt(K));
      ASSERT_FALSE(Got.isNull()) << "key " << K << " lost";
      ASSERT_EQ(Got.asInt(), V) << "key " << K;
    }
    EntryIter It = M.iterate();
    Value K, V;
    while (It.next(K, V)) {
      auto Found = Model.find(K.asInt());
      ASSERT_NE(Found, Model.end()) << "phantom key " << K.asInt();
      ASSERT_EQ(V.asInt(), Found->second);
    }
  };

  for (int Op = 0; Op < 400; ++Op) {
    if (Op % 8 == 7) {
      MigrationOutcome Out =
          RT.migrateCollection(M.wrapperRef(), pick(Rng, MapKinds));
      Aborts += Out == MigrationOutcome::Aborted;
      Commits += Out == MigrationOutcome::Committed;
      checkAll();
      if (::testing::Test::HasFatalFailure())
        return;
      continue;
    }
    int64_t K = static_cast<int64_t>(Rng.nextBelow(32));
    int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
    switch (Rng.nextBelow(4)) {
    case 0:
      ASSERT_EQ(M.put(Value::ofInt(K), Value::ofInt(V)),
                Model.insert_or_assign(K, V).second);
      break;
    case 1:
      ASSERT_EQ(M.remove(Value::ofInt(K)), Model.erase(K) > 0);
      break;
    case 2: {
      Value Got = M.get(Value::ofInt(K));
      auto Found = Model.find(K);
      if (Found == Model.end())
        ASSERT_TRUE(Got.isNull());
      else
        ASSERT_EQ(Got.asInt(), Found->second);
      break;
    }
    case 3:
      ASSERT_EQ(M.containsKey(Value::ofInt(K)), Model.count(K) > 0);
      break;
    }
    ASSERT_EQ(M.size(), Model.size());
  }

  FaultInjector::instance().disarm();
  checkAll();
  std::string Error;
  ASSERT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

TEST(Chaos, ListDifferentialUnderFaults) {
  uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  uint64_t Aborts = 0, Commits = 0;
  for (ImplKind Start : ListKinds) {
    runListChaos(Start, Seed, Aborts, Commits);
    if (HasFatalFailure())
      return;
  }
  // With migrate.* failing at p=0.2 over ~250 attempts, both outcomes
  // occur for any seed with overwhelming probability.
  EXPECT_GT(Commits, 0u);
  EXPECT_GT(Aborts, 0u);
}

TEST(Chaos, SetDifferentialUnderFaults) {
  uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  uint64_t Aborts = 0, Commits = 0;
  for (ImplKind Start : SetKinds) {
    runSetChaos(Start, Seed, Aborts, Commits);
    if (HasFatalFailure())
      return;
  }
  EXPECT_GT(Commits, 0u);
}

TEST(Chaos, MapDifferentialUnderFaults) {
  uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  uint64_t Aborts = 0, Commits = 0;
  for (ImplKind Start : MapKinds) {
    runMapChaos(Start, Seed, Aborts, Commits);
    if (HasFatalFailure())
      return;
  }
  EXPECT_GT(Commits, 0u);
}

/// Seed-independent guarantee: at least one migration in the suite aborts
/// at the very last injection point (publish) and the contents survive
/// byte-for-byte. Randomized plans cannot promise this for every seed;
/// this deterministic case can.
TEST(Chaos, AbortedMigrationAtPublishPreservesContents) {
  uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  DisarmGuard Guard;
  CollectionRuntime RT;
  SplitMix64 Rng(Seed);

  Map M = RT.newHashMap(RT.site("Chaos.publish:1"));
  std::map<int64_t, int64_t> Model;
  for (int I = 0; I < 12; ++I) {
    int64_t K = static_cast<int64_t>(Rng.nextBelow(64));
    int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
    M.put(Value::ofInt(K), Value::ofInt(V));
    Model.insert_or_assign(K, V);
  }

  FaultPlan Plan;
  Plan.Rules.push_back({"migrate.publish", FaultAction::FailAlloc,
                        /*NthHit=*/1});
  FaultInjector::instance().arm(Plan);
  ASSERT_EQ(RT.migrateCollection(M.wrapperRef(), ImplKind::ArrayMap),
            MigrationOutcome::Aborted);
  FaultInjector::instance().disarm();

  EXPECT_EQ(M.backing(), ImplKind::HashMap);
  ASSERT_EQ(M.size(), Model.size());
  for (const auto &[K, V] : Model)
    EXPECT_EQ(M.get(Value::ofInt(K)).asInt(), V);
  EXPECT_GE(RT.migrationAborts(), 1u);

  // The same migration succeeds once the plan is gone.
  EXPECT_EQ(RT.migrateCollection(M.wrapperRef(), ImplKind::ArrayMap),
            MigrationOutcome::Committed);
  ASSERT_EQ(M.size(), Model.size());
  for (const auto &[K, V] : Model)
    EXPECT_EQ(M.get(Value::ofInt(K)).asInt(), V);
}

/// The multi-threaded server workload under full chaos: randomized fault
/// plan, online adaptor, migration storms, and a soft heap limit low
/// enough that the profiler's shed mode engages. The run must survive and
/// account for everything it shed.
TEST(Chaos, ServerSimSurvivesAndReportsWellFormed) {
  uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  apps::ServerSimConfig Config;
  Config.Chaos = true;
  Config.ChaosSeed = Seed;

  CollectionRuntime RT(apps::serverSimRuntimeConfig());
  apps::ServerSimResult Result = apps::runServerSim(RT, Config);

  EXPECT_EQ(Result.TotalRequests,
            static_cast<uint64_t>(Config.Epochs) * Config.RequestsPerEpoch);
  EXPECT_FALSE(Result.Report.empty());

  // Well-formed shutdown report: every accounting section present.
  for (const char *Line :
       {"chaos: seed=", "faults:", "migrations:", "retire:", "degradation:",
        "events:"})
    EXPECT_NE(Result.ChaosReport.find(Line), std::string::npos)
        << "missing section '" << Line << "' in:\n"
        << Result.ChaosReport;

  // The migration storm guarantees live migrations happened, and the
  // chaos plan makes some of them abort for virtually every seed.
  EXPECT_GT(RT.migrationAttempts(), 0u);
  EXPECT_EQ(RT.migrationAttempts(),
            RT.migrationCommits() + RT.migrationAborts());

  // Degradation accounting balances: every allocation and death the
  // profiler accepted was either folded into a context or counted as
  // deliberately dropped. Nothing vanishes silently.
  RT.flushMutatorStatistics();
  ProfilerDegradationStats D = RT.profiler().degradationStats();
  EXPECT_EQ(D.NotedAllocs, D.FoldedAllocs + D.DroppedAllocs);
  EXPECT_EQ(D.NotedDeaths, D.FoldedDeaths + D.DroppedDeaths);
  EXPECT_GT(D.HeapPressureEvents, 0u)
      << "the soft limit never engaged; chaos degradation path untested";

  std::string Error;
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

} // namespace
