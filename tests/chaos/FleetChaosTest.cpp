//===--- FleetChaosTest.cpp - Fleet pipeline chaos suite ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos for the agent→aggregator pipeline (`ctest -L chaos`): a seeded
/// fault storm over every fleet fault site (connect, send, WAL append,
/// WAL compact, snapshot write, snapshot rename) combined with random
/// aggregator kills/restarts mid-stream. The invariant under all of it is
/// the DESIGN.md §15 durability contract: once the storm ends, every
/// committed epoch converges to durable — the aggregator's per-stream
/// latest equals each agent's last committed epoch, the persisted snapshot
/// reloads byte-faithfully, and agent WALs stay structurally intact.
/// A corrupted snapshot on restart is quarantined (typed, never a crash)
/// and the fleet self-heals via the next cumulative commit.
///
/// The seed comes from CHAM_CHAOS_SEED (any strtoull base-0 form) and is
/// printed at the start of every test so a CI failure can be replayed.
///
//===----------------------------------------------------------------------===//

#include "fleet/Agent.h"
#include "fleet/Aggregator.h"
#include "fleet/Snapshot.h"
#include "fleet/SpillWal.h"
#include "fleet/Transport.h"
#include "support/FaultInjector.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace chameleon;
using namespace chameleon::fleet;

namespace {

namespace fs = std::filesystem;

uint64_t chaosSeed() {
  if (const char *Env = std::getenv("CHAM_CHAOS_SEED"))
    if (*Env != '\0')
      return std::strtoull(Env, nullptr, 0);
  return 0xC4A05;
}

#define CHAOS_TRACE(Seed)                                                      \
  std::fprintf(stderr, "[chaos] seed=0x%llx (replay: CHAM_CHAOS_SEED=0x%llx)\n", \
               static_cast<unsigned long long>(Seed),                          \
               static_cast<unsigned long long>(Seed));                         \
  SCOPED_TRACE(::testing::Message() << "chaos seed 0x" << std::hex << (Seed))

struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

/// Probability rules over every fleet fault site. Connect fails often
/// (exercising backoff), persistence fails often (exercising durable-mark
/// withholding and WAL retention), the rest at a steady simmer.
FaultPlan fleetPlan(uint64_t Seed) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.Rules.push_back(
      {"fleet.agent.connect", FaultAction::FailAlloc, 0, 0.25});
  Plan.Rules.push_back({"fleet.agent.send", FaultAction::FailAlloc, 0, 0.15});
  Plan.Rules.push_back(
      {"fleet.agent.wal_append", FaultAction::FailAlloc, 0, 0.15});
  Plan.Rules.push_back(
      {"fleet.agent.wal_compact", FaultAction::FailAlloc, 0, 0.2});
  Plan.Rules.push_back(
      {"fleet.snapshot.write", FaultAction::FailAlloc, 0, 0.25});
  Plan.Rules.push_back(
      {"fleet.snapshot.rename", FaultAction::FailAlloc, 0, 0.1});
  return Plan;
}

/// Cumulative per-epoch profile keyed by \p Salt so each agent's stream
/// has distinct contents.
ProcessProfile chaosProfile(uint64_t Salt, uint64_t Epoch) {
  ProcessProfile P;
  P.Epoch = Epoch;
  P.CyclesSeen = Epoch;
  P.HeapLive = {Epoch * (100 + Salt), 100 + Salt, Epoch};
  ContextProfile C;
  C.TypeName = Salt % 2 ? "HashMap" : "ArrayList";
  C.Frames = {"site:" + std::to_string(Salt)};
  C.Allocations = Epoch * (10 + Salt);
  P.Contexts.push_back(std::move(C));
  return P;
}

struct TempDir {
  fs::path Path;
  explicit TempDir(const char *Name)
      : Path(fs::temp_directory_path() / Name) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
};

FleetAggregatorConfig aggConfig(const std::string &SnapPath) {
  FleetAggregatorConfig C;
  C.SnapshotPath = SnapPath;
  C.PersistEveryUpdates = 1;
  return C;
}

/// Post-storm convergence: persist, bounce the server once so every agent
/// re-handshakes and learns the real durable mark, then pump to drained.
void drainAll(std::vector<std::unique_ptr<FleetAgent>> &Agents,
              FleetAggregator &Agg, InMemoryHub &Hub, uint64_t &Tick) {
  std::string Err;
  Agg.persist(Err);
  Hub.stopServer();
  for (auto &A : Agents)
    A->pump(Tick++); // observe the death
  Hub.startServer();
  for (int Round = 0; Round < 5000; ++Round) {
    bool AllDrained = true;
    for (auto &A : Agents) {
      A->pump(Tick++);
      AllDrained = AllDrained && A->drained();
    }
    for (auto &C : Hub.acceptAll())
      Agg.attach(std::move(C));
    Agg.pump();
    Agg.persist(Err);
    if (AllDrained)
      return;
  }
}

TEST(FleetChaosTest, StormThenEveryCommittedEpochConverges) {
  const uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  TempDir Dir("cham-fleet-chaos-storm");
  const std::string SnapPath = (Dir.Path / "fleet.snap").string();
  constexpr size_t NumAgents = 3;
  constexpr uint64_t EpochsPerAgent = 10;

  InMemoryHub Hub;
  auto Agg = std::make_unique<FleetAggregator>(aggConfig(SnapPath));
  EXPECT_TRUE(Agg->loadInitial().ok());

  std::vector<std::unique_ptr<FleetAgent>> Agents;
  for (size_t I = 0; I < NumAgents; ++I) {
    FleetAgentConfig AC;
    AC.AgentId = "chaos-" + std::to_string(I);
    AC.RunSeed = Seed;
    AC.WalPath = (Dir.Path / (AC.AgentId + ".wal")).string();
    AC.MaxQueue = 64; // no backpressure shedding: every epoch travels
    AC.JitterSeed = Seed ^ (I * 0x9E3779B97F4A7C15ULL);
    Agents.push_back(std::make_unique<FleetAgent>(AC, Hub));
    std::string Err;
    ASSERT_TRUE(Agents.back()->recover(Err)) << Err;
  }

  DisarmGuard Guard;
  FaultInjector::instance().arm(fleetPlan(Seed));

  SplitMix64 Rng(Seed * 0xDECAF + 1);
  std::vector<uint64_t> Committed(NumAgents, 0);
  uint64_t Tick = 0;
  int ServerDownRounds = 0;
  for (int Round = 0; Round < 300; ++Round) {
    for (size_t I = 0; I < NumAgents; ++I) {
      if (Committed[I] < EpochsPerAgent && Rng.nextBelow(3) == 0)
        Agents[I]->commitEpoch(chaosProfile(I, ++Committed[I]));
      Agents[I]->pump(Tick++);
    }
    if (Hub.serverUp()) {
      for (auto &C : Hub.acceptAll())
        Agg->attach(std::move(C));
      Agg->pump();
      if (Rng.nextBelow(40) == 0) {
        // Crash the aggregator mid-stream: no final persist, all state
        // below the last good snapshot is gone.
        Hub.stopServer();
        Agg.reset();
        ServerDownRounds = 1 + static_cast<int>(Rng.nextBelow(8));
      }
    } else if (--ServerDownRounds <= 0) {
      Agg = std::make_unique<FleetAggregator>(aggConfig(SnapPath));
      Agg->loadInitial(); // may be stale or missing; both are fine
      Hub.startServer();
    }
  }

  FaultInjector::instance().disarm();
  if (!Hub.serverUp()) {
    Agg = std::make_unique<FleetAggregator>(aggConfig(SnapPath));
    Agg->loadInitial();
    Hub.startServer();
  }
  // Finish the commit quota (normal operation now) and drain.
  for (size_t I = 0; I < NumAgents; ++I)
    while (Committed[I] < EpochsPerAgent)
      Agents[I]->commitEpoch(chaosProfile(I, ++Committed[I]));
  drainAll(Agents, *Agg, Hub, Tick);

  FleetState Final = Agg->stateCopy();
  for (size_t I = 0; I < NumAgents; ++I) {
    SCOPED_TRACE(::testing::Message() << "agent " << I);
    FleetAgentStats S = Agents[I]->stats();
    EXPECT_TRUE(Agents[I]->drained());
    EXPECT_EQ(Agents[I]->lastEpoch(), EpochsPerAgent);
    EXPECT_EQ(S.CommittedEpochs, EpochsPerAgent);
    EXPECT_EQ(S.DurableEpoch, EpochsPerAgent);
    StreamKey Key{"chaos-" + std::to_string(I), Seed};
    EXPECT_EQ(Final.latestEpoch(Key), EpochsPerAgent);
    // The merged view carries the cumulative (latest-epoch) contents.
    EXPECT_EQ(Final.streams().at(Key).Latest.Contexts[0].Allocations,
              EpochsPerAgent * (10 + I));

    // WAL ledger: structurally intact end to end — no torn frames, no
    // epoch outside the committed range (stale-but-compactable leftovers
    // below the durable mark are legal when compaction faults fired).
    SpillWal::LoadResult Wal;
    std::string Err;
    ASSERT_TRUE(SpillWal::load(
        (Dir.Path / ("chaos-" + std::to_string(I) + ".wal")).string(), Wal,
        Err))
        << Err;
    EXPECT_EQ(Wal.TornBytes, 0u);
    for (const SpillWal::Record &R : Wal.Records)
      EXPECT_LE(R.Epoch, EpochsPerAgent);
  }

  // The snapshot on disk reloads cleanly and matches the live state
  // byte for byte.
  FleetState Loaded;
  SnapshotLoadResult LR = loadSnapshot(SnapPath, Loaded, false);
  ASSERT_TRUE(LR.ok()) << LR.Message;
  EXPECT_EQ(encodeSnapshot(Loaded), encodeSnapshot(Final));
}

TEST(FleetChaosTest, AggregatorKillRestartLosesNoCommittedEpoch) {
  const uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  TempDir Dir("cham-fleet-chaos-kill");
  const std::string SnapPath = (Dir.Path / "fleet.snap").string();

  InMemoryHub Hub;
  FleetAgentConfig AC;
  AC.AgentId = "survivor";
  AC.RunSeed = Seed;
  AC.WalPath = (Dir.Path / "survivor.wal").string();
  std::vector<std::unique_ptr<FleetAgent>> Agents;
  Agents.push_back(std::make_unique<FleetAgent>(AC, Hub));
  FleetAgent &Agent = *Agents[0];
  std::string Err;
  ASSERT_TRUE(Agent.recover(Err)) << Err;

  uint64_t Tick = 0;
  {
    auto Agg = std::make_unique<FleetAggregator>(aggConfig(SnapPath));
    EXPECT_TRUE(Agg->loadInitial().ok());
    Agent.commitEpoch(chaosProfile(7, 1));
    Agent.commitEpoch(chaosProfile(7, 2));
    drainAll(Agents, *Agg, Hub, Tick);
    ASSERT_EQ(Agent.stats().DurableEpoch, 2u);
    // Kill without a goodbye: destructor runs, no extra persist call.
    Hub.stopServer();
  }

  // Two more commits while the aggregator is dead: WAL-only.
  Agent.commitEpoch(chaosProfile(7, 3));
  Agent.commitEpoch(chaosProfile(7, 4));
  for (int I = 0; I < 20; ++I)
    Agent.pump(Tick++);
  EXPECT_EQ(Agent.stats().DurableEpoch, 2u);
  SpillWal::LoadResult Wal;
  ASSERT_TRUE(SpillWal::load(AC.WalPath, Wal, Err)) << Err;
  EXPECT_GE(Wal.Records.size(), 2u) << "epochs 3 and 4 must be spilled";

  // Restart from the snapshot: epoch 2 is restored, 3..4 replay from the
  // agent's WAL-backed queue.
  FleetAggregator Agg(aggConfig(SnapPath));
  ASSERT_TRUE(Agg.loadInitial().ok());
  EXPECT_EQ(Agg.stateCopy().latestEpoch({"survivor", Seed}), 2u);
  Hub.startServer();
  drainAll(Agents, Agg, Hub, Tick);

  EXPECT_TRUE(Agent.drained());
  EXPECT_EQ(Agent.stats().DurableEpoch, 4u);
  EXPECT_EQ(Agg.stateCopy().latestEpoch({"survivor", Seed}), 4u);
  EXPECT_EQ(Agg.mergedProfile().Contexts[0].Allocations, 4u * 17);
}

TEST(FleetChaosTest, CorruptSnapshotQuarantinesThenSelfHeals) {
  const uint64_t Seed = chaosSeed();
  CHAOS_TRACE(Seed);
  TempDir Dir("cham-fleet-chaos-corrupt");
  const std::string SnapPath = (Dir.Path / "fleet.snap").string();

  InMemoryHub Hub;
  FleetAgentConfig AC;
  AC.AgentId = "healer";
  AC.RunSeed = Seed;
  AC.WalPath = (Dir.Path / "healer.wal").string();
  std::vector<std::unique_ptr<FleetAgent>> Agents;
  Agents.push_back(std::make_unique<FleetAgent>(AC, Hub));
  FleetAgent &Agent = *Agents[0];
  std::string Err;
  ASSERT_TRUE(Agent.recover(Err)) << Err;

  uint64_t Tick = 0;
  {
    FleetAggregator Agg(aggConfig(SnapPath));
    EXPECT_TRUE(Agg.loadInitial().ok());
    for (uint64_t E = 1; E <= 3; ++E)
      Agent.commitEpoch(chaosProfile(11, E));
    drainAll(Agents, Agg, Hub, Tick);
    ASSERT_EQ(Agent.stats().DurableEpoch, 3u);
    Hub.stopServer();
  }

  // A seeded bit flip somewhere in the snapshot body.
  std::string Bytes;
  {
    std::ifstream In(SnapPath, std::ios::binary);
    ASSERT_TRUE(In.good());
    std::ostringstream Ss;
    Ss << In.rdbuf();
    Bytes = Ss.str();
  }
  ASSERT_GT(Bytes.size(), 16u);
  SplitMix64 Rng(Seed + 3);
  Bytes[Rng.nextBelow(Bytes.size())] ^= 0x40;
  {
    std::ofstream OutF(SnapPath, std::ios::binary | std::ios::trunc);
    OutF.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  // Restart: the corrupt file is quarantined with a typed error — never a
  // crash, never partial state.
  FleetAggregator Agg(aggConfig(SnapPath));
  SnapshotLoadResult LR = Agg.loadInitial();
  ASSERT_FALSE(LR.ok());
  EXPECT_NE(LR.Error, SnapshotError::Io) << LR.Message;
  EXPECT_FALSE(LR.QuarantinePath.empty());
  EXPECT_TRUE(fs::exists(LR.QuarantinePath));
  EXPECT_FALSE(fs::exists(SnapPath));
  EXPECT_EQ(Agg.stats().SnapshotQuarantines, 1u);
  EXPECT_TRUE(Agg.stateCopy().empty());

  // Self-heal: epochs are cumulative, so one more commit restores the
  // stream's full state fleet-wide.
  Hub.startServer();
  Agent.commitEpoch(chaosProfile(11, 4));
  drainAll(Agents, Agg, Hub, Tick);

  EXPECT_TRUE(Agent.drained());
  EXPECT_EQ(Agg.stateCopy().latestEpoch({"healer", Seed}), 4u);
  EXPECT_EQ(Agg.mergedProfile().Contexts[0].Allocations, 4u * 21);
  FleetState Reloaded;
  SnapshotLoadResult RL = loadSnapshot(SnapPath, Reloaded, false);
  ASSERT_TRUE(RL.ok()) << RL.Message;
  EXPECT_EQ(Reloaded.latestEpoch({"healer", Seed}), 4u);
}

} // namespace
