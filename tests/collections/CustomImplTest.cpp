//===--- CustomImplTest.cpp - User-supplied implementation tests ----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the extensibility path the paper claims (§4.2/§4.3.2): a custom
/// implementation registered by the user is allocated through the factory,
/// profiled per context, accounted by the collection-aware GC through its
/// own sizes(), matched by ADT rules, and redirected by the plan.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"
#include "rules/RuleEngine.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

/// Minimal custom list: a fixed-growth array with a deliberately odd
/// growth factor, so it is visibly not the built-in ArrayList.
class ChunkListImpl : public SeqImpl {
public:
  ChunkListImpl(TypeId Type, uint64_t Bytes, CollectionRuntime &RT,
                uint32_t Chunk)
      : SeqImpl(Type, Bytes, RT), Chunk(Chunk ? Chunk : 7) {}

  ImplKind kind() const override { return ImplKind::ArrayList; } // display
  uint32_t size() const override { return Count; }

  void clear() override {
    Count = 0;
    bumpMod();
  }

  CollectionSizes sizes() const override {
    const MemoryModel &M = RT.heap().model();
    CollectionSizes S;
    S.Live = shallowBytes()
             + (Backing.isNull() ? 0 : M.arrayBytes(Capacity));
    S.Used =
        S.Live - static_cast<uint64_t>(Capacity - Count) * M.PointerBytes;
    S.Core = Count == 0 ? 0 : M.arrayBytes(Count);
    return S;
  }

  bool add(Value V) override {
    if (Count == Capacity) {
      ObjectRef Fresh = RT.allocValueArray(Capacity + Chunk);
      ValueArray &New = RT.heap().getAs<ValueArray>(Fresh);
      for (uint32_t I = 0; I < Count; ++I)
        New.set(I, RT.heap().getAs<ValueArray>(Backing).get(I));
      Backing = Fresh;
      Capacity += Chunk;
    }
    RT.heap().getAs<ValueArray>(Backing).set(Count++, V);
    bumpMod();
    return true;
  }

  Value get(uint32_t Index) const override {
    assert(Index < Count);
    return RT.heap().getAs<ValueArray>(Backing).get(Index);
  }

  bool removeValue(Value V) override {
    for (uint32_t I = 0; I < Count; ++I) {
      if (get(I) == V) {
        ValueArray &Arr = RT.heap().getAs<ValueArray>(Backing);
        for (uint32_t J = I; J + 1 < Count; ++J)
          Arr.set(J, Arr.get(J + 1));
        --Count;
        bumpMod();
        return true;
      }
    }
    return false;
  }

  bool contains(Value V) const override {
    for (uint32_t I = 0; I < Count; ++I)
      if (get(I) == V)
        return true;
    return false;
  }

  bool iterNext(IterState &State, Value &Out) const override {
    if (State.A >= Count)
      return false;
    Out = get(static_cast<uint32_t>(State.A++));
    return true;
  }

  void trace(GcTracer &Tracer) const override { Tracer.visit(Backing); }

private:
  ObjectRef Backing;
  uint32_t Count = 0;
  uint32_t Capacity = 0;
  uint32_t Chunk;
};

struct CustomImplTest : ::testing::Test {
  CollectionRuntime RT;
  CustomImplId ChunkId = registerChunkList(RT);
  FrameId Site = RT.site("Custom.make:5");

  static CustomImplId registerChunkList(CollectionRuntime &RT) {
    CustomImpl Impl;
    Impl.Name = "ChunkList";
    Impl.Adt = AdtKind::List;
    Impl.Make = [](CollectionRuntime &R, TypeId Type, uint32_t Capacity) {
      return std::make_unique<ChunkListImpl>(
          Type, R.heap().model().objectBytes(1, 8), R, Capacity);
    };
    return RT.registerCustomImpl(Impl);
  }
};

TEST_F(CustomImplTest, BehavesAsAList) {
  List L = RT.newCustomList(ChunkId, Site);
  EXPECT_TRUE(L.isCustomBacked());
  EXPECT_EQ(L.backingName(), "ChunkList");
  for (int I = 0; I < 20; ++I)
    L.add(Value::ofInt(I));
  EXPECT_EQ(L.size(), 20u);
  EXPECT_EQ(L.get(13).asInt(), 13);
  EXPECT_TRUE(L.contains(Value::ofInt(0)));
  EXPECT_TRUE(L.remove(Value::ofInt(0)));
  EXPECT_EQ(L.get(0).asInt(), 1);
  ValueIter It = L.iterate();
  Value V;
  int Seen = 0;
  while (It.next(V))
    ++Seen;
  EXPECT_EQ(Seen, 19);
}

TEST_F(CustomImplTest, ProfiledLikeABuiltin) {
  {
    List L = RT.newCustomList(ChunkId, Site);
    L.add(Value::ofInt(1));
    ASSERT_NE(L.context(), nullptr);
    EXPECT_EQ(L.context()->typeName(), "ChunkList");
    EXPECT_EQ(RT.profiler().contextLabel(*L.context()),
              "ChunkList:Custom.make:5");
  }
  RT.heap().collect(true);
  const ContextInfo *Info = RT.profiler().contexts()[0];
  EXPECT_EQ(Info->foldedInstances(), 1u);
  EXPECT_DOUBLE_EQ(Info->opStat(OpKind::Add).mean(), 1.0);
  EXPECT_EQ(RT.allocationsWithCustomImpl(ChunkId), 1u);
}

TEST_F(CustomImplTest, GcAccountsCustomSizesViaSemanticMaps) {
  List L = RT.newCustomList(ChunkId, Site);
  L.add(Value::ofInt(1));
  const GcCycleRecord &Rec = RT.heap().collect(true);
  EXPECT_EQ(Rec.CollectionObjects, 1u);
  // wrapper(48) + impl(8+4+8 -> 24) + 7-slot chunk array (12+28 -> 40).
  EXPECT_EQ(Rec.CollectionLiveBytes, 48u + 24u + 40u);
  EXPECT_EQ(Rec.LiveBytes, Rec.CollectionLiveBytes);
}

TEST_F(CustomImplTest, AdtRulesMatchRegisteredSourceTypes) {
  for (int I = 0; I < 10; ++I) {
    List L = RT.newCustomList(ChunkId, Site);
    L.add(Value::ofInt(I));
    (void)L.get(0);
  }
  RT.heap().collect(true);
  RT.harvestLiveStatistics();

  rules::RuleEngine Engine;
  Engine.addRules("[custom-singletons] List : maxSize == 1 "
                  "-> SingletonList");
  std::vector<rules::Suggestion> Without =
      Engine.evaluate(RT.profiler());
  EXPECT_TRUE(Without.empty())
      << "ADT match requires registerSourceType";

  Engine.registerSourceType("ChunkList", AdtKind::List);
  std::vector<rules::Suggestion> With = Engine.evaluate(RT.profiler());
  ASSERT_EQ(With.size(), 1u);
  EXPECT_EQ(With[0].NewImpl, ImplKind::SingletonList);
}

TEST_F(CustomImplTest, PlanRedirectsCustomToBuiltin) {
  List Probe = RT.newCustomList(ChunkId, Site);
  PlanDecision Decision;
  Decision.Impl = ImplKind::SingletonList;
  RT.plan().add(RT.profiler().contextLabel(*Probe.context()), Decision);

  List Redirected = RT.newCustomList(ChunkId, Site);
  EXPECT_FALSE(Redirected.isCustomBacked());
  EXPECT_EQ(Redirected.backing(), ImplKind::SingletonList);
  EXPECT_EQ(Redirected.backingName(), "SingletonList");
}

} // namespace
