//===--- DifferentialTest.cpp - Impls vs reference models ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of every registered collection implementation:
/// seeded random operation sequences are applied in lockstep to a handle
/// and to a C++ standard-library reference model (`std::vector`,
/// `std::set`, `std::unordered_map`), and every observable — return
/// values, sizes, membership, iteration contents — must agree at every
/// step. Sequences also run across *online replacement*: a rotating
/// selector (and the real OnlineAdaptor) swap the backing implementation
/// between allocations at one site, and behaviour must stay identical.
///
/// On a mismatch the failing implementation and seed are printed via
/// SCOPED_TRACE so the sequence can be replayed exactly.
///
//===----------------------------------------------------------------------===//

#include "collections/Handles.h"

#include "core/Chameleon.h"
#include "core/OnlineAdaptor.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

using namespace chameleon;

namespace {

constexpr uint64_t BaseSeed = 0xD1FFBA5E;
constexpr uint64_t Gamma = 0x9E3779B97F4A7C15ULL;
constexpr int CasesPerImpl = 4;

/// Values stay within a small range (collisions and duplicates on
/// purpose) and within int32 so IntArrayList's 4-byte slots hold them.
int64_t randomValue(SplitMix64 &Rng) {
  return static_cast<int64_t>(Rng.nextBelow(50));
}

std::string traceLabel(const char *What, uint64_t Seed) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%s seed=0x%llx (replay with this seed)",
                What, static_cast<unsigned long long>(Seed));
  return Buf;
}

/// Collects a list's contents through its iterator.
std::vector<int64_t> iterateList(const List &L) {
  std::vector<int64_t> Out;
  ValueIter It = L.iterate();
  Value V;
  while (It.next(V))
    Out.push_back(V.asInt());
  return Out;
}

std::vector<int64_t> iterateSet(const Set &S) {
  std::vector<int64_t> Out;
  ValueIter It = S.iterate();
  Value V;
  while (It.next(V))
    Out.push_back(V.asInt());
  return Out;
}

std::vector<std::pair<int64_t, int64_t>> iterateMap(const Map &M) {
  std::vector<std::pair<int64_t, int64_t>> Out;
  EntryIter It = M.iterate();
  Value K, V;
  while (It.next(K, V))
    Out.emplace_back(K.asInt(), V.asInt());
  return Out;
}

//===----------------------------------------------------------------------===//
// List differential drivers
//===----------------------------------------------------------------------===//

/// Full positional op sequence against std::vector. \p Ordered is false
/// for HashedList, whose set-shaped backing has no positional updates and
/// deduplicates (the model then is an insertion-ordered unique vector).
void runListSequence(List L, uint64_t Seed, int Ops, bool Ordered) {
  SplitMix64 Rng(Seed);
  std::vector<int64_t> Model;
  for (int Op = 0; Op < Ops; ++Op) {
    uint64_t Roll = Rng.nextBelow(100);
    if (Roll < 30) {
      int64_t V = randomValue(Rng);
      L.add(Value::ofInt(V));
      if (Ordered)
        Model.push_back(V);
      else if (std::find(Model.begin(), Model.end(), V) == Model.end())
        Model.push_back(V);
    } else if (Roll < 40 && Ordered && !Model.empty()) {
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size() + 1));
      int64_t V = randomValue(Rng);
      L.add(At, Value::ofInt(V));
      Model.insert(Model.begin() + At, V);
    } else if (Roll < 55 && !Model.empty()) {
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size()));
      ASSERT_EQ(L.get(At).asInt(), Model[At]);
    } else if (Roll < 65 && Ordered && !Model.empty()) {
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size()));
      int64_t V = randomValue(Rng);
      ASSERT_EQ(L.set(At, Value::ofInt(V)).asInt(), Model[At]);
      Model[At] = V;
    } else if (Roll < 75 && !Model.empty()) {
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size()));
      ASSERT_EQ(L.removeAt(At).asInt(), Model[At]);
      Model.erase(Model.begin() + At);
    } else if (Roll < 80 && !Model.empty()) {
      ASSERT_EQ(L.removeFirst().asInt(), Model.front());
      Model.erase(Model.begin());
    } else if (Roll < 87) {
      int64_t V = randomValue(Rng);
      auto It = std::find(Model.begin(), Model.end(), V);
      ASSERT_EQ(L.remove(Value::ofInt(V)), It != Model.end());
      if (It != Model.end())
        Model.erase(It);
    } else if (Roll < 97) {
      int64_t V = randomValue(Rng);
      ASSERT_EQ(L.contains(Value::ofInt(V)),
                std::find(Model.begin(), Model.end(), V) != Model.end());
    } else {
      L.clear();
      Model.clear();
    }
    ASSERT_EQ(L.size(), Model.size());
    ASSERT_EQ(L.isEmpty(), Model.empty());
    if (Op % 16 == 15)
      ASSERT_EQ(iterateList(L), Model);
  }
  ASSERT_EQ(iterateList(L), Model);
}

/// Constrained sequence for SingletonList (capacity one).
void runSingletonListSequence(List L, uint64_t Seed, int Ops) {
  SplitMix64 Rng(Seed);
  std::vector<int64_t> Model;
  for (int Op = 0; Op < Ops; ++Op) {
    uint64_t Roll = Rng.nextBelow(100);
    if (Roll < 40 && Model.empty()) {
      int64_t V = randomValue(Rng);
      L.add(Value::ofInt(V));
      Model.push_back(V);
    } else if (Roll < 55 && !Model.empty()) {
      ASSERT_EQ(L.get(0).asInt(), Model[0]);
    } else if (Roll < 70 && !Model.empty()) {
      ASSERT_EQ(L.removeAt(0).asInt(), Model[0]);
      Model.clear();
    } else if (Roll < 85) {
      int64_t V = randomValue(Rng);
      ASSERT_EQ(L.contains(Value::ofInt(V)),
                !Model.empty() && Model[0] == V);
    } else {
      L.clear();
      Model.clear();
    }
    ASSERT_EQ(L.size(), Model.size());
  }
  ASSERT_EQ(iterateList(L), Model);
}

//===----------------------------------------------------------------------===//
// Set / Map differential drivers
//===----------------------------------------------------------------------===//

/// Set sequence against std::set; iteration is compared as sorted
/// contents (per-impl iteration order is not part of the Set contract).
void runSetSequence(Set S, uint64_t Seed, int Ops) {
  SplitMix64 Rng(Seed);
  std::set<int64_t> Model;
  for (int Op = 0; Op < Ops; ++Op) {
    uint64_t Roll = Rng.nextBelow(100);
    int64_t V = randomValue(Rng);
    if (Roll < 45) {
      ASSERT_EQ(S.add(Value::ofInt(V)), Model.insert(V).second);
    } else if (Roll < 65) {
      ASSERT_EQ(S.remove(Value::ofInt(V)), Model.erase(V) > 0);
    } else if (Roll < 95) {
      ASSERT_EQ(S.contains(Value::ofInt(V)), Model.count(V) > 0);
    } else {
      S.clear();
      Model.clear();
    }
    ASSERT_EQ(S.size(), Model.size());
    if (Op % 16 == 15) {
      std::vector<int64_t> Got = iterateSet(S);
      std::sort(Got.begin(), Got.end());
      ASSERT_EQ(Got, std::vector<int64_t>(Model.begin(), Model.end()));
    }
  }
}

/// Map sequence against std::unordered_map; iteration compared sorted.
void runMapSequence(Map M, uint64_t Seed, int Ops) {
  SplitMix64 Rng(Seed);
  std::unordered_map<int64_t, int64_t> Model;
  for (int Op = 0; Op < Ops; ++Op) {
    uint64_t Roll = Rng.nextBelow(100);
    int64_t K = randomValue(Rng);
    if (Roll < 40) {
      int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
      bool New = Model.find(K) == Model.end();
      ASSERT_EQ(M.put(Value::ofInt(K), Value::ofInt(V)), New);
      Model[K] = V;
    } else if (Roll < 65) {
      Value Got = M.get(Value::ofInt(K));
      auto It = Model.find(K);
      if (It == Model.end())
        ASSERT_TRUE(Got.isNull());
      else
        ASSERT_EQ(Got.asInt(), It->second);
    } else if (Roll < 80) {
      ASSERT_EQ(M.containsKey(Value::ofInt(K)), Model.count(K) > 0);
    } else if (Roll < 95) {
      ASSERT_EQ(M.remove(Value::ofInt(K)), Model.erase(K) > 0);
    } else {
      M.clear();
      Model.clear();
    }
    ASSERT_EQ(M.size(), Model.size());
    if (Op % 16 == 15) {
      auto Got = iterateMap(M);
      std::sort(Got.begin(), Got.end());
      std::vector<std::pair<int64_t, int64_t>> Want(Model.begin(),
                                                    Model.end());
      std::sort(Want.begin(), Want.end());
      ASSERT_EQ(Got, Want);
    }
  }
}

/// Constrained sequence for SingletonMap (one entry).
void runSingletonMapSequence(Map M, uint64_t Seed, int Ops) {
  SplitMix64 Rng(Seed);
  std::unordered_map<int64_t, int64_t> Model;
  for (int Op = 0; Op < Ops; ++Op) {
    uint64_t Roll = Rng.nextBelow(100);
    int64_t K = randomValue(Rng);
    if (Roll < 35 && (Model.empty() || Model.count(K))) {
      int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
      ASSERT_EQ(M.put(Value::ofInt(K), Value::ofInt(V)), !Model.count(K));
      Model[K] = V;
    } else if (Roll < 60) {
      Value Got = M.get(Value::ofInt(K));
      auto It = Model.find(K);
      ASSERT_EQ(Got.isNull(), It == Model.end());
      if (It != Model.end())
        ASSERT_EQ(Got.asInt(), It->second);
    } else if (Roll < 80) {
      ASSERT_EQ(M.remove(Value::ofInt(K)), Model.erase(K) > 0);
    } else {
      ASSERT_EQ(M.containsKey(Value::ofInt(K)), Model.count(K) > 0);
    }
    ASSERT_EQ(M.size(), Model.size());
  }
}

//===----------------------------------------------------------------------===//
// Per-implementation sweeps
//===----------------------------------------------------------------------===//

TEST(Differential, ListImplsMatchVectorModel) {
  for (ImplKind Kind : {ImplKind::ArrayList, ImplKind::LazyArrayList,
                        ImplKind::LinkedList, ImplKind::IntArrayList}) {
    for (int Case = 0; Case < CasesPerImpl; ++Case) {
      uint64_t Seed = BaseSeed ^ (Gamma * (Case + 1));
      SCOPED_TRACE(traceLabel(implKindName(Kind), Seed));
      CollectionRuntime RT;
      runListSequence(RT.newListOf(Kind, RT.site("diff.list:1")), Seed,
                      300, /*Ordered=*/true);
    }
  }
}

TEST(Differential, HashedListMatchesDedupModel) {
  for (int Case = 0; Case < CasesPerImpl; ++Case) {
    uint64_t Seed = BaseSeed ^ (Gamma * (Case + 11));
    SCOPED_TRACE(traceLabel("HashedList", Seed));
    CollectionRuntime RT;
    runListSequence(
        RT.newListOf(ImplKind::HashedList, RT.site("diff.hlist:1")), Seed,
        300, /*Ordered=*/false);
  }
}

TEST(Differential, SingletonAndEmptyListConstrainedModels) {
  for (int Case = 0; Case < CasesPerImpl; ++Case) {
    uint64_t Seed = BaseSeed ^ (Gamma * (Case + 21));
    SCOPED_TRACE(traceLabel("SingletonList", Seed));
    CollectionRuntime RT;
    runSingletonListSequence(
        RT.newListOf(ImplKind::SingletonList, RT.site("diff.slist:1")),
        Seed, 200);

    List Empty = RT.newListOf(ImplKind::EmptyList, RT.site("diff.elist:1"));
    EXPECT_TRUE(Empty.isEmpty());
    EXPECT_FALSE(Empty.contains(Value::ofInt(1)));
    EXPECT_FALSE(Empty.remove(Value::ofInt(1)));
    EXPECT_EQ(iterateList(Empty), std::vector<int64_t>());
  }
}

TEST(Differential, SetImplsMatchSetModel) {
  for (ImplKind Kind :
       {ImplKind::HashSet, ImplKind::ArraySet, ImplKind::LazySet,
        ImplKind::LinkedHashSet, ImplKind::SizeAdaptingSet}) {
    for (int Case = 0; Case < CasesPerImpl; ++Case) {
      uint64_t Seed = BaseSeed ^ (Gamma * (Case + 31));
      SCOPED_TRACE(traceLabel(implKindName(Kind), Seed));
      CollectionRuntime RT;
      runSetSequence(RT.newSetOf(Kind, RT.site("diff.set:1")), Seed, 300);
    }
  }
}

TEST(Differential, MapImplsMatchUnorderedMapModel) {
  for (ImplKind Kind : {ImplKind::HashMap, ImplKind::ArrayMap,
                        ImplKind::LazyMap, ImplKind::SizeAdaptingMap}) {
    for (int Case = 0; Case < CasesPerImpl; ++Case) {
      uint64_t Seed = BaseSeed ^ (Gamma * (Case + 41));
      SCOPED_TRACE(traceLabel(implKindName(Kind), Seed));
      CollectionRuntime RT;
      runMapSequence(RT.newMapOf(Kind, RT.site("diff.map:1")), Seed, 300);
    }
  }
}

TEST(Differential, SingletonMapConstrainedModel) {
  for (int Case = 0; Case < CasesPerImpl; ++Case) {
    uint64_t Seed = BaseSeed ^ (Gamma * (Case + 51));
    SCOPED_TRACE(traceLabel("SingletonMap", Seed));
    CollectionRuntime RT;
    runSingletonMapSequence(
        RT.newMapOf(ImplKind::SingletonMap, RT.site("diff.smap:1")), Seed,
        200);
  }
}

//===----------------------------------------------------------------------===//
// Differential across online replacement
//===----------------------------------------------------------------------===//

/// Rotates the backing implementation on every allocation — the
/// worst-case online replacement schedule.
class RotatingSelector : public OnlineSelector {
public:
  ImplKind chooseImpl(const ContextInfo *, AdtKind Adt, ImplKind Requested,
                      uint32_t &) override {
    switch (Adt) {
    case AdtKind::List: {
      static const ImplKind Kinds[] = {ImplKind::ArrayList,
                                       ImplKind::LinkedList,
                                       ImplKind::LazyArrayList};
      return Kinds[Tick++ % 3];
    }
    case AdtKind::Set: {
      static const ImplKind Kinds[] = {ImplKind::HashSet,
                                       ImplKind::ArraySet,
                                       ImplKind::LinkedHashSet};
      return Kinds[Tick++ % 3];
    }
    case AdtKind::Map: {
      static const ImplKind Kinds[] = {ImplKind::HashMap,
                                       ImplKind::ArrayMap,
                                       ImplKind::LazyMap};
      return Kinds[Tick++ % 3];
    }
    }
    return Requested;
  }

private:
  unsigned Tick = 0;
};

TEST(Differential, BehaviourIdenticalAcrossRotatingReplacement) {
  CollectionRuntime RT;
  RotatingSelector Selector;
  RT.setOnlineSelector(&Selector);
  FrameId ListSite = RT.site("diff.rotate.list:1");
  FrameId MapSite = RT.site("diff.rotate.map:1");

  std::set<ImplKind> ListBackings, MapBackings;
  for (int Case = 0; Case < 9; ++Case) {
    uint64_t Seed = BaseSeed ^ (Gamma * (Case + 61));
    SCOPED_TRACE(traceLabel("rotating", Seed));
    List L = RT.newArrayList(ListSite);
    ListBackings.insert(L.backing());
    runListSequence(std::move(L), Seed, 200, /*Ordered=*/true);
    Map M = RT.newHashMap(MapSite);
    MapBackings.insert(M.backing());
    runMapSequence(std::move(M), Seed, 200);
  }
  EXPECT_EQ(ListBackings.size(), 3u)
      << "selector must actually rotate the list backing";
  EXPECT_EQ(MapBackings.size(), 3u)
      << "selector must actually rotate the map backing";
}

TEST(Differential, BehaviourIdenticalAcrossOnlineAdaptorReplacement) {
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  CollectionRuntime RT;
  OnlineConfig Config;
  Config.WarmupDeaths = 8;
  OnlineAdaptor Adaptor(Engine, RT.profiler(), Config);
  RT.setOnlineSelector(&Adaptor);
  FrameId Site = RT.site("diff.online.map:1");

  // Small get-dominated maps: the adaptor redirects HashMap -> ArrayMap
  // after warm-up. Every instance, before and after the switch, must
  // behave identically against the model.
  std::set<ImplKind> Backings;
  for (int I = 0; I < 120; ++I) {
    uint64_t Seed = BaseSeed ^ (Gamma * (I + 71));
    SCOPED_TRACE(traceLabel("online-adaptor", Seed));
    Map M = RT.newHashMap(Site, 4);
    Backings.insert(M.backing());
    SplitMix64 Rng(Seed);
    std::unordered_map<int64_t, int64_t> Model;
    for (int E = 0; E < 3; ++E) {
      int64_t K = static_cast<int64_t>(Rng.nextBelow(6));
      bool New = Model.find(K) == Model.end();
      ASSERT_EQ(M.put(Value::ofInt(K), Value::ofInt(I)), New);
      Model[K] = I;
    }
    for (int E = 0; E < 8; ++E) {
      int64_t K = static_cast<int64_t>(Rng.nextBelow(6));
      Value Got = M.get(Value::ofInt(K));
      auto It = Model.find(K);
      ASSERT_EQ(Got.isNull(), It == Model.end());
      if (It != Model.end())
        ASSERT_EQ(Got.asInt(), It->second);
    }
    ASSERT_EQ(M.size(), Model.size());
    if (I % 16 == 15)
      RT.heap().collect(/*Forced=*/true);
  }
  EXPECT_GT(Adaptor.replacements(), 0u)
      << "the adaptor must have switched the backing at least once";
  EXPECT_GE(Backings.size(), 2u);
}

} // namespace
