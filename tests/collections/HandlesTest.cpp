//===--- HandlesTest.cpp - Wrapper op-counting unit tests -----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that every handle operation records the right counter in the
/// wrapper's per-instance record — the trace half of Table 1.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct HandlesTest : ::testing::Test {
  CollectionRuntime RT;
  FrameId Site = RT.site("test:1");

  const ObjectContextInfo &usageOf(const CollectionHandleBase &H) {
    return RT.heap().getAs<CollectionObject>(H.wrapperRef()).Usage;
  }

  uint32_t countOf(const CollectionHandleBase &H, OpKind Op) {
    return usageOf(H).Counts[opIndex(Op)];
  }
};

TEST_F(HandlesTest, ListOpsAreCounted) {
  List L = RT.newArrayList(Site);
  L.add(Value::ofInt(1));
  L.add(0, Value::ofInt(0));
  (void)L.get(0);
  (void)L.get(1);
  L.set(0, Value::ofInt(5));
  (void)L.contains(Value::ofInt(5));
  (void)L.size();
  (void)L.isEmpty();
  L.removeAt(0);
  L.remove(Value::ofInt(1));
  L.add(Value::ofInt(2));
  L.removeFirst();
  L.clear();

  EXPECT_EQ(countOf(L, OpKind::Add), 2u);
  EXPECT_EQ(countOf(L, OpKind::AddAtIndex), 1u);
  EXPECT_EQ(countOf(L, OpKind::GetAtIndex), 2u);
  EXPECT_EQ(countOf(L, OpKind::Set), 1u);
  EXPECT_EQ(countOf(L, OpKind::Contains), 1u);
  EXPECT_EQ(countOf(L, OpKind::Size), 1u);
  EXPECT_EQ(countOf(L, OpKind::IsEmpty), 1u);
  EXPECT_EQ(countOf(L, OpKind::RemoveAtIndex), 1u);
  EXPECT_EQ(countOf(L, OpKind::RemoveObject), 1u);
  EXPECT_EQ(countOf(L, OpKind::RemoveFirst), 1u);
  EXPECT_EQ(countOf(L, OpKind::Clear), 1u);
}

TEST_F(HandlesTest, MaxAndCurrentSizeTracked) {
  List L = RT.newArrayList(Site);
  for (int I = 0; I < 5; ++I)
    L.add(Value::ofInt(I));
  L.removeAt(0);
  L.removeAt(0);
  const ObjectContextInfo &Usage = usageOf(L);
  EXPECT_EQ(Usage.MaxSize, 5u);
  EXPECT_EQ(Usage.CurrentSize, 3u);
}

TEST_F(HandlesTest, EffectiveInitialCapacityRecorded) {
  List Default = RT.newArrayList(Site);
  EXPECT_EQ(usageOf(Default).InitialCapacity, 10u);
  List Sized = RT.newArrayList(Site, 64);
  EXPECT_EQ(usageOf(Sized).InitialCapacity, 64u);
  Map M = RT.newHashMap(Site);
  EXPECT_EQ(usageOf(M).InitialCapacity, 16u);
}

TEST_F(HandlesTest, AddAllCountsBothSides) {
  List Src = RT.newArrayList(Site);
  Src.add(Value::ofInt(1));
  List Dst = RT.newArrayList(Site);
  Dst.addAll(Src);
  EXPECT_EQ(countOf(Dst, OpKind::AddAll), 1u);
  EXPECT_EQ(countOf(Src, OpKind::CopiedInto), 1u);
  // The element transfer is internal, not counted as add ops on either.
  EXPECT_EQ(countOf(Dst, OpKind::Add), 0u);
}

TEST_F(HandlesTest, CopyConstructorCountsBothSides) {
  List Src = RT.newArrayList(Site);
  Src.add(Value::ofInt(1));
  List Copy = RT.newArrayListCopy(Site, Src);
  EXPECT_EQ(countOf(Copy, OpKind::CopiedFrom), 1u);
  EXPECT_EQ(countOf(Src, OpKind::CopiedInto), 1u);
  // CopiedFrom is a birth annotation: the copy's allOps stays clean
  // (checked before size(), which is itself a counted operation).
  EXPECT_EQ(usageOf(Copy).allOps(), 0u);
  EXPECT_EQ(Copy.size(), 1u);
}

TEST_F(HandlesTest, MapOpsAreCounted) {
  Map M = RT.newHashMap(Site);
  M.put(Value::ofInt(1), Value::ofInt(2));
  (void)M.get(Value::ofInt(1));
  (void)M.containsKey(Value::ofInt(1));
  (void)M.containsValue(Value::ofInt(2));
  M.remove(Value::ofInt(1));
  EXPECT_EQ(countOf(M, OpKind::Put), 1u);
  EXPECT_EQ(countOf(M, OpKind::Get), 1u);
  EXPECT_EQ(countOf(M, OpKind::ContainsKey), 1u);
  EXPECT_EQ(countOf(M, OpKind::ContainsValue), 1u);
  EXPECT_EQ(countOf(M, OpKind::RemoveKey), 1u);
}

TEST_F(HandlesTest, IteratorsCountAndDistinguishEmpty) {
  List L = RT.newArrayList(Site);
  { ValueIter It = L.iterate(); } // empty iteration
  L.add(Value::ofInt(1));
  { ValueIter It = L.iterate(); }
  EXPECT_EQ(countOf(L, OpKind::IterateEmpty), 1u);
  EXPECT_EQ(countOf(L, OpKind::Iterate), 1u);
}

TEST_F(HandlesTest, IteratorAllocatesAHeapObject) {
  // §5.4: iterator objects are real allocations.
  List L = RT.newArrayList(Site);
  uint64_t Before = RT.heap().totalAllocatedObjects();
  ValueIter It = L.iterate();
  EXPECT_EQ(RT.heap().totalAllocatedObjects(), Before + 1);
}

TEST_F(HandlesTest, SharedEmptyIteratorAvoidsAllocations) {
  // §5.4: returning a fixed empty iterator avoids the per-call object.
  RuntimeConfig Config;
  Config.ShareEmptyIterators = true;
  CollectionRuntime Shared(Config);
  FrameId S = Shared.site("t:1");
  List L = Shared.newArrayList(S);
  uint64_t Before = Shared.heap().totalAllocatedObjects();
  for (int I = 0; I < 10; ++I) {
    ValueIter It = L.iterate();
    Value V;
    EXPECT_FALSE(It.next(V));
  }
  // Only the one shared iterator object was ever allocated.
  EXPECT_EQ(Shared.heap().totalAllocatedObjects(), Before + 1);
  // Non-empty iterations still allocate per call.
  L.add(Value::ofInt(1));
  uint64_t Mid = Shared.heap().totalAllocatedObjects();
  { ValueIter It = L.iterate(); }
  { ValueIter It = L.iterate(); }
  EXPECT_EQ(Shared.heap().totalAllocatedObjects(), Mid + 2);
}

TEST_F(HandlesTest, UnprofiledAllocationsCountNothing) {
  RuntimeConfig Config;
  Config.Profiler.Enabled = false;
  CollectionRuntime Bare(Config);
  List L = Bare.newArrayList(Bare.site("t:1"));
  L.add(Value::ofInt(1));
  EXPECT_EQ(L.context(), nullptr);
  EXPECT_EQ(
      Bare.heap().getAs<CollectionObject>(L.wrapperRef()).Usage.allOps(),
      0u);
}

TEST_F(HandlesTest, HandleCopiesAliasOneCollection) {
  List A = RT.newArrayList(Site);
  List B = A;
  B.add(Value::ofInt(7));
  EXPECT_EQ(A.size(), 1u);
  EXPECT_TRUE(A.sameAs(B));
}

TEST_F(HandlesTest, CollectionsKeepElementsAliveAcrossGc) {
  List L = RT.newArrayList(Site);
  L.add(RT.allocData(2));
  const GcCycleRecord &Rec = RT.heap().collect(true);
  // wrapper + impl + array + data object all live.
  EXPECT_EQ(Rec.LiveObjects, 4u);
}

TEST_F(HandlesTest, DeadCollectionsFoldIntoTheirContext) {
  ContextInfo *Ctx;
  {
    List L = RT.newArrayList(Site);
    L.add(Value::ofInt(1));
    Ctx = L.context();
    ASSERT_NE(Ctx, nullptr);
  }
  RT.heap().collect(true);
  EXPECT_EQ(Ctx->foldedInstances(), 1u);
  EXPECT_DOUBLE_EQ(Ctx->opStat(OpKind::Add).mean(), 1.0);
  EXPECT_DOUBLE_EQ(Ctx->maxSizeStat().mean(), 1.0);
}

TEST_F(HandlesTest, HarvestFoldsLiveCollectionsOnce) {
  List L = RT.newArrayList(Site);
  L.add(Value::ofInt(1));
  ContextInfo *Ctx = L.context();
  RT.harvestLiveStatistics();
  EXPECT_EQ(Ctx->foldedInstances(), 1u);
  RT.harvestLiveStatistics(); // idempotent
  EXPECT_EQ(Ctx->foldedInstances(), 1u);
}

} // namespace
