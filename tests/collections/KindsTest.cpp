//===--- KindsTest.cpp - Kind vocabulary unit tests ------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "collections/Kinds.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(Kinds, NamesRoundTrip) {
  for (unsigned I = 0; I < NumImplKinds; ++I) {
    ImplKind Kind = static_cast<ImplKind>(I);
    std::optional<ImplKind> Parsed = parseImplKind(implKindName(Kind));
    ASSERT_TRUE(Parsed.has_value()) << implKindName(Kind);
    EXPECT_EQ(*Parsed, Kind);
  }
  EXPECT_FALSE(parseImplKind("NoSuchImpl").has_value());
}

TEST(Kinds, AdtClassification) {
  EXPECT_EQ(adtOfImpl(ImplKind::ArrayList), AdtKind::List);
  EXPECT_EQ(adtOfImpl(ImplKind::HashedList), AdtKind::List);
  EXPECT_EQ(adtOfImpl(ImplKind::LinkedHashSet), AdtKind::Set);
  EXPECT_EQ(adtOfImpl(ImplKind::SizeAdaptingMap), AdtKind::Map);
  EXPECT_STREQ(adtKindName(AdtKind::List), "List");
  EXPECT_STREQ(adtKindName(AdtKind::Map), "Map");
}

TEST(Kinds, DefaultImplForSourceTypes) {
  EXPECT_EQ(defaultImplForSourceType("ArrayList"), ImplKind::ArrayList);
  EXPECT_EQ(defaultImplForSourceType("LinkedList"), ImplKind::LinkedList);
  EXPECT_EQ(defaultImplForSourceType("HashMap"), ImplKind::HashMap);
  EXPECT_EQ(defaultImplForSourceType("HashSet"), ImplKind::HashSet);
  // Explicit implementation names resolve to themselves.
  EXPECT_EQ(defaultImplForSourceType("ArrayMap"), ImplKind::ArrayMap);
  EXPECT_FALSE(defaultImplForSourceType("Nonsense").has_value());
}

TEST(Kinds, DefaultCapacities) {
  EXPECT_EQ(defaultCapacityOf(ImplKind::ArrayList), 10u);
  EXPECT_EQ(defaultCapacityOf(ImplKind::HashMap), 16u);
  EXPECT_EQ(defaultCapacityOf(ImplKind::ArrayMap), 4u);
  EXPECT_EQ(defaultCapacityOf(ImplKind::SingletonList), 1u);
  EXPECT_EQ(defaultCapacityOf(ImplKind::LinkedList), 0u);
}

TEST(Kinds, AdaptImplToAdt) {
  // Native implementations pass through.
  EXPECT_EQ(adaptImplToAdt(ImplKind::ArrayMap, AdtKind::Map),
            ImplKind::ArrayMap);
  // The paper's ArrayList -> LinkedHashSet suggestion becomes the
  // list-shaped adapter.
  EXPECT_EQ(adaptImplToAdt(ImplKind::LinkedHashSet, AdtKind::List),
            ImplKind::HashedList);
  EXPECT_EQ(adaptImplToAdt(ImplKind::HashSet, AdtKind::List),
            ImplKind::HashedList);
  // A map impl can never back a list.
  EXPECT_FALSE(adaptImplToAdt(ImplKind::ArrayMap, AdtKind::List)
                   .has_value());
}

} // namespace
