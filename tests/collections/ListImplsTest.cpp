//===--- ListImplsTest.cpp - List implementation unit tests ---------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "collections/ArrayListImpl.h"
#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"
#include "collections/LinkedListImpl.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct ListImplsTest : ::testing::Test {
  CollectionRuntime RT;
  FrameId Site = RT.site("test:1");

  List make(ImplKind Kind, uint32_t Cap = 0) {
    return RT.newListOf(Kind, Site, Cap);
  }

  ArrayListImpl &arrayImpl(const List &L) {
    return RT.heap().getAs<ArrayListImpl>(
        RT.heap().getAs<CollectionObject>(L.wrapperRef()).Impl);
  }
};

TEST_F(ListImplsTest, ArrayListBasicSequence) {
  List L = make(ImplKind::ArrayList);
  EXPECT_TRUE(L.isEmpty());
  L.add(Value::ofInt(1));
  L.add(Value::ofInt(2));
  L.add(Value::ofInt(3));
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.get(0).asInt(), 1);
  EXPECT_EQ(L.get(2).asInt(), 3);
  EXPECT_TRUE(L.contains(Value::ofInt(2)));
  EXPECT_FALSE(L.contains(Value::ofInt(9)));
}

TEST_F(ListImplsTest, ArrayListPositionalOps) {
  List L = make(ImplKind::ArrayList);
  for (int I = 0; I < 4; ++I)
    L.add(Value::ofInt(I)); // 0 1 2 3
  L.add(1, Value::ofInt(10)); // 0 10 1 2 3
  EXPECT_EQ(L.get(1).asInt(), 10);
  EXPECT_EQ(L.get(4).asInt(), 3);
  Value Old = L.set(0, Value::ofInt(-1));
  EXPECT_EQ(Old.asInt(), 0);
  EXPECT_EQ(L.removeAt(1).asInt(), 10); // -1 1 2 3
  EXPECT_EQ(L.size(), 4u);
  EXPECT_EQ(L.get(1).asInt(), 1);
  EXPECT_TRUE(L.remove(Value::ofInt(2))); // -1 1 3
  EXPECT_FALSE(L.remove(Value::ofInt(99)));
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.removeFirst().asInt(), -1);
}

TEST_F(ListImplsTest, ArrayListGrowthFollowsThePaperPolicy) {
  List L = make(ImplKind::ArrayList, 100);
  EXPECT_EQ(arrayImpl(L).capacity(), 100u);
  for (int I = 0; I < 100; ++I)
    L.add(Value::ofInt(I));
  EXPECT_EQ(arrayImpl(L).capacity(), 100u);
  L.add(Value::ofInt(100)); // §2.2: 100 -> 151
  EXPECT_EQ(arrayImpl(L).capacity(), 151u);
  EXPECT_EQ(L.size(), 101u);
}

TEST_F(ListImplsTest, ArrayListDefaultCapacityIsEager10) {
  List L = make(ImplKind::ArrayList);
  EXPECT_EQ(arrayImpl(L).capacity(), 10u);
}

TEST_F(ListImplsTest, LazyArrayListAllocatesOnFirstUpdate) {
  List L = make(ImplKind::LazyArrayList);
  EXPECT_EQ(arrayImpl(L).capacity(), 0u);
  L.add(Value::ofInt(1));
  EXPECT_EQ(arrayImpl(L).capacity(), 10u);
  EXPECT_EQ(L.get(0).asInt(), 1);
}

TEST_F(ListImplsTest, ClearKeepsCapacityDropsElements) {
  List L = make(ImplKind::ArrayList);
  for (int I = 0; I < 5; ++I)
    L.add(Value::ofInt(I));
  L.clear();
  EXPECT_EQ(L.size(), 0u);
  EXPECT_EQ(arrayImpl(L).capacity(), 10u);
  L.add(Value::ofInt(7));
  EXPECT_EQ(L.get(0).asInt(), 7);
}

TEST_F(ListImplsTest, ClearedElementsBecomeCollectable) {
  List L = make(ImplKind::ArrayList);
  L.add(RT.allocData(1));
  uint64_t LiveBefore = RT.heap().collect(true).LiveObjects;
  L.clear();
  uint64_t LiveAfter = RT.heap().collect(true).LiveObjects;
  EXPECT_EQ(LiveAfter, LiveBefore - 1);
}

TEST_F(ListImplsTest, LinkedListBasicAndRemoveFirst) {
  List L = make(ImplKind::LinkedList);
  L.add(Value::ofInt(1));
  L.add(Value::ofInt(2));
  L.add(Value::ofInt(3));
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.get(1).asInt(), 2);
  EXPECT_EQ(L.removeFirst().asInt(), 1);
  EXPECT_EQ(L.removeFirst().asInt(), 2);
  EXPECT_EQ(L.size(), 1u);
}

TEST_F(ListImplsTest, LinkedListPositionalInsert) {
  List L = make(ImplKind::LinkedList);
  L.add(Value::ofInt(1));
  L.add(Value::ofInt(3));
  L.add(1, Value::ofInt(2));
  EXPECT_EQ(L.get(0).asInt(), 1);
  EXPECT_EQ(L.get(1).asInt(), 2);
  EXPECT_EQ(L.get(2).asInt(), 3);
  EXPECT_EQ(L.removeAt(1).asInt(), 2);
  EXPECT_EQ(L.get(1).asInt(), 3);
}

TEST_F(ListImplsTest, LinkedListAllocatesSentinelEagerly) {
  // The bloat pathology: an empty LinkedList still owns a 24-byte entry.
  List L = make(ImplKind::LinkedList);
  CollectionObject &W =
      RT.heap().getAs<CollectionObject>(L.wrapperRef());
  const SemanticMap &Map = RT.heap().types().get(W.typeId());
  CollectionSizes S = Map.ComputeSizes(W, RT.heap());
  EXPECT_GE(S.Live, W.shallowBytes() + 16 + 24);
}

TEST_F(ListImplsTest, SingletonListHoldsExactlyOne) {
  List L = make(ImplKind::SingletonList);
  EXPECT_TRUE(L.isEmpty());
  L.add(Value::ofInt(42));
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L.get(0).asInt(), 42);
  EXPECT_TRUE(L.contains(Value::ofInt(42)));
  EXPECT_EQ(L.removeAt(0).asInt(), 42);
  EXPECT_TRUE(L.isEmpty());
  L.add(Value::ofInt(7)); // reusable after removal
  EXPECT_EQ(L.get(0).asInt(), 7);
}

TEST_F(ListImplsTest, EmptyListIsEmptyForever) {
  List L = make(ImplKind::EmptyList);
  EXPECT_TRUE(L.isEmpty());
  EXPECT_FALSE(L.contains(Value::ofInt(1)));
  EXPECT_FALSE(L.remove(Value::ofInt(1)));
  ValueIter It = L.iterate();
  Value V;
  EXPECT_FALSE(It.next(V));
}

TEST_F(ListImplsTest, EmptyListImplIsShared) {
  List A = make(ImplKind::EmptyList);
  List B = make(ImplKind::EmptyList);
  ObjectRef ImplA = RT.heap().getAs<CollectionObject>(A.wrapperRef()).Impl;
  ObjectRef ImplB = RT.heap().getAs<CollectionObject>(B.wrapperRef()).Impl;
  EXPECT_EQ(ImplA, ImplB) << "EmptyList must be a shared flyweight";
}

TEST_F(ListImplsTest, IntArrayListStoresInts) {
  List L = make(ImplKind::IntArrayList);
  for (int I = 0; I < 30; ++I)
    L.add(Value::ofInt(I * 3));
  EXPECT_EQ(L.size(), 30u);
  EXPECT_EQ(L.get(29).asInt(), 87);
  EXPECT_TRUE(L.contains(Value::ofInt(0)));
  EXPECT_FALSE(L.contains(Value::ofInt(1)));
  EXPECT_EQ(L.removeAt(0).asInt(), 0);
  EXPECT_EQ(L.get(0).asInt(), 3);
}

TEST_F(ListImplsTest, HashedListKeepsInsertionOrderAndFastContains) {
  List L = make(ImplKind::HashedList);
  for (int I = 0; I < 100; ++I)
    L.add(Value::ofInt(I));
  EXPECT_EQ(L.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(L.contains(Value::ofInt(I)));
  // Insertion order is observable positionally and via iteration.
  EXPECT_EQ(L.get(0).asInt(), 0);
  EXPECT_EQ(L.get(99).asInt(), 99);
  ValueIter It = L.iterate();
  Value V;
  int Expected = 0;
  while (It.next(V))
    EXPECT_EQ(V.asInt(), Expected++);
  EXPECT_EQ(Expected, 100);
}

TEST_F(ListImplsTest, HashedListDropsDuplicates) {
  // Set semantics: the rules only install HashedList where the profile
  // shows duplicates don't matter.
  List L = make(ImplKind::HashedList);
  L.add(Value::ofInt(1));
  L.add(Value::ofInt(1));
  EXPECT_EQ(L.size(), 1u);
}

TEST_F(ListImplsTest, AddAllAppendsAndCountsCopyInteraction) {
  List Src = make(ImplKind::ArrayList);
  Src.add(Value::ofInt(1));
  Src.add(Value::ofInt(2));
  List Dst = make(ImplKind::LinkedList);
  Dst.add(Value::ofInt(0));
  Dst.addAll(Src);
  EXPECT_EQ(Dst.size(), 3u);
  EXPECT_EQ(Dst.get(1).asInt(), 1);
  EXPECT_EQ(Dst.get(2).asInt(), 2);
}

TEST_F(ListImplsTest, IterationVisitsInOrder) {
  for (ImplKind Kind : {ImplKind::ArrayList, ImplKind::LinkedList,
                        ImplKind::LazyArrayList, ImplKind::IntArrayList}) {
    List L = make(Kind);
    for (int I = 0; I < 10; ++I)
      L.add(Value::ofInt(I));
    ValueIter It = L.iterate();
    Value V;
    int Expected = 0;
    while (It.next(V))
      EXPECT_EQ(V.asInt(), Expected++) << implKindName(Kind);
    EXPECT_EQ(Expected, 10) << implKindName(Kind);
  }
}

} // namespace
