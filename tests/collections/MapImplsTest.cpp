//===--- MapImplsTest.cpp - Map implementation unit tests ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"
#include "collections/HashMapImpl.h"
#include "collections/OtherMapImpls.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct MapImplsTest : ::testing::Test {
  CollectionRuntime RT;
  FrameId Site = RT.site("test:1");

  Map make(ImplKind Kind, uint32_t Cap = 0) {
    return RT.newMapOf(Kind, Site, Cap);
  }

  template <typename T> T &implOf(const Map &M) {
    return RT.heap().getAs<T>(
        RT.heap().getAs<CollectionObject>(M.wrapperRef()).Impl);
  }
};

TEST_F(MapImplsTest, HashMapPutGetRemove) {
  Map M = make(ImplKind::HashMap);
  EXPECT_TRUE(M.put(Value::ofInt(1), Value::ofInt(10)));
  EXPECT_TRUE(M.put(Value::ofInt(2), Value::ofInt(20)));
  EXPECT_FALSE(M.put(Value::ofInt(1), Value::ofInt(11))); // overwrite
  EXPECT_EQ(M.size(), 2u);
  EXPECT_EQ(M.get(Value::ofInt(1)).asInt(), 11);
  EXPECT_EQ(M.get(Value::ofInt(2)).asInt(), 20);
  EXPECT_TRUE(M.get(Value::ofInt(3)).isNull());
  EXPECT_TRUE(M.containsKey(Value::ofInt(1)));
  EXPECT_FALSE(M.containsKey(Value::ofInt(3)));
  EXPECT_TRUE(M.containsValue(Value::ofInt(20)));
  EXPECT_FALSE(M.containsValue(Value::ofInt(10)));
  EXPECT_TRUE(M.remove(Value::ofInt(1)));
  EXPECT_FALSE(M.remove(Value::ofInt(1)));
  EXPECT_EQ(M.size(), 1u);
}

TEST_F(MapImplsTest, HashMapResizesAtLoadFactor) {
  Map M = make(ImplKind::HashMap); // capacity 16, threshold 12
  for (int I = 0; I < 12; ++I)
    M.put(Value::ofInt(I), Value::ofInt(I));
  EXPECT_EQ(implOf<HashMapImpl>(M).capacity(), 16u);
  M.put(Value::ofInt(12), Value::ofInt(12));
  EXPECT_EQ(implOf<HashMapImpl>(M).capacity(), 32u);
  // Content preserved across the rehash.
  for (int I = 0; I <= 12; ++I)
    EXPECT_EQ(M.get(Value::ofInt(I)).asInt(), I);
}

TEST_F(MapImplsTest, HashMapManyEntriesAndChains) {
  Map M = make(ImplKind::HashMap);
  for (int I = 0; I < 1000; ++I)
    M.put(Value::ofInt(I * 7), Value::ofInt(I));
  EXPECT_EQ(M.size(), 1000u);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(M.get(Value::ofInt(I * 7)).asInt(), I);
  for (int I = 0; I < 1000; I += 2)
    EXPECT_TRUE(M.remove(Value::ofInt(I * 7)));
  EXPECT_EQ(M.size(), 500u);
  for (int I = 1; I < 1000; I += 2)
    EXPECT_EQ(M.get(Value::ofInt(I * 7)).asInt(), I);
}

TEST_F(MapImplsTest, LazyMapDefersTheTable) {
  Map M = make(ImplKind::LazyMap);
  EXPECT_EQ(implOf<HashMapImpl>(M).capacity(), 0u);
  EXPECT_TRUE(M.get(Value::ofInt(1)).isNull());
  EXPECT_FALSE(M.containsKey(Value::ofInt(1)));
  M.put(Value::ofInt(1), Value::ofInt(2));
  EXPECT_EQ(implOf<HashMapImpl>(M).capacity(), 16u);
  EXPECT_EQ(M.get(Value::ofInt(1)).asInt(), 2);
}

TEST_F(MapImplsTest, ArrayMapBehavesLikeAMap) {
  Map M = make(ImplKind::ArrayMap);
  for (int I = 0; I < 20; ++I)
    EXPECT_TRUE(M.put(Value::ofInt(I), Value::ofInt(100 + I)));
  EXPECT_FALSE(M.put(Value::ofInt(5), Value::ofInt(500)));
  EXPECT_EQ(M.size(), 20u);
  EXPECT_EQ(M.get(Value::ofInt(5)).asInt(), 500);
  EXPECT_TRUE(M.remove(Value::ofInt(0)));
  EXPECT_EQ(M.size(), 19u);
  EXPECT_TRUE(M.get(Value::ofInt(0)).isNull());
  EXPECT_TRUE(M.containsValue(Value::ofInt(119)));
}

TEST_F(MapImplsTest, SingletonMapHoldsOneBinding) {
  Map M = make(ImplKind::SingletonMap);
  EXPECT_TRUE(M.put(Value::ofInt(1), Value::ofInt(10)));
  EXPECT_FALSE(M.put(Value::ofInt(1), Value::ofInt(11)));
  EXPECT_EQ(M.get(Value::ofInt(1)).asInt(), 11);
  EXPECT_TRUE(M.containsValue(Value::ofInt(11)));
  EXPECT_TRUE(M.remove(Value::ofInt(1)));
  EXPECT_TRUE(M.isEmpty());
  EXPECT_TRUE(M.put(Value::ofInt(2), Value::ofInt(20)));
}

TEST_F(MapImplsTest, SizeAdaptingMapConvertsAtThreshold) {
  Map M = make(ImplKind::SizeAdaptingMap); // threshold 16
  auto &Impl = implOf<SizeAdaptingMapImpl>(M);
  for (int I = 0; I < 16; ++I)
    M.put(Value::ofInt(I), Value::ofInt(I));
  EXPECT_FALSE(Impl.isHashed());
  M.put(Value::ofInt(16), Value::ofInt(16));
  EXPECT_TRUE(Impl.isHashed());
  for (int I = 0; I <= 16; ++I)
    EXPECT_EQ(M.get(Value::ofInt(I)).asInt(), I);
}

TEST_F(MapImplsTest, SizeAdaptingMapCustomThreshold) {
  // §2.3: the conversion size is a tunable (13 vs 16 mattered for TVLA).
  Map M = make(ImplKind::SizeAdaptingMap, 13);
  auto &Impl = implOf<SizeAdaptingMapImpl>(M);
  EXPECT_EQ(Impl.threshold(), 13u);
  for (int I = 0; I < 14; ++I)
    M.put(Value::ofInt(I), Value::ofInt(I));
  EXPECT_TRUE(Impl.isHashed());
}

TEST_F(MapImplsTest, PutAllCopiesEntries) {
  Map Src = make(ImplKind::HashMap);
  Src.put(Value::ofInt(1), Value::ofInt(10));
  Src.put(Value::ofInt(2), Value::ofInt(20));
  Map Dst = make(ImplKind::ArrayMap);
  Dst.put(Value::ofInt(3), Value::ofInt(30));
  Dst.putAll(Src);
  EXPECT_EQ(Dst.size(), 3u);
  EXPECT_EQ(Dst.get(Value::ofInt(1)).asInt(), 10);
  EXPECT_EQ(Dst.get(Value::ofInt(3)).asInt(), 30);
}

TEST_F(MapImplsTest, EntryIterationVisitsEveryBindingOnce) {
  for (ImplKind Kind : {ImplKind::HashMap, ImplKind::ArrayMap,
                        ImplKind::SizeAdaptingMap}) {
    Map M = make(Kind);
    for (int I = 0; I < 40; ++I)
      M.put(Value::ofInt(I), Value::ofInt(I * 2));
    EntryIter It = M.iterate();
    Value K, V;
    std::vector<bool> Seen(40, false);
    unsigned Count = 0;
    while (It.next(K, V)) {
      ASSERT_EQ(V.asInt(), K.asInt() * 2) << implKindName(Kind);
      ASSERT_FALSE(Seen[static_cast<size_t>(K.asInt())]);
      Seen[static_cast<size_t>(K.asInt())] = true;
      ++Count;
    }
    EXPECT_EQ(Count, 40u) << implKindName(Kind);
  }
}

TEST_F(MapImplsTest, ClearEmptiesAllImpls) {
  for (ImplKind Kind : {ImplKind::HashMap, ImplKind::ArrayMap,
                        ImplKind::LazyMap, ImplKind::SingletonMap,
                        ImplKind::SizeAdaptingMap}) {
    Map M = make(Kind);
    M.put(Value::ofInt(1), Value::ofInt(2));
    M.clear();
    EXPECT_EQ(M.size(), 0u) << implKindName(Kind);
    EXPECT_TRUE(M.get(Value::ofInt(1)).isNull()) << implKindName(Kind);
  }
}

TEST_F(MapImplsTest, RefKeysAndValuesStayReachable) {
  Map M = make(ImplKind::HashMap);
  Value K = RT.allocData(0);
  Value V = RT.allocData(0);
  M.put(K, V);
  RT.heap().collect(true);
  EXPECT_EQ(M.get(K), V);
}

} // namespace
