//===--- PropertyTest.cpp - Behavioural equivalence property tests --------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's implementation requirement (§1): every interchangeable
/// implementation must preserve the ADT's logical behaviour. These
/// parameterized property tests drive each implementation with randomized
/// operation sequences and check it against an obviously-correct reference
/// model, with forced GC cycles interleaved to flush out rooting bugs.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

using namespace chameleon;

namespace {

std::string kindName(const ::testing::TestParamInfo<ImplKind> &Info) {
  return implKindName(Info.param);
}

//===----------------------------------------------------------------------===//
// Lists vs std::vector
//===----------------------------------------------------------------------===//

class ListProperty : public ::testing::TestWithParam<ImplKind> {};

TEST_P(ListProperty, MatchesVectorModelUnderRandomOps) {
  CollectionRuntime RT;
  FrameId Site = RT.site("prop:1");
  List L = RT.newListOf(GetParam(), Site);
  std::vector<int64_t> Model;
  SplitMix64 Rng(0xC0FFEE ^ static_cast<uint64_t>(GetParam()));

  for (int Step = 0; Step < 3000; ++Step) {
    switch (Rng.nextBelow(10)) {
    case 0:
    case 1:
    case 2: { // append
      int64_t X = static_cast<int64_t>(Rng.nextBelow(50));
      L.add(Value::ofInt(X));
      Model.push_back(X);
      break;
    }
    case 3: { // positional insert
      int64_t X = static_cast<int64_t>(Rng.nextBelow(50));
      uint32_t At = static_cast<uint32_t>(
          Rng.nextBelow(Model.size() + 1));
      L.add(At, Value::ofInt(X));
      Model.insert(Model.begin() + At, X);
      break;
    }
    case 4: { // positional read
      if (Model.empty())
        break;
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size()));
      ASSERT_EQ(L.get(At).asInt(), Model[At]);
      break;
    }
    case 5: { // positional update
      if (Model.empty())
        break;
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size()));
      int64_t X = static_cast<int64_t>(Rng.nextBelow(50));
      ASSERT_EQ(L.set(At, Value::ofInt(X)).asInt(), Model[At]);
      Model[At] = X;
      break;
    }
    case 6: { // positional removal
      if (Model.empty())
        break;
      uint32_t At = static_cast<uint32_t>(Rng.nextBelow(Model.size()));
      ASSERT_EQ(L.removeAt(At).asInt(), Model[At]);
      Model.erase(Model.begin() + At);
      break;
    }
    case 7: { // removal by value
      int64_t X = static_cast<int64_t>(Rng.nextBelow(50));
      bool Expected = false;
      for (size_t I = 0; I < Model.size(); ++I) {
        if (Model[I] == X) {
          Model.erase(Model.begin() + static_cast<long>(I));
          Expected = true;
          break;
        }
      }
      ASSERT_EQ(L.remove(Value::ofInt(X)), Expected);
      break;
    }
    case 8: { // membership
      int64_t X = static_cast<int64_t>(Rng.nextBelow(50));
      bool Expected = false;
      for (int64_t Y : Model)
        Expected |= Y == X;
      ASSERT_EQ(L.contains(Value::ofInt(X)), Expected);
      break;
    }
    case 9: { // occasional GC + full iteration check
      if (Rng.nextBool(0.2))
        RT.heap().collect(/*Forced=*/true);
      ASSERT_EQ(L.size(), Model.size());
      ValueIter It = L.iterate();
      Value V;
      size_t I = 0;
      while (It.next(V))
        ASSERT_EQ(V.asInt(), Model[I++]);
      ASSERT_EQ(I, Model.size());
      break;
    }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllListImpls, ListProperty,
                         ::testing::Values(ImplKind::ArrayList,
                                           ImplKind::LinkedList,
                                           ImplKind::LazyArrayList,
                                           ImplKind::IntArrayList),
                         kindName);

//===----------------------------------------------------------------------===//
// Sets vs std::set
//===----------------------------------------------------------------------===//

class SetProperty : public ::testing::TestWithParam<ImplKind> {};

TEST_P(SetProperty, MatchesSetModelUnderRandomOps) {
  CollectionRuntime RT;
  FrameId Site = RT.site("prop:1");
  Set S = RT.newSetOf(GetParam(), Site);
  std::set<int64_t> Model;
  SplitMix64 Rng(0xBEEF ^ static_cast<uint64_t>(GetParam()));

  for (int Step = 0; Step < 4000; ++Step) {
    int64_t X = static_cast<int64_t>(Rng.nextBelow(64));
    switch (Rng.nextBelow(6)) {
    case 0:
    case 1:
    case 2:
      ASSERT_EQ(S.add(Value::ofInt(X)), Model.insert(X).second);
      break;
    case 3:
      ASSERT_EQ(S.remove(Value::ofInt(X)), Model.erase(X) == 1);
      break;
    case 4:
      ASSERT_EQ(S.contains(Value::ofInt(X)), Model.count(X) == 1);
      break;
    case 5: {
      if (Rng.nextBool(0.2))
        RT.heap().collect(true);
      ASSERT_EQ(S.size(), Model.size());
      ValueIter It = S.iterate();
      Value V;
      std::set<int64_t> Seen;
      while (It.next(V))
        ASSERT_TRUE(Seen.insert(V.asInt()).second)
            << "duplicate during iteration";
      ASSERT_EQ(Seen, Model);
      break;
    }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSetImpls, SetProperty,
                         ::testing::Values(ImplKind::HashSet,
                                           ImplKind::ArraySet,
                                           ImplKind::LazySet,
                                           ImplKind::LinkedHashSet,
                                           ImplKind::SizeAdaptingSet),
                         kindName);

//===----------------------------------------------------------------------===//
// Maps vs std::map
//===----------------------------------------------------------------------===//

class MapProperty : public ::testing::TestWithParam<ImplKind> {};

TEST_P(MapProperty, MatchesMapModelUnderRandomOps) {
  CollectionRuntime RT;
  FrameId Site = RT.site("prop:1");
  Map M = RT.newMapOf(GetParam(), Site);
  std::map<int64_t, int64_t> Model;
  SplitMix64 Rng(0xD00D ^ static_cast<uint64_t>(GetParam()));

  for (int Step = 0; Step < 4000; ++Step) {
    int64_t K = static_cast<int64_t>(Rng.nextBelow(64));
    int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
    switch (Rng.nextBelow(7)) {
    case 0:
    case 1:
    case 2: {
      bool New = Model.find(K) == Model.end();
      ASSERT_EQ(M.put(Value::ofInt(K), Value::ofInt(V)), New);
      Model[K] = V;
      break;
    }
    case 3: {
      auto It = Model.find(K);
      Value Got = M.get(Value::ofInt(K));
      if (It == Model.end())
        ASSERT_TRUE(Got.isNull());
      else
        ASSERT_EQ(Got.asInt(), It->second);
      break;
    }
    case 4:
      ASSERT_EQ(M.remove(Value::ofInt(K)), Model.erase(K) == 1);
      break;
    case 5:
      ASSERT_EQ(M.containsKey(Value::ofInt(K)),
                Model.count(K) == 1);
      break;
    case 6: {
      if (Rng.nextBool(0.2))
        RT.heap().collect(true);
      ASSERT_EQ(M.size(), Model.size());
      EntryIter It = M.iterate();
      Value Key, Val;
      std::map<int64_t, int64_t> Seen;
      while (It.next(Key, Val))
        ASSERT_TRUE(
            Seen.emplace(Key.asInt(), Val.asInt()).second);
      ASSERT_EQ(Seen, Model);
      break;
    }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMapImpls, MapProperty,
                         ::testing::Values(ImplKind::HashMap,
                                           ImplKind::ArrayMap,
                                           ImplKind::LazyMap,
                                           ImplKind::SizeAdaptingMap),
                         kindName);

//===----------------------------------------------------------------------===//
// Heap-limit stress: collections stay correct under allocation pressure
//===----------------------------------------------------------------------===//

class PressureProperty : public ::testing::TestWithParam<ImplKind> {};

TEST_P(PressureProperty, MapSurvivesPressureCollections) {
  RuntimeConfig Config;
  Config.HeapLimitBytes = 64 * 1024;
  CollectionRuntime RT(Config);
  RT.heap().setMinFreeFraction(0.0);
  FrameId Site = RT.site("prop:1");
  FrameId TmpSite = RT.site("prop:tmp");
  Map M = RT.newMapOf(GetParam(), Site);
  SplitMix64 Rng(99);

  for (int I = 0; I < 400; ++I) {
    M.put(Value::ofInt(I % 50), Value::ofInt(I));
    // Garbage to force pressure collections mid-operation.
    List Tmp = RT.newListOf(ImplKind::ArrayList, TmpSite, 32);
    Tmp.add(Value::ofInt(I));
  }
  ASSERT_FALSE(RT.heap().outOfMemory());
  EXPECT_EQ(M.size(), 50u);
  for (int K = 0; K < 50; ++K)
    EXPECT_FALSE(M.get(Value::ofInt(K)).isNull());
}

INSTANTIATE_TEST_SUITE_P(AllMapImpls, PressureProperty,
                         ::testing::Values(ImplKind::HashMap,
                                           ImplKind::ArrayMap,
                                           ImplKind::LazyMap,
                                           ImplKind::SizeAdaptingMap),
                         kindName);

} // namespace
