//===--- RuntimeFactoryTest.cpp - Factory selection unit tests ------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the allocation factory: source-level defaults, replacement-plan
/// application (the automated fix step of §5.2), online selection
/// (§3.3.2), and handle re-adoption.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct RuntimeFactoryTest : ::testing::Test {
  CollectionRuntime RT;
  FrameId Site = RT.site("Factory.make:1");
};

TEST_F(RuntimeFactoryTest, SourceLevelDefaults) {
  EXPECT_EQ(RT.newArrayList(Site).backing(), ImplKind::ArrayList);
  EXPECT_EQ(RT.newLinkedList(Site).backing(), ImplKind::LinkedList);
  EXPECT_EQ(RT.newHashSet(Site).backing(), ImplKind::HashSet);
  EXPECT_EQ(RT.newHashMap(Site).backing(), ImplKind::HashMap);
  EXPECT_EQ(RT.allocationsWithImpl(ImplKind::ArrayList), 1u);
  EXPECT_EQ(RT.allocationsWithImpl(ImplKind::HashMap), 1u);
}

TEST_F(RuntimeFactoryTest, ExplicitImplRequests) {
  EXPECT_EQ(RT.newListOf(ImplKind::SingletonList, Site).backing(),
            ImplKind::SingletonList);
  EXPECT_EQ(RT.newSetOf(ImplKind::ArraySet, Site).backing(),
            ImplKind::ArraySet);
  EXPECT_EQ(RT.newMapOf(ImplKind::SizeAdaptingMap, Site).backing(),
            ImplKind::SizeAdaptingMap);
}

TEST_F(RuntimeFactoryTest, PlanRedirectsMatchingContexts) {
  // Discover the context label the factory will see.
  Map Probe = RT.newHashMap(Site);
  ASSERT_NE(Probe.context(), nullptr);
  std::string Label = RT.profiler().contextLabel(*Probe.context());

  PlanDecision Decision;
  Decision.Impl = ImplKind::ArrayMap;
  Decision.Capacity = 3;
  RT.plan().add(Label, Decision);

  Map Redirected = RT.newHashMap(Site);
  EXPECT_EQ(Redirected.backing(), ImplKind::ArrayMap);
  EXPECT_EQ(RT.heap()
                .getAs<CollectionObject>(Redirected.wrapperRef())
                .Usage.InitialCapacity,
            3u);
  // The wrapper's source-level identity is unchanged — the program still
  // "sees" a HashMap (the §4.1 indirection argument).
  EXPECT_EQ(Redirected.context()->typeName(), "HashMap");
}

TEST_F(RuntimeFactoryTest, PlanDoesNotTouchOtherContexts) {
  Map Probe = RT.newHashMap(Site);
  PlanDecision Decision;
  Decision.Impl = ImplKind::ArrayMap;
  RT.plan().add(RT.profiler().contextLabel(*Probe.context()), Decision);

  FrameId Other = RT.site("Other.make:2");
  EXPECT_EQ(RT.newHashMap(Other).backing(), ImplKind::HashMap);
}

TEST_F(RuntimeFactoryTest, PlanCapacityOnlyDecision) {
  List Probe = RT.newArrayList(Site);
  PlanDecision Decision;
  Decision.Capacity = 2;
  RT.plan().add(RT.profiler().contextLabel(*Probe.context()), Decision);

  List Tuned = RT.newArrayList(Site);
  EXPECT_EQ(Tuned.backing(), ImplKind::ArrayList);
  EXPECT_EQ(RT.heap()
                .getAs<CollectionObject>(Tuned.wrapperRef())
                .Usage.InitialCapacity,
            2u);
}

TEST_F(RuntimeFactoryTest, PlanEditsMidRunAreObserved) {
  // The factory memoises plan lookups per context; edits must invalidate.
  Map Probe = RT.newHashMap(Site);
  std::string Label = RT.profiler().contextLabel(*Probe.context());

  EXPECT_EQ(RT.newHashMap(Site).backing(), ImplKind::HashMap);

  PlanDecision Decision;
  Decision.Impl = ImplKind::ArrayMap;
  RT.plan().add(Label, Decision);
  EXPECT_EQ(RT.newHashMap(Site).backing(), ImplKind::ArrayMap);

  RT.plan().clear();
  EXPECT_EQ(RT.newHashMap(Site).backing(), ImplKind::HashMap);

  Decision.Impl = ImplKind::LazyMap;
  RT.plan().add(Label, Decision);
  EXPECT_EQ(RT.newHashMap(Site).backing(), ImplKind::LazyMap);
}

TEST_F(RuntimeFactoryTest, PlanAdaptsSetSuggestionsForLists) {
  List Probe = RT.newArrayList(Site);
  PlanDecision Decision;
  Decision.Impl = ImplKind::LinkedHashSet; // the paper's Table-2 target
  RT.plan().add(RT.profiler().contextLabel(*Probe.context()), Decision);

  List Adapted = RT.newArrayList(Site);
  EXPECT_EQ(Adapted.backing(), ImplKind::HashedList);
}

namespace {
/// Online selector that redirects every HashMap request to ArrayMap.
struct ForceArrayMap : OnlineSelector {
  ImplKind chooseImpl(const ContextInfo *, AdtKind Adt, ImplKind Requested,
                      uint32_t &Capacity) override {
    Capacity = 2;
    return (Adt == AdtKind::Map && Requested == ImplKind::HashMap)
               ? ImplKind::ArrayMap
               : Requested;
  }
};
} // namespace

TEST_F(RuntimeFactoryTest, OnlineSelectorOverridesRequests) {
  ForceArrayMap Selector;
  RT.setOnlineSelector(&Selector);
  Map M = RT.newHashMap(Site);
  EXPECT_EQ(M.backing(), ImplKind::ArrayMap);
  List L = RT.newArrayList(Site);
  EXPECT_EQ(L.backing(), ImplKind::ArrayList);
  RT.setOnlineSelector(nullptr);
  EXPECT_EQ(RT.newHashMap(Site).backing(), ImplKind::HashMap);
}

TEST_F(RuntimeFactoryTest, AdoptRebuildsHandles) {
  Map M = RT.newHashMap(Site);
  M.put(Value::ofInt(1), Value::ofInt(2));
  Map Again = RT.adoptMap(M.wrapperRef());
  EXPECT_TRUE(Again.sameAs(M));
  EXPECT_EQ(Again.get(Value::ofInt(1)).asInt(), 2);
}

TEST_F(RuntimeFactoryTest, CollectionsStoredInDataObjectsSurvive) {
  // A wrapper reachable only through a data object field must survive GC;
  // adopt* then rebuilds a typed handle for it.
  ObjectRef WrapperRef;
  Value HolderVal = RT.allocData(1);
  Handle Holder(RT.heap(), HolderVal.asRef());
  {
    List L = RT.newArrayList(Site);
    L.add(Value::ofInt(9));
    WrapperRef = L.wrapperRef();
    RT.heap()
        .getAs<DataObject>(HolderVal.asRef())
        .setField(0, Value::ofRef(WrapperRef));
  }
  RT.heap().collect(true);
  List Recovered = RT.adoptList(WrapperRef);
  EXPECT_EQ(Recovered.get(0).asInt(), 9);
}

TEST_F(RuntimeFactoryTest, ContextsRecordAllocationsPerSite) {
  FrameId A = RT.site("a:1");
  FrameId B = RT.site("b:2");
  for (int I = 0; I < 3; ++I)
    (void)RT.newArrayList(A);
  (void)RT.newArrayList(B);
  ASSERT_EQ(RT.profiler().contexts().size(), 2u);
  EXPECT_EQ(RT.profiler().contexts()[0]->allocations(), 3u);
  EXPECT_EQ(RT.profiler().contexts()[1]->allocations(), 1u);
}

TEST_F(RuntimeFactoryTest, RootedValueKeepsDataAlive) {
  RootedValue Kept(RT, RT.allocData(0));
  uint64_t Live = RT.heap().collect(true).LiveObjects;
  EXPECT_EQ(Live, 1u);
  EXPECT_TRUE(Kept.get().isRef());
}

} // namespace
