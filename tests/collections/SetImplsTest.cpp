//===--- SetImplsTest.cpp - Set implementation unit tests ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"
#include "collections/LinkedHashSetImpl.h"
#include "collections/SetImpls.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct SetImplsTest : ::testing::Test {
  CollectionRuntime RT;
  FrameId Site = RT.site("test:1");

  Set make(ImplKind Kind, uint32_t Cap = 0) {
    return RT.newSetOf(Kind, Site, Cap);
  }

  template <typename T> T &implOf(const Set &S) {
    return RT.heap().getAs<T>(
        RT.heap().getAs<CollectionObject>(S.wrapperRef()).Impl);
  }

  static constexpr ImplKind AllSetKinds[] = {
      ImplKind::HashSet, ImplKind::ArraySet, ImplKind::LazySet,
      ImplKind::LinkedHashSet, ImplKind::SizeAdaptingSet};
};

TEST_F(SetImplsTest, AddContainsRemoveAcrossAllImpls) {
  for (ImplKind Kind : AllSetKinds) {
    Set S = make(Kind);
    EXPECT_TRUE(S.add(Value::ofInt(1))) << implKindName(Kind);
    EXPECT_TRUE(S.add(Value::ofInt(2))) << implKindName(Kind);
    EXPECT_FALSE(S.add(Value::ofInt(1)))
        << implKindName(Kind) << ": duplicates must be rejected";
    EXPECT_EQ(S.size(), 2u) << implKindName(Kind);
    EXPECT_TRUE(S.contains(Value::ofInt(1))) << implKindName(Kind);
    EXPECT_FALSE(S.contains(Value::ofInt(3))) << implKindName(Kind);
    EXPECT_TRUE(S.remove(Value::ofInt(1))) << implKindName(Kind);
    EXPECT_FALSE(S.remove(Value::ofInt(1))) << implKindName(Kind);
    EXPECT_EQ(S.size(), 1u) << implKindName(Kind);
  }
}

TEST_F(SetImplsTest, LargeMembershipAcrossAllImpls) {
  for (ImplKind Kind : AllSetKinds) {
    Set S = make(Kind);
    for (int I = 0; I < 300; ++I)
      S.add(Value::ofInt(I * 11));
    EXPECT_EQ(S.size(), 300u) << implKindName(Kind);
    for (int I = 0; I < 300; ++I)
      EXPECT_TRUE(S.contains(Value::ofInt(I * 11))) << implKindName(Kind);
    EXPECT_FALSE(S.contains(Value::ofInt(1))) << implKindName(Kind);
  }
}

TEST_F(SetImplsTest, HashSetIsBackedByAHashMap) {
  // §4.2: "HashSet (default) - backed up by a HashMap".
  Set S = make(ImplKind::HashSet);
  auto &Impl = implOf<HashSetImpl>(S);
  CollectionSizes Sizes = Impl.sizes();
  // Empty HashSet = set impl + map impl + 16-slot table.
  EXPECT_GE(Sizes.Live, 16u + 24u + 80u);
}

TEST_F(SetImplsTest, LazySetAllocatesBackingOnFirstAdd) {
  Set S = make(ImplKind::LazySet);
  CollectionSizes Before = implOf<HashSetImpl>(S).sizes();
  EXPECT_FALSE(S.contains(Value::ofInt(1)));
  CollectionSizes StillLazy = implOf<HashSetImpl>(S).sizes();
  EXPECT_EQ(Before.Live, StillLazy.Live);
  S.add(Value::ofInt(1));
  CollectionSizes After = implOf<HashSetImpl>(S).sizes();
  EXPECT_GT(After.Live, Before.Live);
}

TEST_F(SetImplsTest, LinkedHashSetIteratesInInsertionOrder) {
  Set S = make(ImplKind::LinkedHashSet);
  for (int I : {5, 3, 9, 1, 7})
    S.add(Value::ofInt(I));
  ValueIter It = S.iterate();
  Value V;
  std::vector<int64_t> Order;
  while (It.next(V))
    Order.push_back(V.asInt());
  EXPECT_EQ(Order, (std::vector<int64_t>{5, 3, 9, 1, 7}));
}

TEST_F(SetImplsTest, LinkedHashSetRemovalPreservesOrder) {
  Set S = make(ImplKind::LinkedHashSet);
  for (int I = 0; I < 6; ++I)
    S.add(Value::ofInt(I));
  S.remove(Value::ofInt(0));
  S.remove(Value::ofInt(3));
  ValueIter It = S.iterate();
  Value V;
  std::vector<int64_t> Order;
  while (It.next(V))
    Order.push_back(V.asInt());
  EXPECT_EQ(Order, (std::vector<int64_t>{1, 2, 4, 5}));
}

TEST_F(SetImplsTest, LinkedHashSetResizesAndKeepsOrder) {
  Set S = make(ImplKind::LinkedHashSet); // capacity 16
  for (int I = 0; I < 100; ++I)
    S.add(Value::ofInt(I));
  auto &Impl = implOf<LinkedHashSetImpl>(S);
  EXPECT_GT(Impl.capacity(), 16u);
  ValueIter It = S.iterate();
  Value V;
  int Expected = 0;
  while (It.next(V))
    EXPECT_EQ(V.asInt(), Expected++);
  EXPECT_EQ(Expected, 100);
}

TEST_F(SetImplsTest, SizeAdaptingSetConvertsAtThreshold) {
  Set S = make(ImplKind::SizeAdaptingSet); // threshold 16
  auto &Impl = implOf<SizeAdaptingSetImpl>(S);
  for (int I = 0; I < 16; ++I)
    S.add(Value::ofInt(I));
  EXPECT_FALSE(Impl.isHashed());
  S.add(Value::ofInt(16));
  EXPECT_TRUE(Impl.isHashed());
  for (int I = 0; I <= 16; ++I)
    EXPECT_TRUE(S.contains(Value::ofInt(I)));
  EXPECT_EQ(S.size(), 17u);
}

TEST_F(SetImplsTest, AddAllMergesWithoutDuplicates) {
  Set A = make(ImplKind::HashSet);
  A.add(Value::ofInt(1));
  A.add(Value::ofInt(2));
  Set B = make(ImplKind::ArraySet);
  B.add(Value::ofInt(2));
  B.add(Value::ofInt(3));
  A.addAll(B);
  EXPECT_EQ(A.size(), 3u);
  for (int I = 1; I <= 3; ++I)
    EXPECT_TRUE(A.contains(Value::ofInt(I)));
}

TEST_F(SetImplsTest, ClearEmptiesAllImpls) {
  for (ImplKind Kind : AllSetKinds) {
    Set S = make(Kind);
    S.add(Value::ofInt(1));
    S.clear();
    EXPECT_EQ(S.size(), 0u) << implKindName(Kind);
    EXPECT_FALSE(S.contains(Value::ofInt(1))) << implKindName(Kind);
    // Reusable after clear.
    EXPECT_TRUE(S.add(Value::ofInt(2))) << implKindName(Kind);
  }
}

TEST_F(SetImplsTest, IterationVisitsEachElementExactlyOnce) {
  for (ImplKind Kind : AllSetKinds) {
    Set S = make(Kind);
    for (int I = 0; I < 50; ++I)
      S.add(Value::ofInt(I));
    std::vector<bool> Seen(50, false);
    ValueIter It = S.iterate();
    Value V;
    unsigned Count = 0;
    while (It.next(V)) {
      ASSERT_FALSE(Seen[static_cast<size_t>(V.asInt())])
          << implKindName(Kind);
      Seen[static_cast<size_t>(V.asInt())] = true;
      ++Count;
    }
    EXPECT_EQ(Count, 50u) << implKindName(Kind);
  }
}

} // namespace
