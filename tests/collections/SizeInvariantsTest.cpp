//===--- SizeInvariantsTest.cpp - Size accounting invariants --------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized sweep over (memory model x implementation): under random
/// operation sequences, every implementation's semantic-map sizes must
/// satisfy the structural invariants that the space experiments rely on:
///
///   * Live >= Used  (you cannot use more than you occupy);
///   * Used >= the wrapperless minimum (headers survive in Used);
///   * Core is 0 exactly when the collection is empty;
///   * Live equals the sum of the shallow bytes of the ADT's own objects
///     (wrapper + everything reachable from it minus stored elements) —
///     checked indirectly: heap live == collection live when the heap
///     contains nothing but the one collection and its elements are
///     inline ints.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct SweepParam {
  bool Wide; // false = jvm32, true = jvm64
  ImplKind Kind;
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  return std::string(Info.param.Wide ? "jvm64_" : "jvm32_")
         + implKindName(Info.param.Kind);
}

class SizeInvariants : public ::testing::TestWithParam<SweepParam> {
protected:
  RuntimeConfig config() const {
    RuntimeConfig Config;
    Config.Model = GetParam().Wide ? MemoryModel::jvm64()
                                   : MemoryModel::jvm32();
    return Config;
  }

  static CollectionSizes sizesOf(CollectionRuntime &RT, ObjectRef W) {
    const HeapObject &Obj = RT.heap().get(W);
    return RT.heap().types().get(Obj.typeId()).ComputeSizes(Obj,
                                                            RT.heap());
  }

  static void checkInvariants(const CollectionSizes &S, uint32_t Size,
                              const char *What) {
    EXPECT_GE(S.Live, S.Used) << What;
    EXPECT_GT(S.Used, 0u) << What;
    if (Size == 0)
      EXPECT_EQ(S.Core, 0u) << What;
    else
      EXPECT_GT(S.Core, 0u) << What;
  }
};

using ListInvariants = SizeInvariants;
using MapInvariants = SizeInvariants;
using SetInvariants = SizeInvariants;

TEST_P(ListInvariants, HoldUnderRandomOps) {
  CollectionRuntime RT(config());
  List L = RT.newListOf(GetParam().Kind, RT.site("t:1"));
  SplitMix64 Rng(static_cast<uint64_t>(GetParam().Kind) * 31
                 + GetParam().Wide);

  for (int Step = 0; Step < 400; ++Step) {
    switch (Rng.nextBelow(4)) {
    case 0:
    case 1:
      L.add(Value::ofInt(static_cast<int64_t>(Rng.nextBelow(64))));
      break;
    case 2:
      if (L.size() > 0)
        L.removeAt(static_cast<uint32_t>(Rng.nextBelow(L.size())));
      break;
    case 3:
      if (Rng.nextBool(0.05))
        L.clear();
      break;
    }
    CollectionSizes S = sizesOf(RT, L.wrapperRef());
    checkInvariants(S, L.size(), implKindName(GetParam().Kind));
    // Heap live == collection live: ints are inline, so the whole heap
    // is this one ADT.
    const GcCycleRecord &Rec = RT.heap().collect(true);
    ASSERT_EQ(Rec.CollectionLiveBytes, S.Live);
    ASSERT_EQ(Rec.LiveBytes, S.Live);
  }
}

TEST_P(MapInvariants, HoldUnderRandomOps) {
  CollectionRuntime RT(config());
  Map M = RT.newMapOf(GetParam().Kind, RT.site("t:1"));
  SplitMix64 Rng(static_cast<uint64_t>(GetParam().Kind) * 37
                 + GetParam().Wide);

  for (int Step = 0; Step < 400; ++Step) {
    int64_t K = static_cast<int64_t>(Rng.nextBelow(48));
    switch (Rng.nextBelow(4)) {
    case 0:
    case 1:
      M.put(Value::ofInt(K), Value::ofInt(Step));
      break;
    case 2:
      M.remove(Value::ofInt(K));
      break;
    case 3:
      if (Rng.nextBool(0.05))
        M.clear();
      break;
    }
    CollectionSizes S = sizesOf(RT, M.wrapperRef());
    checkInvariants(S, M.size(), implKindName(GetParam().Kind));
    const GcCycleRecord &Rec = RT.heap().collect(true);
    ASSERT_EQ(Rec.CollectionLiveBytes, S.Live);
    ASSERT_EQ(Rec.LiveBytes, S.Live);
  }
}

TEST_P(SetInvariants, HoldUnderRandomOps) {
  CollectionRuntime RT(config());
  Set S = RT.newSetOf(GetParam().Kind, RT.site("t:1"));
  SplitMix64 Rng(static_cast<uint64_t>(GetParam().Kind) * 41
                 + GetParam().Wide);

  for (int Step = 0; Step < 400; ++Step) {
    int64_t X = static_cast<int64_t>(Rng.nextBelow(48));
    switch (Rng.nextBelow(4)) {
    case 0:
    case 1:
      S.add(Value::ofInt(X));
      break;
    case 2:
      S.remove(Value::ofInt(X));
      break;
    case 3:
      if (Rng.nextBool(0.05))
        S.clear();
      break;
    }
    CollectionSizes Sz = sizesOf(RT, S.wrapperRef());
    checkInvariants(Sz, S.size(), implKindName(GetParam().Kind));
    const GcCycleRecord &Rec = RT.heap().collect(true);
    ASSERT_EQ(Rec.CollectionLiveBytes, Sz.Live);
    ASSERT_EQ(Rec.LiveBytes, Sz.Live);
  }
}

std::vector<SweepParam> paramsFor(AdtKind Adt,
                                  std::initializer_list<ImplKind> Kinds) {
  std::vector<SweepParam> Params;
  for (bool Wide : {false, true})
    for (ImplKind Kind : Kinds) {
      assert(adtOfImpl(Kind) == Adt);
      Params.push_back({Wide, Kind});
    }
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListInvariants,
    ::testing::ValuesIn(paramsFor(AdtKind::List,
                                  {ImplKind::ArrayList,
                                   ImplKind::LinkedList,
                                   ImplKind::LazyArrayList,
                                   ImplKind::IntArrayList,
                                   ImplKind::HashedList})),
    paramName);
INSTANTIATE_TEST_SUITE_P(
    Sweep, MapInvariants,
    ::testing::ValuesIn(paramsFor(AdtKind::Map,
                                  {ImplKind::HashMap, ImplKind::ArrayMap,
                                   ImplKind::LazyMap,
                                   ImplKind::SizeAdaptingMap})),
    paramName);
INSTANTIATE_TEST_SUITE_P(
    Sweep, SetInvariants,
    ::testing::ValuesIn(paramsFor(AdtKind::Set,
                                  {ImplKind::HashSet, ImplKind::ArraySet,
                                   ImplKind::LazySet,
                                   ImplKind::LinkedHashSet,
                                   ImplKind::SizeAdaptingSet})),
    paramName);

} // namespace
