//===--- SizesTest.cpp - Semantic-map size accounting tests ---------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-exact checks of the live / used / core computation of §3.2.2 under
/// the 32-bit layout model, per implementation. These numbers are the
/// substance of every space experiment, so they are pinned precisely.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

struct SizesTest : ::testing::Test {
  CollectionRuntime RT; // profiling on: wrappers carry 32 OCI bytes
  FrameId Site = RT.site("test:1");

  CollectionSizes sizesOf(ObjectRef Wrapper) {
    const HeapObject &Obj = RT.heap().get(Wrapper);
    const SemanticMap &Map = RT.heap().types().get(Obj.typeId());
    return Map.ComputeSizes(Obj, RT.heap());
  }

  // Profiled wrapper: header(8) + impl ref(4) -> 16, + 32 simulated bytes
  // for the ObjectContextInfo.
  static constexpr uint64_t WrapperBytes = 16 + 32;
};

TEST_F(SizesTest, EmptyEagerArrayList) {
  List L = RT.newListOf(ImplKind::ArrayList, Site);
  CollectionSizes S = sizesOf(L.wrapperRef());
  // wrapper + impl(24) + 10-slot array(56).
  EXPECT_EQ(S.Live, WrapperBytes + 24 + 56);
  // All ten slots are reserved-but-unused.
  EXPECT_EQ(S.Used, S.Live - 10 * 4);
  EXPECT_EQ(S.Core, 0u);
}

TEST_F(SizesTest, ArrayListWithThreeElements) {
  List L = RT.newListOf(ImplKind::ArrayList, Site);
  for (int I = 0; I < 3; ++I)
    L.add(Value::ofInt(I));
  CollectionSizes S = sizesOf(L.wrapperRef());
  EXPECT_EQ(S.Live, WrapperBytes + 24 + 56);
  EXPECT_EQ(S.Used, S.Live - 7 * 4);
  // Ideal: 12 + 3*4 = 24 -> 24.
  EXPECT_EQ(S.Core, 24u);
}

TEST_F(SizesTest, EmptyLazyArrayListHasNoArray) {
  List L = RT.newListOf(ImplKind::LazyArrayList, Site);
  CollectionSizes S = sizesOf(L.wrapperRef());
  EXPECT_EQ(S.Live, WrapperBytes + 24);
  EXPECT_EQ(S.Used, S.Live);
  EXPECT_EQ(S.Core, 0u);
}

TEST_F(SizesTest, EmptyLinkedListPaysForTheSentinel) {
  List L = RT.newListOf(ImplKind::LinkedList, Site);
  CollectionSizes S = sizesOf(L.wrapperRef());
  // wrapper + impl(16) + sentinel entry(24).
  EXPECT_EQ(S.Live, WrapperBytes + 16 + 24);
  // The sentinel stores no application entry: it is pure overhead — the
  // §5.3 bloat observation ("LinkedList$Entry allocated as the head of an
  // empty linked list").
  EXPECT_EQ(S.Used, WrapperBytes + 16);
  EXPECT_EQ(S.Core, 0u);
}

TEST_F(SizesTest, LinkedListUsedCountsOnlyItemSlots) {
  List L = RT.newListOf(ImplKind::LinkedList, Site);
  L.add(Value::ofInt(1));
  L.add(Value::ofInt(2));
  CollectionSizes S = sizesOf(L.wrapperRef());
  EXPECT_EQ(S.Used, WrapperBytes + 16 + 2 * 4);
}

TEST_F(SizesTest, LinkedListEntriesCost24BytesEach) {
  List L = RT.newListOf(ImplKind::LinkedList, Site);
  CollectionSizes Before = sizesOf(L.wrapperRef());
  L.add(Value::ofInt(1));
  L.add(Value::ofInt(2));
  CollectionSizes After = sizesOf(L.wrapperRef());
  EXPECT_EQ(After.Live - Before.Live, 48u);
}

TEST_F(SizesTest, EmptyHashMapPaysTableNotEntries) {
  Map M = RT.newMapOf(ImplKind::HashMap, Site);
  CollectionSizes S = sizesOf(M.wrapperRef());
  // wrapper + impl(24) + 16-bucket table(80).
  EXPECT_EQ(S.Live, WrapperBytes + 24 + 80);
  // All 16 bucket slots unused.
  EXPECT_EQ(S.Used, S.Live - 16 * 4);
  EXPECT_EQ(S.Core, 0u);
}

TEST_F(SizesTest, HashMapEntriesAre24BytesAndBucketsBecomeUsed) {
  Map M = RT.newMapOf(ImplKind::HashMap, Site);
  CollectionSizes Before = sizesOf(M.wrapperRef());
  M.put(Value::ofInt(1), Value::ofInt(10));
  CollectionSizes After = sizesOf(M.wrapperRef());
  // One 24-byte entry appears; of it only the key/value slots (8 bytes)
  // count as used, plus the bucket slot that is no longer empty.
  EXPECT_EQ(After.Live - Before.Live, 24u);
  EXPECT_EQ(After.Used - Before.Used, 8u + 4u);
  // Core for one binding: array of 2 slots = 12 + 8 = 20 -> 24.
  EXPECT_EQ(After.Core, 24u);
}

TEST_F(SizesTest, ArrayMapStoresPairsWithoutEntryObjects) {
  Map M = RT.newMapOf(ImplKind::ArrayMap, Site);
  CollectionSizes Empty = sizesOf(M.wrapperRef());
  // wrapper + impl(24) + 8-slot array (2*4 capacity pairs): 12+32=44 -> 48.
  EXPECT_EQ(Empty.Live, WrapperBytes + 24 + 48);
  EXPECT_EQ(Empty.Used, Empty.Live - 8 * 4);
  M.put(Value::ofInt(1), Value::ofInt(10));
  CollectionSizes One = sizesOf(M.wrapperRef());
  EXPECT_EQ(One.Live, Empty.Live) << "no per-entry allocation";
  EXPECT_EQ(One.Used, Empty.Used + 8);
  EXPECT_EQ(One.Core, 24u);
}

TEST_F(SizesTest, PaperComparisonSmallHashMapVsArrayMap) {
  // The headline TVLA saving: a 3-entry HashMap vs a 3-entry ArrayMap(4).
  Map H = RT.newMapOf(ImplKind::HashMap, Site);
  Map A = RT.newMapOf(ImplKind::ArrayMap, Site, 4);
  for (int I = 0; I < 3; ++I) {
    H.put(Value::ofInt(I), Value::ofInt(I));
    A.put(Value::ofInt(I), Value::ofInt(I));
  }
  CollectionSizes SH = sizesOf(H.wrapperRef());
  CollectionSizes SA = sizesOf(A.wrapperRef());
  EXPECT_GT(SH.Live, SA.Live);
  // Same content, same ideal core.
  EXPECT_EQ(SH.Core, SA.Core);
  // The hash map wastes at least the table slack + entry overhead.
  EXPECT_GE(SH.Live - SA.Live, 100u);
}

TEST_F(SizesTest, HashSetAccountsItsBackingMapButSetCore) {
  Set S = RT.newSetOf(ImplKind::HashSet, Site);
  S.add(Value::ofInt(1));
  S.add(Value::ofInt(2));
  CollectionSizes Sz = sizesOf(S.wrapperRef());
  // wrapper + set impl(16) + map impl(24) + table(80) + 2 entries(48).
  EXPECT_EQ(Sz.Live, WrapperBytes + 16 + 24 + 80 + 48);
  // A set's core is one slot per element: 12 + 2*4 = 20 -> 24.
  EXPECT_EQ(Sz.Core, 24u);
}

TEST_F(SizesTest, SingletonListIsJustTheImplObject) {
  List L = RT.newListOf(ImplKind::SingletonList, Site);
  L.add(Value::ofInt(1));
  CollectionSizes S = sizesOf(L.wrapperRef());
  EXPECT_EQ(S.Live, WrapperBytes + 16);
  EXPECT_EQ(S.Used, S.Live);
  EXPECT_EQ(S.Core, 16u); // 12 + 4 -> 16
}

TEST_F(SizesTest, LinkedHashSetEntriesAre32Bytes) {
  Set S = RT.newSetOf(ImplKind::LinkedHashSet, Site);
  CollectionSizes Before = sizesOf(S.wrapperRef());
  S.add(Value::ofInt(1));
  CollectionSizes After = sizesOf(S.wrapperRef());
  EXPECT_EQ(After.Live - Before.Live, 32u);
}

TEST_F(SizesTest, UnprofiledWrappersCarryNoStatisticsBytes) {
  RuntimeConfig Config;
  Config.Profiler.Enabled = false;
  CollectionRuntime Bare(Config);
  List L = Bare.newListOf(ImplKind::SingletonList, Bare.site("t:1"));
  EXPECT_EQ(Bare.heap().get(L.wrapperRef()).shallowBytes(), 16u);
}

TEST_F(SizesTest, GcCycleAggregatesWrapperSizes) {
  Map M = RT.newMapOf(ImplKind::HashMap, Site);
  M.put(Value::ofInt(1), Value::ofInt(2));
  CollectionSizes Expected = sizesOf(M.wrapperRef());
  const GcCycleRecord &Rec = RT.heap().collect(true);
  EXPECT_EQ(Rec.CollectionObjects, 1u);
  EXPECT_EQ(Rec.CollectionLiveBytes, Expected.Live);
  EXPECT_EQ(Rec.CollectionUsedBytes, Expected.Used);
  EXPECT_EQ(Rec.CollectionCoreBytes, Expected.Core);
  // Internals are not double counted: heap live >= collection live, and
  // the difference is exactly the non-collection objects (none here).
  EXPECT_EQ(Rec.LiveBytes, Expected.Live);
}

} // namespace
