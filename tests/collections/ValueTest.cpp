//===--- ValueTest.cpp - Tagged value unit tests ---------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "collections/Value.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(Value, DefaultIsNull) {
  Value V;
  EXPECT_TRUE(V.isNull());
  EXPECT_FALSE(V.isInt());
  EXPECT_FALSE(V.isRef());
  EXPECT_EQ(V, Value::null());
}

TEST(Value, IntRoundTrip) {
  for (int64_t X : {0L, 1L, -1L, 42L, -1234567L, (1L << 60),
                    -(1L << 60)}) {
    Value V = Value::ofInt(X);
    EXPECT_TRUE(V.isInt());
    EXPECT_FALSE(V.isNull());
    EXPECT_FALSE(V.isRef());
    EXPECT_EQ(V.asInt(), X);
  }
}

TEST(Value, RefRoundTrip) {
  ObjectRef R = ObjectRef::fromSlot(123);
  Value V = Value::ofRef(R);
  EXPECT_TRUE(V.isRef());
  EXPECT_FALSE(V.isInt());
  EXPECT_EQ(V.asRef(), R);
  EXPECT_EQ(V.refOrNull(), R);
}

TEST(Value, RefOrNullOnNonRefs) {
  EXPECT_TRUE(Value::null().refOrNull().isNull());
  EXPECT_TRUE(Value::ofInt(7).refOrNull().isNull());
}

TEST(Value, EqualityIsIdentity) {
  EXPECT_EQ(Value::ofInt(5), Value::ofInt(5));
  EXPECT_NE(Value::ofInt(5), Value::ofInt(6));
  EXPECT_NE(Value::ofInt(0), Value::null());
  ObjectRef A = ObjectRef::fromSlot(1);
  ObjectRef B = ObjectRef::fromSlot(2);
  EXPECT_EQ(Value::ofRef(A), Value::ofRef(A));
  EXPECT_NE(Value::ofRef(A), Value::ofRef(B));
  EXPECT_NE(Value::ofRef(A), Value::ofInt(1));
}

TEST(Value, HashSpreadsAndIsStable) {
  Value A = Value::ofInt(1);
  EXPECT_EQ(A.hash(), Value::ofInt(1).hash());
  // Adjacent ints should not collide in the low bits (bucket quality).
  uint64_t Mask = 0xFFFF;
  EXPECT_NE(Value::ofInt(1).hash() & Mask, Value::ofInt(2).hash() & Mask);
}

TEST(ObjectRef, SlotRoundTripAndNull) {
  EXPECT_TRUE(ObjectRef::null().isNull());
  ObjectRef R = ObjectRef::fromSlot(0);
  EXPECT_FALSE(R.isNull());
  EXPECT_EQ(R.slot(), 0u);
  EXPECT_EQ(ObjectRef::fromRaw(R.raw()), R);
}

} // namespace
