//===--- ChameleonTest.cpp - Tool facade integration tests ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the paper's methodology (§5.2) on a small synthetic
/// program: profile, get suggestions, apply the plan automatically, and
/// verify the space effect — including the minimal-heap-size bisection.
///
//===----------------------------------------------------------------------===//

#include "core/Chameleon.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

/// Small-HashMap-heavy program: the TVLA pathology in miniature.
void smallMapProgram(CollectionRuntime &RT) {
  FrameId Site = RT.site("Mini.makeMap:1");
  CallFrame Main(RT.profiler(), "Mini.main");
  std::vector<Map> Live;
  for (int I = 0; I < 600; ++I) {
    if (RT.heap().outOfMemory())
      return;
    Map M = RT.newHashMap(Site);
    for (int E = 0; E < 3; ++E)
      M.put(Value::ofInt(E), Value::ofInt(I));
    for (int Q = 0; Q < 8; ++Q)
      (void)M.get(Value::ofInt(Q % 3));
    Live.push_back(std::move(M));
    if (Live.size() > 300)
      Live.erase(Live.begin());
  }
}

TEST(Chameleon, ProfileProducesSuggestionsAndPlan) {
  Chameleon Tool;
  RunResult R = Tool.profile(smallMapProgram, /*HeapLimit=*/1 << 20);
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(R.GcCycles, 0u);
  EXPECT_GT(R.PeakLiveBytes, 0u);
  ASSERT_FALSE(R.Suggestions.empty());
  EXPECT_EQ(R.Suggestions[0].NewImpl, ImplKind::ArrayMap);
  EXPECT_FALSE(R.Plan.empty());
  EXPECT_NE(R.Report.find("replace with ArrayMap"), std::string::npos);
}

TEST(Chameleon, AppliedPlanShrinksTheHeap) {
  Chameleon Tool;
  RunResult Before = Tool.profile(smallMapProgram, 1 << 20);
  RunResult After =
      Tool.run(smallMapProgram, &Before.Plan, /*HeapLimit=*/1 << 20,
               /*EvaluateRules=*/true);
  ASSERT_TRUE(After.Completed);
  EXPECT_LT(After.PeakLiveBytes, Before.PeakLiveBytes);
  EXPECT_LT(After.TotalAllocatedBytes, Before.TotalAllocatedBytes);
}

TEST(Chameleon, MeasurementRunsCarryNoInstrumentationSpace) {
  Chameleon Tool;
  RunResult Instrumented =
      Tool.run(smallMapProgram, nullptr, 2 << 20, /*EvaluateRules=*/true);
  RunResult Bare =
      Tool.run(smallMapProgram, nullptr, 2 << 20, /*EvaluateRules=*/false);
  EXPECT_LT(Bare.TotalAllocatedBytes, Instrumented.TotalAllocatedBytes);
}

TEST(Chameleon, MinimalHeapBisectionIsConsistent) {
  Chameleon Tool;
  uint64_t Min = Tool.findMinimalHeap(smallMapProgram, nullptr, 16 << 10,
                                      4 << 20, 8 << 10);
  EXPECT_GT(Min, static_cast<uint64_t>(16) << 10);
  EXPECT_LT(Min, static_cast<uint64_t>(4) << 20);
  // The found limit completes; a clearly smaller one does not.
  EXPECT_TRUE(Tool.run(smallMapProgram, nullptr, Min).Completed);
  EXPECT_FALSE(
      Tool.run(smallMapProgram, nullptr, Min / 2).Completed);
}

TEST(Chameleon, MinimalHeapImprovesWithThePlan) {
  Chameleon Tool;
  RunResult Profiled = Tool.profile(smallMapProgram, 1 << 20);
  uint64_t Before = Tool.findMinimalHeap(smallMapProgram, nullptr,
                                         16 << 10, 4 << 20, 8 << 10);
  uint64_t After = Tool.findMinimalHeap(smallMapProgram, &Profiled.Plan,
                                        16 << 10, 4 << 20, 8 << 10);
  // ArrayMap + tuned capacity should cut the footprint deeply (the paper
  // reports ~50% for TVLA's analogous fix).
  EXPECT_LT(After, (Before * 3) / 4);
}

TEST(Chameleon, CustomRulesExtendTheEngine) {
  ChameleonConfig Config;
  Config.UseBuiltinRules = false;
  Chameleon Tool(Config);
  rules::ParseResult P = Tool.engine().addRules(
      "[everything-lazy] Map : allocCount >= 1 -> LazyMap "
      "\"Space: custom policy\"");
  ASSERT_TRUE(P.succeeded()) << rules::formatDiagnostics(P.Diags);
  RunResult R = Tool.profile(smallMapProgram, 1 << 20);
  ASSERT_FALSE(R.Suggestions.empty());
  EXPECT_EQ(R.Suggestions[0].RuleName, "everything-lazy");
  EXPECT_EQ(R.Suggestions[0].NewImpl, ImplKind::LazyMap);
}

TEST(Chameleon, ScreeningFlagsWastefulPrograms) {
  Chameleon Tool;
  RunResult R = Tool.profile(smallMapProgram, 1 << 20);
  ScreeningResult S = screenPotential(R, /*Threshold=*/0.05);
  EXPECT_GT(S.CollectionLiveShare, S.CollectionUsedShare);
  EXPECT_GT(S.PotentialShare, 0.05);
  EXPECT_TRUE(S.WorthOptimizing);
  EXPECT_NEAR(S.PotentialShare,
              S.CollectionLiveShare - S.CollectionUsedShare, 1e-12);
}

TEST(Chameleon, ScreeningPassesWellShapedPrograms) {
  // Exactly-sized, fully used lists: nothing to save.
  auto Tidy = [](CollectionRuntime &RT) {
    FrameId Site = RT.site("Tidy.make:1");
    std::vector<List> Live;
    for (int I = 0; I < 400; ++I) {
      List L = RT.newArrayList(Site, 4);
      for (int E = 0; E < 4; ++E)
        L.add(Value::ofInt(E));
      Live.push_back(std::move(L));
      if (Live.size() > 200)
        Live.erase(Live.begin());
    }
  };
  Chameleon Tool;
  RunResult R = Tool.profile(Tidy, 1 << 20);
  ScreeningResult S = screenPotential(R, 0.05);
  EXPECT_FALSE(S.WorthOptimizing);
  EXPECT_LT(S.PotentialShare, 0.05);
}

TEST(Chameleon, ScreeningOfEmptyRunIsZero) {
  RunResult Empty;
  ScreeningResult S = screenPotential(Empty);
  EXPECT_DOUBLE_EQ(S.PotentialShare, 0.0);
  EXPECT_FALSE(S.WorthOptimizing);
}

TEST(Chameleon, RunResultCarriesTheCycleSeries) {
  Chameleon Tool;
  RunResult R = Tool.profile(smallMapProgram, 1 << 20);
  ASSERT_FALSE(R.Cycles.empty());
  // Collections dominate this program's live data.
  const GcCycleRecord &Last = R.Cycles.back();
  EXPECT_GT(Last.collectionLiveFraction(), 0.5);
  EXPECT_GE(Last.collectionLiveFraction(), Last.collectionUsedFraction());
  EXPECT_GE(Last.collectionUsedFraction(), Last.collectionCoreFraction());
}

} // namespace
