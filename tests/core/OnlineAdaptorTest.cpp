//===--- OnlineAdaptorTest.cpp - Online selection tests --------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the fully-automatic mode (§3.3.2/§5.4): decisions are made at
/// allocation time from the profile so far, after a warm-up, and the
/// replacement is visible in the backing implementation of later
/// allocations.
///
//===----------------------------------------------------------------------===//

#include "core/OnlineAdaptor.h"

#include "core/Chameleon.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

/// Allocates small get-dominated HashMaps that die quickly; the online
/// adaptor should start redirecting them to ArrayMap after warm-up.
void churnSmallMaps(CollectionRuntime &RT, int Count,
                    std::vector<ImplKind> *BackingLog = nullptr) {
  FrameId Site = RT.site("Online.makeMap:1");
  for (int I = 0; I < Count; ++I) {
    Map M = RT.newHashMap(Site);
    for (int E = 0; E < 3; ++E)
      M.put(Value::ofInt(E), Value::ofInt(I));
    (void)M.get(Value::ofInt(0));
    if (BackingLog)
      BackingLog->push_back(M.backing());
    // M dies here; sweep-time folding feeds the context's profile.
    if (I % 16 == 15)
      RT.heap().collect(/*Forced=*/true);
  }
}

TEST(OnlineAdaptor, RedirectsAfterWarmup) {
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  CollectionRuntime RT;
  OnlineConfig Config;
  Config.WarmupDeaths = 8;
  OnlineAdaptor Adaptor(Engine, RT.profiler(), Config);
  RT.setOnlineSelector(&Adaptor);

  std::vector<ImplKind> Log;
  churnSmallMaps(RT, 200, &Log);

  EXPECT_EQ(Log.front(), ImplKind::HashMap)
      << "no decision before any instance died";
  EXPECT_EQ(Log.back(), ImplKind::ArrayMap)
      << "warm profile must redirect the allocation";
  EXPECT_GT(Adaptor.replacements(), 0u);
  EXPECT_GT(Adaptor.evaluations(), 0u);
}

TEST(OnlineAdaptor, NoDecisionWithoutContext) {
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  RuntimeConfig RtConfig;
  RtConfig.Profiler.Enabled = false;
  CollectionRuntime RT(RtConfig);
  OnlineAdaptor Adaptor(Engine, RT.profiler());
  RT.setOnlineSelector(&Adaptor);

  std::vector<ImplKind> Log;
  churnSmallMaps(RT, 50, &Log);
  for (ImplKind Kind : Log)
    EXPECT_EQ(Kind, ImplKind::HashMap);
  EXPECT_EQ(Adaptor.replacements(), 0u);
}

TEST(OnlineAdaptor, DecisionsAreCachedBetweenReevaluations) {
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  CollectionRuntime RT;
  OnlineConfig Config;
  Config.WarmupDeaths = 8;
  Config.ReevaluatePeriod = 1000; // effectively once
  OnlineAdaptor Adaptor(Engine, RT.profiler(), Config);
  RT.setOnlineSelector(&Adaptor);

  churnSmallMaps(RT, 300);
  EXPECT_LE(Adaptor.evaluations(), 3u);
}

TEST(OnlineAdaptor, DriftingContextsAreReevaluated) {
  // §3.3.2 "Lack of Stability": a context whose behaviour changes (e.g.
  // different program phases) must not stay pinned to an early decision.
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  CollectionRuntime RT;
  OnlineConfig Config;
  Config.WarmupDeaths = 8;
  Config.ReevaluatePeriod = 32;
  OnlineAdaptor Adaptor(Engine, RT.profiler(), Config);
  RT.setOnlineSelector(&Adaptor);

  FrameId Site = RT.site("Drift.makeMap:1");
  auto Churn = [&](int Count, int Entries,
                   std::vector<ImplKind> *Log) {
    for (int I = 0; I < Count; ++I) {
      Map M = RT.newHashMap(Site);
      for (int E = 0; E < Entries; ++E)
        M.put(Value::ofInt(E), Value::ofInt(I));
      if (Log)
        Log->push_back(M.backing());
      if (I % 16 == 15)
        RT.heap().collect(true);
    }
  };

  // Phase 1: small maps -> the adaptor converges on ArrayMap.
  std::vector<ImplKind> Phase1;
  Churn(200, 3, &Phase1);
  ASSERT_EQ(Phase1.back(), ImplKind::ArrayMap);

  // Phase 2: the same context starts making big maps. The mixed profile
  // destabilises maxSize, the small-hashmap rule stops firing, and the
  // re-evaluated decision falls back to the requested HashMap.
  std::vector<ImplKind> Phase2;
  Churn(600, 300, &Phase2);
  EXPECT_EQ(Phase2.back(), ImplKind::HashMap)
      << "the adaptor must abandon the stale ArrayMap decision";
}

TEST(OnlineAdaptor, FacadeOnlineModeMatchesManualSpace) {
  // §5.4: "the space saving achieved was identical to the one we got with
  // the manual modification" — online and plan-applied runs should land
  // close on allocation volume.
  Chameleon Tool;
  auto Program = [](CollectionRuntime &RT) { churnSmallMaps(RT, 400); };

  RunResult Profiled = Tool.profile(Program);
  RunResult Planned = Tool.run(Program, &Profiled.Plan, 0,
                               /*EvaluateRules=*/true);
  RunResult Online = Tool.profileOnline(Program);

  EXPECT_GT(Online.OnlineReplacements, 0u);
  EXPECT_LT(Online.TotalAllocatedBytes, Profiled.TotalAllocatedBytes);
  // Online pays a short warm-up of unconverted allocations; allow slack.
  double Ratio = static_cast<double>(Online.TotalAllocatedBytes)
                 / static_cast<double>(Planned.TotalAllocatedBytes);
  EXPECT_LT(Ratio, 1.25);
}

} // namespace
