//===--- OnlineRollbackTest.cpp - Transactional migration rollback --------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transactional live-migration contract: an injected failure at ANY
/// point of the migration — transaction bookkeeping, the shadow build's
/// own allocations, the heap underneath them — aborts cleanly back to the
/// source implementation with the contents intact and the abort counted;
/// with no injection the same migration commits. Plus the adaptor's
/// exponential backoff / pinning policy and the retire() idempotency
/// contract.
///
//===----------------------------------------------------------------------===//

#include "core/OnlineAdaptor.h"

#include "core/Chameleon.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace chameleon;

namespace {

/// Disarms the process-global injector when a test ends, whatever happens.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

/// Arms a plan failing the first hit of \p Site with an allocation fault.
void armFailFirst(const char *Site) {
  FaultPlan Plan;
  Plan.Rules.push_back({Site, FaultAction::FailAlloc, /*NthHit=*/1});
  FaultInjector::instance().arm(Plan);
}

void expectMapMatches(const Map &M, const std::map<int64_t, int64_t> &Model) {
  ASSERT_EQ(M.size(), Model.size());
  for (const auto &[K, V] : Model) {
    Value Got = M.get(Value::ofInt(K));
    ASSERT_FALSE(Got.isNull()) << "key " << K << " lost";
    EXPECT_EQ(Got.asInt(), V) << "key " << K;
  }
}

/// Every injection point a HashMap -> ArrayMap migration crosses. The
/// shadow build allocates (gc.alloc), the target impl reserves its arrays
/// (arraymap.reserve), and the transaction itself has four marked phases.
const char *const MapMigrationSites[] = {
    "migrate.begin", "migrate.copy",      "migrate.verify",
    "migrate.publish", "gc.alloc",        "arraymap.reserve",
};

TEST(OnlineRollback, AbortAtEveryInjectionPointPreservesContents) {
  DisarmGuard Guard;
  for (const char *Site : MapMigrationSites) {
    SCOPED_TRACE(Site);
    CollectionRuntime RT;
    Map M = RT.newHashMap(RT.site("Rollback.map:1"), 4);
    std::map<int64_t, int64_t> Model;
    for (int64_t I = 0; I < 6; ++I) {
      M.put(Value::ofInt(I), Value::ofInt(I * 10));
      Model[I] = I * 10;
    }
    ContextInfo *Ctx = M.context();
    ASSERT_NE(Ctx, nullptr);
    ASSERT_EQ(M.backing(), ImplKind::HashMap);

    armFailFirst(Site);
    MigrationOutcome Outcome =
        RT.migrateCollection(M.wrapperRef(), ImplKind::ArrayMap);
    FaultInjector::instance().disarm();

    EXPECT_EQ(Outcome, MigrationOutcome::Aborted);
    EXPECT_EQ(M.backing(), ImplKind::HashMap)
        << "aborted migration must leave the source impl in place";
    expectMapMatches(M, Model);
    EXPECT_EQ(Ctx->migrationAborts(), 1u);
    EXPECT_EQ(Ctx->migrationCommits(), 0u);
    EXPECT_EQ(RT.migrationAborts(), 1u);
    EXPECT_EQ(RT.migrationCommits(), 0u);

    // The very same migration, without injection, commits — and the
    // contents survive the swap byte-for-byte.
    EXPECT_EQ(RT.migrateCollection(M.wrapperRef(), ImplKind::ArrayMap),
              MigrationOutcome::Committed);
    EXPECT_EQ(M.backing(), ImplKind::ArrayMap);
    expectMapMatches(M, Model);
    EXPECT_EQ(Ctx->migrationCommits(), 1u);

    // The aborted transaction's shadow must be unreferenced garbage.
    RT.heap().collect(/*Forced=*/true);
    std::string Error;
    EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
    expectMapMatches(M, Model);
  }
}

TEST(OnlineRollback, ListAbortAtReserveAndPublish) {
  DisarmGuard Guard;
  for (const char *Site : {"arraylist.reserve", "migrate.publish"}) {
    SCOPED_TRACE(Site);
    CollectionRuntime RT;
    List L = RT.newLinkedList(RT.site("Rollback.list:1"));
    std::vector<int64_t> Model;
    for (int64_t I = 0; I < 5; ++I) {
      L.add(Value::ofInt(I * 3));
      Model.push_back(I * 3);
    }

    armFailFirst(Site);
    EXPECT_EQ(RT.migrateCollection(L.wrapperRef(), ImplKind::ArrayList),
              MigrationOutcome::Aborted);
    FaultInjector::instance().disarm();
    ASSERT_EQ(L.backing(), ImplKind::LinkedList);
    ASSERT_EQ(L.size(), Model.size());
    for (size_t I = 0; I < Model.size(); ++I)
      EXPECT_EQ(L.get(static_cast<uint32_t>(I)).asInt(), Model[I]);

    EXPECT_EQ(RT.migrateCollection(L.wrapperRef(), ImplKind::ArrayList),
              MigrationOutcome::Committed);
    ASSERT_EQ(L.size(), Model.size());
    for (size_t I = 0; I < Model.size(); ++I)
      EXPECT_EQ(L.get(static_cast<uint32_t>(I)).asInt(), Model[I]);
  }
}

TEST(OnlineRollback, VerificationAbortsSemanticsChangingMigration) {
  // No injection at all: a list with duplicates migrated to the
  // deduplicating HashedList shrinks, verification catches it, and the
  // transaction aborts on its own.
  CollectionRuntime RT;
  List L = RT.newArrayList(RT.site("Rollback.dups:1"));
  L.add(Value::ofInt(7));
  L.add(Value::ofInt(7));
  L.add(Value::ofInt(8));
  EXPECT_EQ(RT.migrateCollection(L.wrapperRef(), ImplKind::HashedList),
            MigrationOutcome::Aborted);
  EXPECT_EQ(L.backing(), ImplKind::ArrayList);
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L.get(0).asInt(), 7);
  EXPECT_EQ(L.get(1).asInt(), 7);
  EXPECT_EQ(L.get(2).asInt(), 8);
}

TEST(OnlineRollback, MigrationEpochFailsIteratorsFast) {
  CollectionRuntime RT;
  Map M = RT.newHashMap(RT.site("Rollback.epoch:1"));
  M.put(Value::ofInt(1), Value::ofInt(2));
  EntryIter Before = M.iterate();
  ASSERT_EQ(RT.migrateCollection(M.wrapperRef(), ImplKind::ArrayMap),
            MigrationOutcome::Committed);
  Value K, V;
  EXPECT_DEATH((void)Before.next(K, V), "migrated during iteration");
  // A fresh iterator over the migrated backing works.
  EntryIter After = M.iterate();
  ASSERT_TRUE(After.next(K, V));
  EXPECT_EQ(K.asInt(), 1);
  EXPECT_EQ(V.asInt(), 2);
}

/// Fixed-decision selector driving the end-to-end maybeMigrate hook.
struct StubSelector : OnlineSelector {
  ImplKind chooseImpl(const ContextInfo *, AdtKind, ImplKind Requested,
                      uint32_t &) override {
    return Requested;
  }
  std::optional<ImplKind> reviseImpl(const ContextInfo *, AdtKind,
                                     ImplKind Current, uint32_t &) override {
    if (Target && *Target != Current)
      return Target;
    return std::nullopt;
  }
  void onMigrationResult(const ContextInfo *, bool Committed) override {
    ++(Committed ? Commits : Aborts);
  }
  std::optional<ImplKind> Target;
  int Commits = 0;
  int Aborts = 0;
};

TEST(OnlineRollback, MutatingOpsDriveRevision) {
  RuntimeConfig Config;
  Config.OnlineRevisePeriod = 4;
  CollectionRuntime RT(Config);
  StubSelector Selector;
  Selector.Target = ImplKind::ArrayMap;
  RT.setOnlineSelector(&Selector);

  Map M = RT.newHashMap(RT.site("Rollback.revise:1"));
  for (int64_t I = 0; I < 4; ++I)
    M.put(Value::ofInt(I), Value::ofInt(I));
  // The 4th mutating operation crossed the revise period: migrated live.
  EXPECT_EQ(M.backing(), ImplKind::ArrayMap);
  EXPECT_EQ(Selector.Commits, 1);
  ASSERT_EQ(M.size(), 4u);
  for (int64_t I = 0; I < 4; ++I)
    EXPECT_EQ(M.get(Value::ofInt(I)).asInt(), I);
  RT.setOnlineSelector(nullptr);
}

TEST(OnlineRollback, AdaptorBacksOffAndPins) {
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  CollectionRuntime RT;
  OnlineConfig Config;
  Config.WarmupDeaths = 4;
  Config.MigrationBackoffBase = 4;
  Config.MigrationBackoffCap = 8;
  Config.MaxMigrationAborts = 2;
  OnlineAdaptor Adaptor(Engine, RT.profiler(), Config);

  // Warm the context: small get-dominated HashMaps that die quickly make
  // the builtin small-hashmap rule fire.
  FrameId Site = RT.site("Rollback.adaptor:1");
  ContextInfo *Ctx = nullptr;
  for (int I = 0; I < 32; ++I) {
    Map M = RT.newHashMap(Site);
    for (int64_t E = 0; E < 3; ++E)
      M.put(Value::ofInt(E), Value::ofInt(E));
    (void)M.get(Value::ofInt(0));
    Ctx = M.context();
    M.retire();
  }
  ASSERT_NE(Ctx, nullptr);
  ASSERT_GE(Ctx->foldedInstances(), 4u);

  uint32_t Capacity = 0;
  std::optional<ImplKind> First =
      Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap, Capacity);
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(*First, ImplKind::ArrayMap);
  EXPECT_EQ(Adaptor.migrationsRequested(), 1u);

  // First abort: backed off until 4 more allocations from this context.
  Adaptor.onMigrationResult(Ctx, /*Committed=*/false);
  EXPECT_EQ(Adaptor.migrationsAborted(), 1u);
  EXPECT_FALSE(
      Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap, Capacity)
          .has_value())
      << "must not re-propose before the backoff deadline";

  // Allocations from the context advance past the deadline: proposed again.
  for (int I = 0; I < 8; ++I) {
    Map M = RT.newHashMap(Site);
    M.put(Value::ofInt(0), Value::ofInt(0));
    M.retire();
  }
  EXPECT_TRUE(
      Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap, Capacity)
          .has_value());

  // Second consecutive abort reaches MaxMigrationAborts: pinned for good.
  Adaptor.onMigrationResult(Ctx, /*Committed=*/false);
  EXPECT_EQ(Adaptor.pinnedContexts(), 1u);
  for (int I = 0; I < 32; ++I) {
    Map M = RT.newHashMap(Site);
    M.put(Value::ofInt(0), Value::ofInt(0));
    M.retire();
  }
  EXPECT_FALSE(
      Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap, Capacity)
          .has_value())
      << "a pinned context never migrates again";
}

TEST(OnlineRollback, CommitResetsBackoff) {
  rules::RuleEngine Engine;
  Engine.addBuiltinRules();
  CollectionRuntime RT;
  OnlineConfig Config;
  Config.WarmupDeaths = 4;
  Config.MigrationBackoffBase = 1024; // one abort blocks for a long time
  Config.MaxMigrationAborts = 5;
  OnlineAdaptor Adaptor(Engine, RT.profiler(), Config);

  FrameId Site = RT.site("Rollback.commit:1");
  ContextInfo *Ctx = nullptr;
  for (int I = 0; I < 16; ++I) {
    Map M = RT.newHashMap(Site);
    for (int64_t E = 0; E < 3; ++E)
      M.put(Value::ofInt(E), Value::ofInt(E));
    Ctx = M.context();
    M.retire();
  }
  ASSERT_NE(Ctx, nullptr);

  uint32_t Capacity = 0;
  ASSERT_TRUE(Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap,
                                 Capacity)
                  .has_value());
  Adaptor.onMigrationResult(Ctx, /*Committed=*/false);
  ASSERT_FALSE(Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap,
                                  Capacity)
                   .has_value());
  // A committed migration forgives the abort history entirely.
  Adaptor.onMigrationResult(Ctx, /*Committed=*/true);
  EXPECT_TRUE(Adaptor.reviseImpl(Ctx, AdtKind::Map, ImplKind::HashMap,
                                 Capacity)
                  .has_value());
  EXPECT_EQ(Adaptor.migrationsCommitted(), 1u);
}

TEST(OnlineRollback, RetireIsIdempotentByContract) {
  CollectionRuntime RT;
  Map M = RT.newHashMap(RT.site("Rollback.retire:1"));
  M.put(Value::ofInt(1), Value::ofInt(1));
  Map Alias = M;
  M.retire();
  EXPECT_EQ(RT.doubleRetires(), 0u);
  // Second retire through the alias: counted no-op, nothing corrupted.
  Alias.retire();
  EXPECT_EQ(RT.doubleRetires(), 1u);

  // Operations through a stale alias are counted, not counted into the
  // (already folded) usage record, and still structurally safe.
  Map Stale = RT.newHashMap(RT.site("Rollback.retire:2"));
  Stale.put(Value::ofInt(2), Value::ofInt(3));
  Map StaleAlias = Stale;
  Stale.retire();
  EXPECT_EQ(StaleAlias.get(Value::ofInt(2)).asInt(), 3);
  EXPECT_GE(RT.usesAfterRetire(), 1u);
}

} // namespace
