//===--- FleetPipelineTest.cpp - Agent/aggregator pipeline -----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end fleet pipeline over the deterministic InMemoryHub: the
/// commit/ack/durable protocol, exponential backoff with seeded jitter,
/// AIMD queue shedding, WAL replay across agent restarts, and the two
/// acceptance byte-identity properties — the merged fleet profile does not
/// depend on agent arrival order, nor on each process's mutator thread
/// count (1/2/8, via real workload-zoo trace replays).
///
//===----------------------------------------------------------------------===//

#include "apps/TraceWorkload.h"
#include "apps/WorkloadGen.h"
#include "fleet/Agent.h"
#include "fleet/Aggregator.h"
#include "fleet/Snapshot.h"
#include "fleet/Transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace chameleon;
using namespace chameleon::apps;
using namespace chameleon::fleet;

namespace {

namespace fs = std::filesystem;

/// Minimal one-context profile; cumulative per \p Epoch (Allocations grows
/// with the epoch so later always supersedes earlier).
ProcessProfile tinyProfile(uint64_t Epoch) {
  ProcessProfile P;
  P.Epoch = Epoch;
  P.CyclesSeen = Epoch;
  P.HeapLive = {100 * Epoch, 100, Epoch};
  ContextProfile C;
  C.TypeName = "ArrayList";
  C.Frames = {"site:1"};
  C.Allocations = 10 * Epoch;
  P.Contexts.push_back(std::move(C));
  return P;
}

/// In-memory aggregator that persists (= advances the durable marks) on
/// every applied update, so the very next ack already advertises the
/// fresh durable epoch and agents can drain without a reconnect.
FleetAggregatorConfig persistEveryUpdate() {
  FleetAggregatorConfig C;
  C.PersistEveryUpdates = 1;
  return C;
}

/// Runs both sides until the agent drains or \p MaxTicks elapse; returns
/// the tick budget left (0 = did not drain).
uint64_t pumpUntilDrained(FleetAgent &Agent, FleetAggregator &Agg,
                          InMemoryHub &Hub, uint64_t &Tick,
                          uint64_t MaxTicks = 1000) {
  while (MaxTicks > 0 && !Agent.drained()) {
    Agent.pump(Tick++);
    for (auto &C : Hub.acceptAll())
      Agg.attach(std::move(C));
    Agg.pump();
    // Acks land on the agent's next pump; persist every round so durable
    // marks advance (in-memory aggregator: persist is mark-only).
    std::string Err;
    Agg.persist(Err);
    --MaxTicks;
  }
  return MaxTicks;
}

TEST(FleetPipelineTest, CommitsFlowToDurable) {
  InMemoryHub Hub;
  FleetAggregator Agg(persistEveryUpdate());
  FleetAgentConfig AC;
  AC.AgentId = "a0";
  AC.RunSeed = 1;
  FleetAgent Agent(AC, Hub);

  for (uint64_t E = 1; E <= 5; ++E)
    EXPECT_EQ(Agent.commitEpoch(tinyProfile(E)), E);

  uint64_t Tick = 0;
  ASSERT_GT(pumpUntilDrained(Agent, Agg, Hub, Tick), 0u);

  FleetAgentStats S = Agent.stats();
  EXPECT_EQ(S.CommittedEpochs, 5u);
  EXPECT_EQ(S.DurableEpoch, 5u);
  EXPECT_EQ(S.Connects, 1u);
  EXPECT_EQ(Agg.stateCopy().latestEpoch({"a0", 1}), 5u);
  ProcessProfile Merged = Agg.mergedProfile();
  EXPECT_EQ(Merged.Epoch, 5u);
  ASSERT_EQ(Merged.Contexts.size(), 1u);
  EXPECT_EQ(Merged.Contexts[0].Allocations, 50u); // cumulative epoch 5 only
}

TEST(FleetPipelineTest, BackoffIsExponentialAndSeedDeterministic) {
  InMemoryHub Hub;
  Hub.stopServer(); // nothing listening: every dial fails

  auto runSchedule = [&](uint64_t Seed) {
    FleetAgentConfig AC;
    AC.JitterSeed = Seed;
    AC.BackoffBaseTicks = 1;
    AC.BackoffMaxTicks = 16;
    FleetAgent Agent(AC, Hub);
    Agent.commitEpoch(tinyProfile(1)); // give it a reason to dial
    std::vector<uint64_t> FailTicks;
    uint64_t PrevFailures = 0;
    for (uint64_t T = 0; T < 200; ++T) {
      Agent.pump(T);
      uint64_t F = Agent.stats().ConnectFailures;
      if (F != PrevFailures) {
        FailTicks.push_back(T);
        PrevFailures = F;
      }
    }
    return FailTicks;
  };

  std::vector<uint64_t> A = runSchedule(0x5EED);
  std::vector<uint64_t> B = runSchedule(0x5EED);
  std::vector<uint64_t> C = runSchedule(0xF00D);
  EXPECT_EQ(A, B) << "same seed must replay the same dial schedule";
  EXPECT_NE(A, C) << "different jitter seeds must differ";

  // Gaps grow (geometrically, up to cap + jitter): the last gap must be
  // several times the first, and attempts must be far sparser than ticks.
  ASSERT_GE(A.size(), 4u);
  uint64_t FirstGap = A[1] - A[0];
  uint64_t LastGap = A[A.size() - 1] - A[A.size() - 2];
  EXPECT_GE(LastGap, FirstGap * 2);
  EXPECT_LE(A.size(), 40u); // 200 ticks of retry-every-tick would be ~200
}

TEST(FleetPipelineTest, ReconnectsAfterServerRestartAndReplays) {
  InMemoryHub Hub;
  FleetAggregator Agg(persistEveryUpdate());
  FleetAgentConfig AC;
  AC.AgentId = "a0";
  AC.RunSeed = 9;
  FleetAgent Agent(AC, Hub);

  Agent.commitEpoch(tinyProfile(1));
  uint64_t Tick = 0;
  ASSERT_GT(pumpUntilDrained(Agent, Agg, Hub, Tick), 0u);

  // Kill the server mid-stream; the agent sees death and backs off.
  Hub.stopServer();
  Agent.commitEpoch(tinyProfile(2));
  for (uint64_t End = Tick + 50; Tick < End; ++Tick)
    Agent.pump(Tick);
  EXPECT_FALSE(Agent.drained());
  EXPECT_GE(Agent.stats().Disconnects, 1u);

  Hub.startServer();
  ASSERT_GT(pumpUntilDrained(Agent, Agg, Hub, Tick, 2000), 0u);
  FleetAgentStats S = Agent.stats();
  EXPECT_GE(S.Connects, 2u);
  EXPECT_EQ(S.DurableEpoch, 2u);
  EXPECT_GE(S.ReplayedRecords, 1u) << "epoch 2 re-sent on the new connection";
  EXPECT_EQ(Agg.stateCopy().latestEpoch({"a0", 9}), 2u);
}

TEST(FleetPipelineTest, BackpressureShedsCountedAndLosslessly) {
  InMemoryHub Hub;
  Hub.stopServer(); // queue can only grow
  FleetAgentConfig AC;
  AC.AgentId = "a0";
  AC.MaxQueue = 4;
  AC.MaxSendStride = 8;
  FleetAgent Agent(AC, Hub);

  for (uint64_t E = 1; E <= 64; ++E) {
    Agent.commitEpoch(tinyProfile(E));
    Agent.pump(E);
  }
  FleetAgentStats S = Agent.stats();
  EXPECT_EQ(S.CommittedEpochs, 64u);
  EXPECT_GT(S.ShedRecords, 0u) << "queue bound must shed";
  EXPECT_GT(S.SendStride, 1u) << "AIMD stride must have backed off";

  // Shedding loses nothing: once the server returns, the cumulative
  // latest epoch still becomes durable.
  Hub.startServer();
  FleetAggregator Agg(persistEveryUpdate());
  uint64_t Tick = 1000;
  ASSERT_GT(pumpUntilDrained(Agent, Agg, Hub, Tick, 4000), 0u);
  EXPECT_EQ(Agent.stats().DurableEpoch, 64u);
  EXPECT_EQ(Agg.mergedProfile().Contexts[0].Allocations, 640u);
}

TEST(FleetPipelineTest, WalReplaysAcrossAgentRestart) {
  fs::path Dir = fs::temp_directory_path() / "cham-fleet-walreplay";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  std::string WalPath = (Dir / "agent.wal").string();

  InMemoryHub Hub;
  Hub.stopServer(); // aggregator never up in the first life

  FleetAgentConfig AC;
  AC.AgentId = "a0";
  AC.RunSeed = 3;
  AC.WalPath = WalPath;
  {
    FleetAgent Agent(AC, Hub);
    std::string Err;
    ASSERT_TRUE(Agent.recover(Err)) << Err;
    for (uint64_t E = 1; E <= 6; ++E) {
      Agent.commitEpoch(tinyProfile(E));
      Agent.pump(E);
    }
    EXPECT_EQ(Agent.stats().CommittedEpochs, 6u);
    EXPECT_EQ(Agent.stats().DurableEpoch, 0u);
  } // agent process "crashes" — only the WAL survives

  Hub.startServer();
  FleetAggregator Agg(persistEveryUpdate());
  FleetAgent Agent(AC, Hub);
  std::string Err;
  ASSERT_TRUE(Agent.recover(Err)) << Err;
  EXPECT_EQ(Agent.lastEpoch(), 6u) << "WAL must restore the epoch sequence";

  uint64_t Tick = 0;
  ASSERT_GT(pumpUntilDrained(Agent, Agg, Hub, Tick, 2000), 0u);
  EXPECT_EQ(Agent.stats().DurableEpoch, 6u);
  EXPECT_GT(Agent.stats().SentRecords, 0u);
  EXPECT_EQ(Agg.stateCopy().latestEpoch({"a0", 3}), 6u);

  // Post-drain the WAL is compacted to (at most) the durable tail.
  SpillWal::LoadResult Left;
  ASSERT_TRUE(SpillWal::load(WalPath, Left, Err)) << Err;
  EXPECT_TRUE(Left.Records.empty());
  fs::remove_all(Dir);
}

TEST(FleetPipelineTest, VersionSkewDropsCleanly) {
  // An aggregator that answers Hello with a wrong-version HelloAck: the
  // agent must count the skew and drop, not wedge.
  InMemoryHub Hub;
  FleetAgentConfig AC;
  FleetAgent Agent(AC, Hub);
  Agent.commitEpoch(tinyProfile(1));
  Agent.pump(0); // dials + sends Hello
  auto Conns = Hub.acceptAll();
  ASSERT_EQ(Conns.size(), 1u);
  HelloAckMsg Bad;
  Bad.Version = WireVersion + 1;
  std::string Framed;
  frameMessage(Framed, encodeHelloAck(Bad));
  ASSERT_TRUE(Conns[0]->send(Framed));
  Agent.pump(1);
  EXPECT_EQ(Agent.stats().VersionSkews, 1u);
  EXPECT_GE(Agent.stats().Disconnects, 1u);
}

//===----------------------------------------------------------------------===//
// Acceptance byte-identity: arrival order x mutator threads
//===----------------------------------------------------------------------===//

/// Replays one workload-zoo trace at \p Threads mutator threads and
/// returns the profile captured at the final epoch barrier.
ProcessProfile replayAndCapture(const WorkloadGenerator &G, uint32_t Threads) {
  WorkloadGenConfig GC;
  applyWorkloadScale(WorkloadScale::Ci, GC);
  GC.Seed = 0x5CA1E;
  Trace T = G.Generate(GC);

  ProcessProfile Last;
  ReplayConfig RC;
  RC.MutatorThreads = Threads;
  RC.OnEpochBarrier = [&](uint32_t Epoch, CollectionRuntime &RT) {
    Last = captureProcessProfile(RT.profiler(), Epoch + 1);
  };
  CollectionRuntime RT(traceReplayRuntimeConfig(RC));
  ReplayResult R = replayTrace(RT, T, RC);
  EXPECT_TRUE(R.Ok) << R.Error;
  return Last;
}

TEST(FleetPipelineTest, MergedProfileByteIdenticalAcrossThreadCounts) {
  const WorkloadGenerator *G = findWorkloadGenerator("zipf");
  ASSERT_NE(G, nullptr);
  std::string Baseline;
  for (uint32_t Threads : {1u, 2u, 8u}) {
    ProcessProfile P = replayAndCapture(*G, Threads);
    ASSERT_GT(P.Contexts.size(), 0u);
    std::string Enc;
    encodeProcessProfile(Enc, P);
    if (Baseline.empty())
      Baseline = Enc;
    else
      EXPECT_EQ(Enc, Baseline)
          << "profile diverged at " << Threads << " threads";
  }
}

TEST(FleetPipelineTest, MergedProfileByteIdenticalAcrossArrivalOrder) {
  // Three distinct real profiles (different generators/seeds), committed
  // by three agents; every arrival order must persist identical bytes.
  std::vector<ProcessProfile> Profiles;
  for (const char *Name : {"phase-shift", "zipf", "burst"}) {
    const WorkloadGenerator *G = findWorkloadGenerator(Name);
    ASSERT_NE(G, nullptr);
    Profiles.push_back(replayAndCapture(*G, 2));
  }

  std::string Baseline;
  int Order[] = {0, 1, 2};
  do {
    InMemoryHub Hub;
    FleetAggregator Agg(persistEveryUpdate());
    std::vector<std::unique_ptr<FleetAgent>> Agents;
    for (int I : Order) {
      FleetAgentConfig AC;
      AC.AgentId = "agent-" + std::to_string(I);
      AC.RunSeed = static_cast<uint64_t>(I);
      auto Agent = std::make_unique<FleetAgent>(AC, Hub);
      Agent->commitEpoch(Profiles[static_cast<size_t>(I)]);
      Agents.push_back(std::move(Agent));
    }
    // Interleave pumps in arrival order until everyone drains.
    uint64_t Tick = 0;
    for (int Round = 0; Round < 200; ++Round) {
      bool AllDrained = true;
      for (auto &Agent : Agents) {
        Agent->pump(Tick++);
        AllDrained = AllDrained && Agent->drained();
      }
      for (auto &C : Hub.acceptAll())
        Agg.attach(std::move(C));
      Agg.pump();
      std::string Err;
      Agg.persist(Err);
      if (AllDrained)
        break;
    }
    for (auto &Agent : Agents)
      EXPECT_TRUE(Agent->drained());

    std::string Enc = encodeSnapshot(Agg.stateCopy());
    if (Baseline.empty())
      Baseline = Enc;
    else
      EXPECT_EQ(Enc, Baseline) << "snapshot diverged for arrival order "
                               << Order[0] << Order[1] << Order[2];
  } while (std::next_permutation(std::begin(Order), std::end(Order)));
}

TEST(FleetPipelineTest, FleetRuleEvaluationRunsOnMergedState) {
  const WorkloadGenerator *G = findWorkloadGenerator("phase-shift");
  ASSERT_NE(G, nullptr);
  ProcessProfile P = replayAndCapture(*G, 1);

  InMemoryHub Hub;
  FleetAggregator Agg(persistEveryUpdate());
  FleetAgentConfig AC;
  AC.AgentId = "a0";
  FleetAgent Agent(AC, Hub);
  Agent.commitEpoch(std::move(P));
  uint64_t Tick = 0;
  ASSERT_GT(pumpUntilDrained(Agent, Agg, Hub, Tick), 0u);

  size_t N = 0;
  std::string Report = Agg.evaluateFleetRules(&N);
  // Deterministic: evaluating twice renders the identical report.
  size_t N2 = 0;
  EXPECT_EQ(Agg.evaluateFleetRules(&N2), Report);
  EXPECT_EQ(N, N2);
  // And the human rendering of the merged profile is stable too.
  EXPECT_EQ(renderProfileReport(Agg.mergedProfile()),
            renderProfileReport(Agg.mergedProfile()));
}

} // namespace
