//===--- SnapshotTest.cpp - Snapshot corruption matrix ---------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe snapshot loader's corruption matrix (fleet/Snapshot.h):
/// truncation at EVERY byte length, a single bit flip in the header, the
/// payload, and each digest, version skew, and wrong-file input — every
/// case must produce a typed SnapshotError, quarantine the file aside,
/// leave the decoded state empty, and never crash. Plus the happy paths:
/// byte-exact round trip, atomic-rename persistence, and fault-injected
/// writes leaving the previous snapshot intact.
///
//===----------------------------------------------------------------------===//

#include "fleet/Snapshot.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace chameleon;
using namespace chameleon::fleet;

namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory.
class SnapshotTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("cham-snap-" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  std::string path(const std::string &Name) const {
    return (Dir / Name).string();
  }

  fs::path Dir;
};

/// Two-stream state with non-trivial stats.
FleetState sampleState() {
  FleetState S;
  for (int I = 0; I < 2; ++I) {
    ProcessProfile P;
    P.Epoch = 3 + I;
    P.CyclesSeen = 5;
    P.HeapLive = {1000u + static_cast<uint64_t>(I), 400, 5};
    ContextProfile C;
    C.TypeName = I == 0 ? "ArrayList" : "HashMap";
    C.Frames = {"site:1", "caller"};
    C.Allocations = 10 + static_cast<uint64_t>(I);
    C.MaxSizeStat = {9, 4.5, 1.25, 1.0, 9.0};
    P.Contexts.push_back(std::move(C));
    S.fold({I == 0 ? "agent-a" : "agent-b", 7}, std::move(P));
  }
  return S;
}

void writeBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Loads expecting a typed failure; checks quarantine happened and the
/// state stayed empty.
void expectQuarantined(const std::string &Path, SnapshotError Want,
                       const std::string &What) {
  FleetState Out;
  SnapshotLoadResult R = loadSnapshot(Path, Out, /*QuarantineOnError=*/true);
  EXPECT_EQ(R.Error, Want) << What << ": got " << snapshotErrorName(R.Error)
                           << " (" << R.Message << ")";
  EXPECT_FALSE(R.Message.empty()) << What;
  EXPECT_TRUE(Out.empty()) << What;
  EXPECT_FALSE(fs::exists(Path)) << What << ": corrupt file not moved";
  ASSERT_FALSE(R.QuarantinePath.empty()) << What;
  EXPECT_TRUE(fs::exists(R.QuarantinePath)) << What;
  EXPECT_NE(R.QuarantinePath.find(
                std::string(".quarantined-") + snapshotErrorName(Want)),
            std::string::npos)
      << What << ": quarantine name " << R.QuarantinePath;
  fs::remove(R.QuarantinePath);
}

TEST_F(SnapshotTest, RoundTripsByteExactly) {
  FleetState S = sampleState();
  std::string Bytes = encodeSnapshot(S);
  FleetState Back;
  SnapshotLoadResult R = decodeSnapshot(Bytes, Back);
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(encodeSnapshot(Back), Bytes);
  EXPECT_EQ(Back.streams().size(), 2u);
  // Restored streams are durable by definition: they are in a snapshot.
  EXPECT_EQ(Back.durableEpoch({"agent-a", 7}), 3u);
  EXPECT_EQ(Back.durableEpoch({"agent-b", 7}), 4u);
}

TEST_F(SnapshotTest, SaveThenLoad) {
  std::string P = path("fleet.snap");
  std::string Err;
  ASSERT_TRUE(saveSnapshot(P, sampleState(), Err)) << Err;
  EXPECT_FALSE(fs::exists(P + ".tmp")); // atomic rename consumed the temp
  FleetState Out;
  SnapshotLoadResult R = loadSnapshot(P, Out, true);
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(Out.streams().size(), 2u);
}

TEST_F(SnapshotTest, MissingFileIsCleanIoErrorWithoutQuarantine) {
  FleetState Out;
  SnapshotLoadResult R = loadSnapshot(path("absent.snap"), Out, true);
  EXPECT_EQ(R.Error, SnapshotError::Io);
  EXPECT_TRUE(R.QuarantinePath.empty());
  EXPECT_TRUE(Out.empty());
}

//===----------------------------------------------------------------------===//
// Corruption matrix
//===----------------------------------------------------------------------===//

TEST_F(SnapshotTest, TruncationAtEveryLengthIsTypedAndQuarantined) {
  std::string Bytes = encodeSnapshot(sampleState());
  ASSERT_GT(Bytes.size(), 100u);
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    FleetState Out;
    SnapshotLoadResult R = decodeSnapshot(Bytes.substr(0, Cut), Out);
    EXPECT_NE(R.Error, SnapshotError::None) << "cut at " << Cut;
    EXPECT_TRUE(Out.empty()) << "cut at " << Cut;
  }
  // Spot-check the typed boundary classes through the quarantining loader.
  size_t HeaderEnd = Bytes.find("\n\n");
  ASSERT_NE(HeaderEnd, std::string::npos);
  HeaderEnd += 2;

  std::string P = path("trunc-header.snap");
  writeBytes(P, Bytes.substr(0, HeaderEnd / 2));
  expectQuarantined(P, SnapshotError::BadHeader, "mid-header truncation");

  P = path("trunc-payload.snap");
  writeBytes(P, Bytes.substr(0, HeaderEnd + (Bytes.size() - HeaderEnd) / 2));
  expectQuarantined(P, SnapshotError::TruncatedPayload,
                    "mid-payload truncation");

  P = path("trunc-empty.snap");
  writeBytes(P, "");
  expectQuarantined(P, SnapshotError::BadMagic, "empty file");
}

TEST_F(SnapshotTest, HeaderBitFlipIsTyped) {
  std::string Bytes = encodeSnapshot(sampleState());
  // Flip inside the magic word.
  std::string Broken = Bytes;
  Broken[2] ^= 0x20;
  std::string P = path("magic-flip.snap");
  writeBytes(P, Broken);
  expectQuarantined(P, SnapshotError::BadMagic, "magic bit flip");

  // Corrupt the streams count line.
  size_t StreamsAt = Bytes.find("streams ");
  ASSERT_NE(StreamsAt, std::string::npos);
  Broken = Bytes;
  Broken[StreamsAt + 2] = 'X';
  P = path("header-flip.snap");
  writeBytes(P, Broken);
  expectQuarantined(P, SnapshotError::BadHeader, "header bit flip");
}

TEST_F(SnapshotTest, VersionSkewIsTyped) {
  std::string Bytes = encodeSnapshot(sampleState());
  const std::string Want =
      std::string(SnapshotMagic) + " " + std::to_string(SnapshotVersion);
  ASSERT_EQ(Bytes.compare(0, Want.size(), Want), 0);
  std::string Broken = Want.substr(0, Want.size() - 1) + "9" +
                       Bytes.substr(Want.size());
  std::string P = path("skew.snap");
  writeBytes(P, Broken);
  expectQuarantined(P, SnapshotError::VersionSkew, "version skew");
}

TEST_F(SnapshotTest, PayloadBitFlipIsTyped) {
  std::string Bytes = encodeSnapshot(sampleState());
  size_t PayloadAt = Bytes.find("\n\n") + 2;
  // A flip anywhere in the payload trips the whole-payload digest first.
  for (size_t Off : {size_t(0), (Bytes.size() - PayloadAt) / 2,
                     Bytes.size() - PayloadAt - 1}) {
    std::string Broken = Bytes;
    Broken[PayloadAt + Off] = static_cast<char>(Broken[PayloadAt + Off] ^ 0x04);
    std::string P = path("payload-flip.snap");
    writeBytes(P, Broken);
    expectQuarantined(P, SnapshotError::PayloadDigest,
                      "payload bit flip at +" + std::to_string(Off));
  }
}

TEST_F(SnapshotTest, DeclaredDigestFlipIsTyped) {
  std::string Bytes = encodeSnapshot(sampleState());
  size_t DigestAt = Bytes.find("payload_digest ");
  ASSERT_NE(DigestAt, std::string::npos);
  std::string Broken = Bytes;
  char &Hex = Broken[DigestAt + 15];
  Hex = Hex == '0' ? '1' : '0';
  std::string P = path("digest-flip.snap");
  writeBytes(P, Broken);
  expectQuarantined(P, SnapshotError::PayloadDigest, "declared digest flip");
}

TEST_F(SnapshotTest, SectionDigestFlipIsTyped) {
  // Corrupt a section's own trailing digest and fix up the whole-payload
  // digest so the per-section check is what trips.
  FleetState S = sampleState();
  std::string Bytes = encodeSnapshot(S);
  size_t PayloadAt = Bytes.find("\n\n") + 2;
  std::string Payload = Bytes.substr(PayloadAt);
  // Last 8 payload bytes are the final section's digest.
  Payload[Payload.size() - 4] =
      static_cast<char>(Payload[Payload.size() - 4] ^ 0x10);
  char DigestHex[17];
  std::snprintf(DigestHex, sizeof(DigestHex), "%016llx",
                static_cast<unsigned long long>(fnv1a(Payload)));
  size_t DigestAt = Bytes.find("payload_digest ") + 15;
  std::string Broken = Bytes.substr(0, DigestAt) + DigestHex +
                       Bytes.substr(DigestAt + 16, PayloadAt - DigestAt - 16) +
                       Payload;
  std::string P = path("section-digest.snap");
  writeBytes(P, Broken);
  expectQuarantined(P, SnapshotError::SectionDigest, "section digest flip");
}

TEST_F(SnapshotTest, TrailingDataIsTyped) {
  std::string P = path("trailing.snap");
  writeBytes(P, encodeSnapshot(sampleState()) + "extra");
  expectQuarantined(P, SnapshotError::TrailingData, "appended bytes");
}

TEST_F(SnapshotTest, WrongFileKindIsTyped) {
  std::string P = path("notasnap.snap");
  writeBytes(P, "CHAMTRACE 3\nsomething else entirely\n");
  expectQuarantined(P, SnapshotError::BadMagic, "foreign file");
}

TEST_F(SnapshotTest, QuarantineCanBeDisabled) {
  std::string P = path("keep.snap");
  std::string Bytes = encodeSnapshot(sampleState());
  Bytes[2] ^= 0x20;
  writeBytes(P, Bytes);
  FleetState Out;
  SnapshotLoadResult R = loadSnapshot(P, Out, /*QuarantineOnError=*/false);
  EXPECT_EQ(R.Error, SnapshotError::BadMagic);
  EXPECT_TRUE(R.QuarantinePath.empty());
  EXPECT_TRUE(fs::exists(P)); // inspection mode leaves the file alone
}

//===----------------------------------------------------------------------===//
// Crash-safe persistence under injected faults
//===----------------------------------------------------------------------===//

struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

TEST_F(SnapshotTest, InjectedWriteFaultLeavesPreviousSnapshotIntact) {
  std::string P = path("fleet.snap");
  std::string Err;
  ASSERT_TRUE(saveSnapshot(P, sampleState(), Err)) << Err;
  std::string Before = encodeSnapshot(sampleState());

  DisarmGuard Guard;
  for (const char *Site : {"fleet.snapshot.write", "fleet.snapshot.rename"}) {
    FaultPlan Plan;
    Plan.Rules.push_back({Site, FaultAction::FailAlloc, /*NthHit=*/1});
    FaultInjector::instance().arm(Plan);
    bool Threw = false;
    try {
      FaultInjector::FailScope Scope;
      std::string E2;
      saveSnapshot(P, FleetState(), E2); // would overwrite with empty state
    } catch (const InjectedFault &) {
      Threw = true;
    }
    FaultInjector::instance().disarm();
    EXPECT_TRUE(Threw) << Site;
    // The previous snapshot still loads and still carries the old state.
    FleetState Out;
    SnapshotLoadResult R = loadSnapshot(P, Out, true);
    ASSERT_TRUE(R.ok()) << Site << ": " << R.Message;
    EXPECT_EQ(encodeSnapshot(Out), Before) << Site;
  }
}

} // namespace
