//===--- WireFormatTest.cpp - Fleet wire protocol tests --------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet wire layer (fleet/Wire.h, fleet/WireFormat.h): byte
/// primitives round-trip bit-exactly, framing rejects every corruption
/// class with the right typed status, and all four protocol messages
/// encode/decode losslessly — including a full ProcessProfile with NaN
/// and denormal stat moments.
///
//===----------------------------------------------------------------------===//

#include "fleet/FleetProfile.h"
#include "fleet/Wire.h"
#include "fleet/WireFormat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

using namespace chameleon;
using namespace chameleon::fleet;

namespace {

TEST(WireTest, VarintRoundTrips) {
  for (uint64_t V : {0ull, 1ull, 127ull, 128ull, 300ull, (1ull << 32),
                     ~0ull, (1ull << 63)}) {
    std::string Buf;
    putVarint(Buf, V);
    ByteReader R(Buf);
    uint64_t Back = 0;
    ASSERT_TRUE(R.varint(Back));
    EXPECT_EQ(Back, V);
    EXPECT_TRUE(R.atEnd());
  }
}

TEST(WireTest, VarintRejectsOverlong) {
  // 11 continuation bytes: more than a 64-bit value can need.
  std::string Buf(11, '\x80');
  Buf.push_back('\x01');
  ByteReader R(Buf);
  uint64_t V;
  EXPECT_FALSE(R.varint(V));
  EXPECT_FALSE(R.ok());
}

TEST(WireTest, ZigzagRoundTrips) {
  const int64_t Cases[] = {0, 1, -1, 1234567, -1234567,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t V : Cases)
    EXPECT_EQ(unzigzag(zigzag(V)), V);
}

TEST(WireTest, DoubleRoundTripsBitExactly) {
  for (double V : {0.0, -0.0, 1.5, -3.25e18,
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::infinity(),
                   std::nan("")}) {
    std::string Buf;
    putF64(Buf, V);
    ByteReader R(Buf);
    double Back = 0;
    ASSERT_TRUE(R.f64(Back));
    uint64_t A, B;
    std::memcpy(&A, &V, 8);
    std::memcpy(&B, &Back, 8);
    EXPECT_EQ(A, B);
  }
}

TEST(WireTest, ReaderFailsClosedOnTruncation) {
  std::string Buf;
  putStr(Buf, "hello");
  for (size_t Cut = 0; Cut < Buf.size(); ++Cut) {
    std::string Trunc = Buf.substr(0, Cut);
    ByteReader R(Trunc);
    std::string S;
    EXPECT_FALSE(R.str(S, 64)) << "cut at " << Cut;
  }
}

TEST(WireTest, ReaderBoundsStringLength) {
  std::string Buf;
  putStr(Buf, "toolong");
  ByteReader R(Buf);
  std::string S;
  EXPECT_FALSE(R.str(S, 3));
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(FramingTest, RoundTripsAndAdvances) {
  std::string Buf;
  frameMessage(Buf, "alpha");
  frameMessage(Buf, "beta");
  size_t Pos = 0;
  std::string Payload;
  ASSERT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::Ok);
  EXPECT_EQ(Payload, "alpha");
  ASSERT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::Ok);
  EXPECT_EQ(Payload, "beta");
  EXPECT_EQ(Pos, Buf.size());
  EXPECT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::Incomplete);
}

TEST(FramingTest, IncompleteAtEveryPrefixLength) {
  std::string Buf;
  frameMessage(Buf, "payload bytes");
  for (size_t Cut = 0; Cut < Buf.size(); ++Cut) {
    std::string Trunc = Buf.substr(0, Cut);
    size_t Pos = 0;
    std::string Payload;
    EXPECT_EQ(extractFrame(Trunc, Pos, Payload), FrameStatus::Incomplete)
        << "cut at " << Cut;
    EXPECT_EQ(Pos, 0u);
  }
}

TEST(FramingTest, RejectsBadMagic) {
  std::string Buf;
  frameMessage(Buf, "x");
  Buf[0] = static_cast<char>(Buf[0] ^ 0x40);
  size_t Pos = 0;
  std::string Payload;
  EXPECT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::BadMagic);
  EXPECT_EQ(Pos, 0u);
}

TEST(FramingTest, RejectsOversizedDeclaredLength) {
  std::string Buf;
  putU64Le(Buf, 0); // placeholder; rebuild by hand
  Buf.clear();
  // magic
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((FrameMagic >> (8 * I)) & 0xFF));
  putVarint(Buf, MaxFramePayload + 1);
  size_t Pos = 0;
  std::string Payload;
  EXPECT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::TooLarge);
}

TEST(FramingTest, RejectsFlippedPayloadBit) {
  std::string Buf;
  frameMessage(Buf, "digest-protected payload");
  // Flip one bit in the payload region (after magic + 1-byte varint len).
  Buf[6] = static_cast<char>(Buf[6] ^ 0x01);
  size_t Pos = 0;
  std::string Payload;
  EXPECT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::BadDigest);
  EXPECT_EQ(Pos, 0u);
}

TEST(FramingTest, RejectsFlippedDigestBit) {
  std::string Buf;
  frameMessage(Buf, "digest-protected payload");
  Buf[Buf.size() - 1] = static_cast<char>(Buf[Buf.size() - 1] ^ 0x80);
  size_t Pos = 0;
  std::string Payload;
  EXPECT_EQ(extractFrame(Buf, Pos, Payload), FrameStatus::BadDigest);
}

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

/// A profile exercising every field: several contexts (deliberately out of
/// canonical construction order is NOT allowed — callers sort), metrics of
/// all kinds, and awkward doubles.
ProcessProfile sampleProfile(uint64_t Epoch) {
  ProcessProfile P;
  P.Epoch = Epoch;
  P.CyclesSeen = 7;
  P.HeapLive = {1000, 400, 7};
  P.HeapCollLive = {600, 300, 7};
  P.HeapCollUsed = {500, 250, 7};
  P.HeapCollCore = {400, 200, 7};

  ContextProfile A;
  A.TypeName = "ArrayList";
  A.Frames = {"site.a:1", "caller.b"};
  A.Allocations = 42;
  A.Folded = 40;
  A.MigrationAborts = 1;
  A.MigrationCommits = 2;
  A.MaxSizeStat = {40, 12.5, 3.75, 1.0, 64.0};
  A.OpStats[0] = {10, 0.5, std::nan(""), -0.0, 1e300};
  A.Live = {4096, 512, 7};
  A.Used = {2048, 256, 7};
  A.Core = {1024, 128, 7};
  A.Objects = {64, 8, 7};

  ContextProfile B;
  B.TypeName = "HashMap";
  B.Frames = {"site.b:2"};
  B.Allocations = 7;
  B.FinalSizeStat = {7, 3.0, 0.25, 2.0, 4.0};

  P.Contexts = {std::move(A), std::move(B)};

  obs::MetricSnapshot C;
  C.Name = "cham.fleet.test_counter";
  C.Kind = obs::MetricKind::Counter;
  C.Value = 123;
  obs::MetricSnapshot G;
  G.Name = "cham.fleet.test_gauge";
  G.Kind = obs::MetricKind::Gauge;
  G.GaugeValue = -5;
  obs::MetricSnapshot H;
  H.Name = "cham.fleet.test_hist";
  H.Kind = obs::MetricKind::Histogram;
  H.Bounds = {1, 8, 64};
  H.Buckets = {3, 2, 1, 0};
  H.Count = 6;
  H.Sum = 99;
  P.Metrics = {C, G, H};
  return P;
}

TEST(MessageTest, HelloRoundTrips) {
  HelloMsg M;
  M.AgentId = "agent-007";
  M.RunSeed = 0xDEADBEEF12345678ull;
  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeMessage(encodeHello(M), Out, Err)) << Err;
  ASSERT_EQ(Out.Kind, MsgKind::Hello);
  EXPECT_EQ(Out.Hello.Version, WireVersion);
  EXPECT_EQ(Out.Hello.AgentId, "agent-007");
  EXPECT_EQ(Out.Hello.RunSeed, M.RunSeed);
}

TEST(MessageTest, HelloAckAndAckRoundTrip) {
  HelloAckMsg HA;
  HA.DurableEpoch = 17;
  AckMsg A;
  A.SeenEpoch = 23;
  A.DurableEpoch = 19;
  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeMessage(encodeHelloAck(HA), Out, Err)) << Err;
  ASSERT_EQ(Out.Kind, MsgKind::HelloAck);
  EXPECT_EQ(Out.HelloAck.DurableEpoch, 17u);
  ASSERT_TRUE(decodeMessage(encodeAck(A), Out, Err)) << Err;
  ASSERT_EQ(Out.Kind, MsgKind::Ack);
  EXPECT_EQ(Out.Ack.SeenEpoch, 23u);
  EXPECT_EQ(Out.Ack.DurableEpoch, 19u);
}

TEST(MessageTest, EpochUpdateRoundTripsBitExactly) {
  EpochUpdateMsg M;
  M.Profile = sampleProfile(5);
  std::string Payload = encodeEpochUpdate(M);
  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeMessage(Payload, Out, Err)) << Err;
  ASSERT_EQ(Out.Kind, MsgKind::EpochUpdate);

  // Bit-exactness: re-encoding the decoded profile reproduces the bytes.
  EpochUpdateMsg Back;
  Back.Profile = Out.EpochUpdate.Profile;
  EXPECT_EQ(encodeEpochUpdate(Back), Payload);
  EXPECT_EQ(Out.EpochUpdate.Profile.Epoch, 5u);
  ASSERT_EQ(Out.EpochUpdate.Profile.Contexts.size(), 2u);
  EXPECT_EQ(Out.EpochUpdate.Profile.Contexts[0].TypeName, "ArrayList");
  ASSERT_EQ(Out.EpochUpdate.Profile.Metrics.size(), 3u);
  EXPECT_EQ(Out.EpochUpdate.Profile.Metrics[2].Buckets.size(), 4u);
}

TEST(MessageTest, RejectsUnknownKind) {
  std::string Payload;
  Payload.push_back(static_cast<char>(99));
  Message Out;
  std::string Err;
  EXPECT_FALSE(decodeMessage(Payload, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(MessageTest, RejectsTrailingGarbage) {
  HelloAckMsg HA;
  std::string Payload = encodeHelloAck(HA);
  Payload.push_back('\x00');
  Message Out;
  std::string Err;
  EXPECT_FALSE(decodeMessage(Payload, Out, Err));
}

TEST(MessageTest, RejectsTruncationAtEveryLength) {
  EpochUpdateMsg M;
  M.Profile = sampleProfile(3);
  std::string Payload = encodeEpochUpdate(M);
  for (size_t Cut = 0; Cut < Payload.size(); ++Cut) {
    Message Out;
    std::string Err;
    EXPECT_FALSE(decodeMessage(Payload.substr(0, Cut), Out, Err))
        << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Merge semantics
//===----------------------------------------------------------------------===//

TEST(FleetStateTest, KeepsHighestEpochPerStream) {
  FleetState S;
  StreamKey K{"a", 1};
  EXPECT_TRUE(S.fold(K, sampleProfile(1)));
  EXPECT_TRUE(S.fold(K, sampleProfile(3)));
  EXPECT_FALSE(S.fold(K, sampleProfile(2))); // stale: superseded by 3
  EXPECT_FALSE(S.fold(K, sampleProfile(3))); // duplicate replay
  EXPECT_EQ(S.latestEpoch(K), 3u);
  EXPECT_EQ(S.durableEpoch(K), 0u);
  S.markAllDurable();
  EXPECT_EQ(S.durableEpoch(K), 3u);
}

TEST(FleetStateTest, MergedProfileInvariantToArrivalOrder) {
  ProcessProfile P1 = sampleProfile(2);
  ProcessProfile P2 = sampleProfile(5);
  P2.Contexts[0].Allocations = 1000; // make the streams distinguishable
  ProcessProfile P3 = sampleProfile(1);

  std::string Baseline;
  const StreamKey Keys[] = {{"a", 1}, {"b", 2}, {"c", 3}};
  const ProcessProfile *Profiles[] = {&P1, &P2, &P3};
  int Order[] = {0, 1, 2};
  do {
    FleetState S;
    for (int I : Order)
      ASSERT_TRUE(S.fold(Keys[I], *Profiles[I]));
    std::string Enc;
    encodeProcessProfile(Enc, S.mergedProfile());
    if (Baseline.empty())
      Baseline = Enc;
    else
      EXPECT_EQ(Enc, Baseline) << "arrival order " << Order[0] << Order[1]
                               << Order[2];
  } while (std::next_permutation(std::begin(Order), std::end(Order)));
  EXPECT_FALSE(Baseline.empty());
}

TEST(FleetStateTest, MergeSumsCountersAndStats) {
  FleetState S;
  ASSERT_TRUE(S.fold({"a", 1}, sampleProfile(2)));
  ASSERT_TRUE(S.fold({"b", 2}, sampleProfile(4)));
  ProcessProfile M = S.mergedProfile();
  EXPECT_EQ(M.Epoch, 6u); // fleet version: sum of stream epochs
  ASSERT_EQ(M.Contexts.size(), 2u);
  EXPECT_EQ(M.Contexts[0].Allocations, 84u); // 42 + 42, same identity
  EXPECT_EQ(M.Contexts[0].MaxSizeStat.N, 80u);
  EXPECT_EQ(M.HeapLive.Total, 2000u);
  EXPECT_EQ(M.HeapLive.Max, 400u);
  // Metrics merged by name: counter doubled.
  ASSERT_FALSE(M.Metrics.empty());
  EXPECT_EQ(M.Metrics[0].Value, 246u);
}

} // namespace
