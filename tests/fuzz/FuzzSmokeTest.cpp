//===--- FuzzSmokeTest.cpp - Seeded mini-fuzz smoke target ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-seed, time-bounded fuzz pass over the whole collection runtime
/// (`ctest -L fuzz-smoke`): random op sequences against reference models
/// on randomly chosen implementations, random forced/sampling GCs, online
/// replacement, retire(), and a heap verification after every wave. The
/// seeds are fixed so the run is deterministic and fast enough for tier-1
/// (< 10 s); it exists to catch cross-feature interactions the targeted
/// suites don't combine.
///
//===----------------------------------------------------------------------===//

#include "collections/Handles.h"

#include "apps/TraceFormat.h"
#include "apps/WorkloadGen.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

using namespace chameleon;

namespace {

constexpr uint64_t FuzzSeed = 0xF0225EED;
constexpr uint64_t Gamma = 0x9E3779B97F4A7C15ULL;

struct FuzzList {
  List L;
  std::vector<int64_t> Model;
};
struct FuzzMap {
  Map M;
  std::unordered_map<int64_t, int64_t> Model;
};

/// One wave: build a mixed population, interleave ops with random GCs,
/// then retire a random subset and verify the heap.
void runWave(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  RuntimeConfig Config;
  Config.Profiler.SamplingPeriod = 1 + Rng.nextBelow(3);
  Config.GcSampleEveryBytes = (1 + Rng.nextBelow(4)) * 128 * 1024;
  CollectionRuntime RT(Config);
  FrameId ListSite = RT.site("fuzz.list:1");
  FrameId MapSite = RT.site("fuzz.map:1");

  static const ImplKind ListKinds[] = {
      ImplKind::ArrayList, ImplKind::LazyArrayList, ImplKind::LinkedList,
      ImplKind::IntArrayList};
  static const ImplKind MapKinds[] = {
      ImplKind::HashMap, ImplKind::ArrayMap, ImplKind::LazyMap,
      ImplKind::SizeAdaptingMap};

  std::vector<FuzzList> Lists;
  std::vector<FuzzMap> Maps;
  for (int I = 0; I < 12; ++I) {
    Lists.push_back({RT.newListOf(ListKinds[Rng.nextBelow(4)], ListSite,
                                  static_cast<uint32_t>(Rng.nextBelow(8))),
                     {}});
    Maps.push_back({RT.newMapOf(MapKinds[Rng.nextBelow(4)], MapSite,
                                static_cast<uint32_t>(Rng.nextBelow(8))),
                    {}});
  }

  for (int Op = 0; Op < 30000; ++Op) {
    uint64_t Roll = Rng.nextBelow(100);
    if (Roll < 48) {
      FuzzList &F = Lists[Rng.nextBelow(Lists.size())];
      if (F.L.isNull())
        continue;
      uint64_t Kind = Rng.nextBelow(10);
      int64_t V = static_cast<int64_t>(Rng.nextBelow(64));
      if (Kind < 4) {
        F.L.add(Value::ofInt(V));
        F.Model.push_back(V);
      } else if (Kind < 6 && !F.Model.empty()) {
        uint32_t At = static_cast<uint32_t>(Rng.nextBelow(F.Model.size()));
        ASSERT_EQ(F.L.get(At).asInt(), F.Model[At]);
      } else if (Kind < 8 && !F.Model.empty()) {
        uint32_t At = static_cast<uint32_t>(Rng.nextBelow(F.Model.size()));
        ASSERT_EQ(F.L.removeAt(At).asInt(), F.Model[At]);
        F.Model.erase(F.Model.begin() + At);
      } else {
        ASSERT_EQ(F.L.contains(Value::ofInt(V)),
                  std::find(F.Model.begin(), F.Model.end(), V)
                      != F.Model.end());
      }
      ASSERT_EQ(F.L.size(), F.Model.size());
    } else if (Roll < 96) {
      FuzzMap &F = Maps[Rng.nextBelow(Maps.size())];
      if (F.M.isNull())
        continue;
      uint64_t Kind = Rng.nextBelow(10);
      int64_t K = static_cast<int64_t>(Rng.nextBelow(32));
      if (Kind < 4) {
        int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
        ASSERT_EQ(F.M.put(Value::ofInt(K), Value::ofInt(V)),
                  F.Model.find(K) == F.Model.end());
        F.Model[K] = V;
      } else if (Kind < 7) {
        Value Got = F.M.get(Value::ofInt(K));
        auto It = F.Model.find(K);
        ASSERT_EQ(Got.isNull(), It == F.Model.end());
        if (It != F.Model.end()) {
          ASSERT_EQ(Got.asInt(), It->second);
        }
      } else if (Kind < 9) {
        ASSERT_EQ(F.M.remove(Value::ofInt(K)), F.Model.erase(K) > 0);
      } else {
        ASSERT_EQ(F.M.containsKey(Value::ofInt(K)), F.Model.count(K) > 0);
      }
      ASSERT_EQ(F.M.size(), F.Model.size());
    } else if (Roll < 98) {
      RT.heap().collect(Rng.nextBool(0.5));
    } else {
      // Retire-and-replace: ends one profiled lifetime mid-run.
      if (Rng.nextBool(0.5)) {
        FuzzList &F = Lists[Rng.nextBelow(Lists.size())];
        F.L.retire();
        F.L = RT.newListOf(ListKinds[Rng.nextBelow(4)], ListSite, 0);
        F.Model.clear();
      } else {
        FuzzMap &F = Maps[Rng.nextBelow(Maps.size())];
        F.M.retire();
        F.M = RT.newMapOf(MapKinds[Rng.nextBelow(4)], MapSite, 0);
        F.Model.clear();
      }
    }
  }

  std::string Error;
  ASSERT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
  RT.harvestLiveStatistics();
  for (const ContextInfo *Ctx : RT.profiler().contexts())
    ASSERT_GE(Ctx->allocations(), Ctx->foldedInstances());
}

TEST(FuzzSmoke, SeededWaves) {
  for (int Wave = 0; Wave < 8; ++Wave) {
    SCOPED_TRACE("wave seed=" + std::to_string(FuzzSeed ^ (Gamma * Wave)));
    runWave(FuzzSeed ^ (Gamma * Wave));
  }
}

/// Seeded corruption fuzz over the trace wire format (DESIGN.md §14): a
/// valid generated trace's bytes are mutated — byte flips, truncations,
/// zeroed runs, splices — and every mutant must either be rejected with a
/// diagnostic or parse into a trace the validator then judges; nothing may
/// crash, hang, or read out of bounds. The reader + validator pair is the
/// only gate between untrusted trace files and the replay interpreter.
TEST(FuzzSmoke, TraceBytesNeverCrashTheReader) {
  apps::WorkloadGenConfig Config;
  Config.Sessions = 4;
  Config.Epochs = 2;
  Config.RequestsPerEpoch = 24;
  Config.HistoryBound = 8;
  apps::Trace T = apps::generateBurstTrace(Config);
  const std::string Source = apps::writeTrace(T);
  ASSERT_FALSE(Source.empty());

  SplitMix64 Rng(FuzzSeed ^ (Gamma * 0x7ACE));
  uint64_t Rejected = 0, Parsed = 0, Valid = 0;
  for (int Mutant = 0; Mutant < 600; ++Mutant) {
    std::string Bytes = Source;
    switch (Rng.nextBelow(4)) {
    case 0: // flip 1-8 bytes anywhere (header text and binary payload)
      for (uint64_t F = 0, N = 1 + Rng.nextBelow(8); F < N; ++F)
        Bytes[Rng.nextBelow(Bytes.size())] ^=
            static_cast<char>(1 + Rng.nextBelow(255));
      break;
    case 1: // truncate at a random point
      Bytes.resize(Rng.nextBelow(Bytes.size()));
      break;
    case 2: { // zero a run (models a torn write)
      uint64_t At = Rng.nextBelow(Bytes.size());
      uint64_t Len = std::min<uint64_t>(1 + Rng.nextBelow(64),
                                        Bytes.size() - At);
      std::fill_n(Bytes.begin() + At, Len, '\0');
      break;
    }
    default: { // splice a random chunk of the trace over another offset
      uint64_t From = Rng.nextBelow(Bytes.size());
      uint64_t To = Rng.nextBelow(Bytes.size());
      uint64_t Len = std::min<uint64_t>(1 + Rng.nextBelow(32),
                                        Bytes.size() - std::max(From, To));
      std::copy_n(Source.begin() + From, Len, Bytes.begin() + To);
      break;
    }
    }

    apps::Trace Out;
    std::string Error;
    if (!apps::readTrace(Bytes, Out, &Error)) {
      EXPECT_FALSE(Error.empty()) << "rejection without a diagnostic";
      ++Rejected;
      continue;
    }
    ++Parsed;
    // A mutant that still parses (checksummed payload + digested header
    // make this rare) must round-trip and satisfy the replay validator
    // before anything may feed it to the interpreter.
    if (apps::validateTrace(Out, &Error)) {
      ++Valid;
      EXPECT_EQ(apps::writeTrace(Out), Bytes);
    } else {
      EXPECT_FALSE(Error.empty());
    }
  }
  // The corpus must actually exercise the reject path; mutants that leave
  // the bytes intact (splice of identical content) may legitimately parse.
  EXPECT_GT(Rejected, 500u);
  EXPECT_EQ(Rejected + Parsed, 600u);
  if (Valid != 0) {
    EXPECT_LE(Valid, Parsed);
  }
}

} // namespace
