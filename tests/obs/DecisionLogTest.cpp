//===--- DecisionLogTest.cpp - Decision-provenance ledger tests -----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision-provenance ledger (DESIGN.md §16) under test: ring
/// overwrite and dropped accounting, canonical export ordering, JSON
/// round-trips, the signal-safe tail read, byte-identity of the exported
/// ledger across ServerSim mutator-thread counts, fleet merging, and the
/// flight recorder's end-to-end crash path (fork a child, kill it with a
/// real SIGSEGV, parse the dump it left, and check the ledger tail
/// matches what a surviving process would have exported).
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"
#include "fleet/FleetProfile.h"
#include "obs/DecisionLog.h"
#include "obs/FlightRecorder.h"
#include "obs/Json.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace chameleon;
using namespace chameleon::obs;

namespace {

/// Arms the process-global ledger for one test and disarms on the way
/// out so no other test observes leftover records.
class LedgerScope {
public:
  explicit LedgerScope(size_t Capacity = 16384) {
    DecisionLog::instance().arm(Capacity);
  }
  ~LedgerScope() { DecisionLog::instance().disarm(); }
};

DecisionRecord makeRecord(uint32_t Ctx, DecisionKind Kind, uint64_t Epoch,
                          uint64_t Allocations = 0) {
  DecisionRecord R;
  R.CtxId = Ctx;
  R.Kind = Kind;
  R.Epoch = Epoch;
  R.Allocations = Allocations;
  return R;
}

//===----------------------------------------------------------------------===//
// Ring semantics and canonical export
//===----------------------------------------------------------------------===//

TEST(DecisionLogTest, RingKeepsNewestAndCountsDropped) {
  LedgerScope Scope(/*Capacity=*/4);
  DecisionLog &Log = DecisionLog::instance();
  for (uint64_t I = 1; I <= 6; ++I)
    Log.record(makeRecord(0, DecisionKind::Choice, I));
  EXPECT_EQ(Log.dropped(), 2u);
  DecisionExport E = Log.exportCanonical();
  ASSERT_EQ(E.Events.size(), 4u);
  EXPECT_EQ(E.Dropped, 2u);
  // Oldest two were overwritten; survivors keep arrival order.
  for (size_t I = 0; I < E.Events.size(); ++I)
    EXPECT_EQ(E.Events[I].Epoch, I + 3);
}

TEST(DecisionLogTest, ExportOrdersGlobalFirstAndAssignsPerContextSeq) {
  LedgerScope Scope;
  DecisionLog &Log = DecisionLog::instance();
  Log.record(makeRecord(7, DecisionKind::Snapshot, 1));
  Log.record(makeRecord(~0u, DecisionKind::EpochMark, 1));
  Log.record(makeRecord(3, DecisionKind::Choice, 1));
  Log.record(makeRecord(7, DecisionKind::RuleOutcome, 2));
  Log.record(makeRecord(~0u, DecisionKind::EpochMark, 2));
  Log.noteContextLabel(3, "server.Session.attrs");
  DecisionExport E = Log.exportCanonical();
  ASSERT_EQ(E.Events.size(), 5u);
  // Global records first (arrival order), then ctx 3, then ctx 7.
  EXPECT_EQ(E.Events[0].CtxId, ~0u);
  EXPECT_EQ(E.Events[0].Epoch, 1u);
  EXPECT_EQ(E.Events[1].CtxId, ~0u);
  EXPECT_EQ(E.Events[1].Epoch, 2u);
  EXPECT_EQ(E.Events[2].CtxId, 3u);
  EXPECT_EQ(E.Events[3].CtxId, 7u);
  EXPECT_EQ(E.Events[4].CtxId, 7u);
  // Per-context sequence restarts at each context boundary.
  EXPECT_EQ(E.Events[0].Seq, 0u);
  EXPECT_EQ(E.Events[1].Seq, 1u);
  EXPECT_EQ(E.Events[2].Seq, 0u);
  EXPECT_EQ(E.Events[3].Seq, 0u);
  EXPECT_EQ(E.Events[4].Seq, 1u);
  ASSERT_EQ(E.ContextLabels.size(), 1u);
  EXPECT_EQ(E.ContextLabels[0].first, 3u);
  EXPECT_EQ(E.ContextLabels[0].second, "server.Session.attrs");
}

TEST(DecisionLogTest, JsonRoundTripIsByteIdentical) {
  LedgerScope Scope;
  DecisionLog &Log = DecisionLog::instance();
  DecisionRecord R = makeRecord(0, DecisionKind::Snapshot, 3, 41);
  R.AvgOps = 2.5;
  R.AvgMaxSize = 17.25;
  R.TotLive = 1024;
  Log.record(R);
  DecisionRecord Fired = makeRecord(0, DecisionKind::RuleOutcome, 3);
  Fired.Outcome = DecisionOutcome::Fired;
  Fired.Rule = 4;
  Fired.Impl = 2;
  Fired.Capacity = 64;
  Log.record(Fired);
  Log.record(makeRecord(~0u, DecisionKind::EpochMark, 3));
  Log.noteContextLabel(0, "server.QueryHandler.results");
  Log.noteRuleNames({"r0", "r1", "r2", "r3", "often-used-maps"});
  Log.noteImplNames({"ArrayList", "LinkedList", "HashMap"});

  std::string Doc = decisionsJson(Log.exportCanonical());
  DecisionExport Parsed;
  std::string Error;
  ASSERT_TRUE(decisionsFromJson(Doc, Parsed, &Error)) << Error;
  // Re-rendering the parsed export reproduces the document byte-for-byte
  // — the chameleon-stats --why --json property.
  EXPECT_EQ(decisionsJson(Parsed), Doc);
  ASSERT_EQ(Parsed.Events.size(), 3u);
  EXPECT_EQ(Parsed.RuleNames.back(), "often-used-maps");
  EXPECT_EQ(Parsed.Events[2].Outcome, DecisionOutcome::Fired);
  EXPECT_DOUBLE_EQ(Parsed.Events[1].AvgOps, 2.5);
}

TEST(DecisionLogTest, SignalSafeTailMatchesArrivalOrder) {
  LedgerScope Scope(/*Capacity=*/8);
  DecisionLog &Log = DecisionLog::instance();
  for (uint64_t I = 1; I <= 10; ++I)
    Log.record(makeRecord(static_cast<uint32_t>(I % 3), DecisionKind::Choice,
                          I));
  DecisionRecord Tail[8];
  size_t N = Log.unsafeTailForCrash(Tail, 8);
  ASSERT_EQ(N, 8u);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Tail[I].Epoch, I + 3) << "oldest-first arrival order";
  EXPECT_EQ(Log.unsafeDroppedForCrash(), 2u);
}

//===----------------------------------------------------------------------===//
// ServerSim byte-identity
//===----------------------------------------------------------------------===//

std::string ledgerJsonForThreads(uint32_t Threads) {
  CollectionRuntime RT(apps::serverSimRuntimeConfig());
  apps::ServerSimConfig Config;
  Config.MutatorThreads = Threads;
  Config.DecisionLedger = true;
  apps::runServerSim(RT, Config);
  std::string Doc = decisionsJson(DecisionLog::instance().exportCanonical());
  DecisionLog::instance().disarm();
  return Doc;
}

/// The ledger's provenance claim only holds if what it records does not
/// depend on scheduling: the exported decisions.json must be
/// byte-identical for any mutator-thread count (DESIGN.md §16).
TEST(DecisionLogTest, ServerSimLedgerByteIdenticalAcrossThreadCounts) {
  std::string One = ledgerJsonForThreads(1);
  ASSERT_FALSE(One.empty());
  EXPECT_NE(One.find("\"kind\":\"rule\""), std::string::npos);
  EXPECT_NE(One.find("\"kind\":\"migration_commit\""), std::string::npos);
  EXPECT_NE(One.find("\"kind\":\"epoch\""), std::string::npos);
  std::string Two = ledgerJsonForThreads(2);
  std::string Eight = ledgerJsonForThreads(8);
  EXPECT_EQ(One, Two)
      << "2-thread ledger diverged from the single-threaded baseline";
  EXPECT_EQ(One, Eight)
      << "8-thread ledger diverged from the single-threaded baseline";
}

//===----------------------------------------------------------------------===//
// Fleet merge
//===----------------------------------------------------------------------===//

DecisionExport makeExport(uint32_t CtxBase, const std::string &Label,
                          const std::string &RuleName, uint64_t Dropped) {
  DecisionExport E;
  DecisionRecord Epoch = makeRecord(~0u, DecisionKind::EpochMark, 1);
  Epoch.Seq = 0;
  E.Events.push_back(Epoch);
  DecisionRecord R = makeRecord(CtxBase, DecisionKind::RuleOutcome, 1);
  R.Outcome = DecisionOutcome::Fired;
  R.Rule = 0;
  R.Impl = 0;
  R.Seq = 0;
  E.Events.push_back(R);
  E.ContextLabels.emplace_back(CtxBase, Label);
  E.RuleNames = {RuleName};
  E.ImplNames = {"ArrayList"};
  E.Dropped = Dropped;
  return E;
}

TEST(FleetLedgerTest, MergeRenumbersContextsAndUnionsNameTables) {
  DecisionExport A = makeExport(5, "proc-a.ctx", "rule-a", 2);
  DecisionExport B = makeExport(9, "proc-b.ctx", "rule-b", 3);
  DecisionExport M = fleet::mergeDecisionExports({&A, &B});
  EXPECT_EQ(M.Dropped, 5u);
  // Context ids renumber onto a shared dense space, labels follow.
  ASSERT_EQ(M.ContextLabels.size(), 2u);
  EXPECT_EQ(M.ContextLabels[0].second, "proc-a.ctx");
  EXPECT_EQ(M.ContextLabels[1].second, "proc-b.ctx");
  EXPECT_EQ(M.ContextLabels[0].first, 0u);
  EXPECT_EQ(M.ContextLabels[1].first, 1u);
  // Name tables union with per-input index remapping: both rule events
  // still resolve to their own rule name.
  ASSERT_EQ(M.RuleNames.size(), 2u);
  ASSERT_EQ(M.Events.size(), 4u);
  for (const DecisionRecord &R : M.Events) {
    if (R.Kind != DecisionKind::RuleOutcome)
      continue;
    ASSERT_GE(R.Rule, 0);
    ASSERT_LT(static_cast<size_t>(R.Rule), M.RuleNames.size());
    const std::string &Name = M.RuleNames[static_cast<size_t>(R.Rule)];
    EXPECT_EQ(Name, R.CtxId == 0 ? "rule-a" : "rule-b");
  }
  // Identical inputs in canonical stream order merge to identical bytes.
  EXPECT_EQ(decisionsJson(M), decisionsJson(fleet::mergeDecisionExports(
                                  {&A, &B})));
}

//===----------------------------------------------------------------------===//
// Flight recorder crash path
//===----------------------------------------------------------------------===//

std::string slurp(const std::string &Path) {
  std::string Out;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

/// The records both sides of the crash test agree on.
std::vector<DecisionRecord> crashFixtureRecords() {
  std::vector<DecisionRecord> Recs;
  Recs.push_back(makeRecord(~0u, DecisionKind::EpochMark, 1, 100));
  DecisionRecord S = makeRecord(0, DecisionKind::Snapshot, 1, 42);
  S.AvgOps = 3.5;
  S.AvgMaxSize = 12.75;
  S.TotLive = 4096;
  Recs.push_back(S);
  DecisionRecord R = makeRecord(0, DecisionKind::RuleOutcome, 1);
  R.Outcome = DecisionOutcome::Fired;
  R.Rule = 2;
  R.Impl = 1;
  R.Capacity = 32;
  Recs.push_back(R);
  Recs.push_back(makeRecord(1, DecisionKind::MigrationStart, 1));
  Recs.push_back(makeRecord(1, DecisionKind::MigrationAbort, 2));
  return Recs;
}

/// End-to-end crash validation: a forked child arms the ledger, appends
/// a known record sequence, installs the flight recorder, and dies on a
/// real SIGSEGV. The parent parses the dump the handler left behind and
/// checks the ledger tail is exactly what a surviving process exports
/// for the same records — the "dump matches survivor WAL" contract.
TEST(FlightRecorderTest, CrashDumpParsesAndMatchesSurvivorExport) {
  const std::string DumpPath = ::testing::TempDir() + "fr-crash-test.json";
  std::remove(DumpPath.c_str());

  pid_t Child = fork();
  ASSERT_GE(Child, 0) << "fork failed";
  if (Child == 0) {
    // Child: no gtest assertions here — _exit on setup failure so the
    // parent sees a clean (non-signal) exit and fails the test.
    DecisionLog &Log = DecisionLog::instance();
    Log.arm(1024);
    for (const DecisionRecord &R : crashFixtureRecords())
      Log.record(R);
    if (!FlightRecorder::instance().install(DumpPath, "cham."))
      _exit(3);
    FlightRecorder::instance().checkpoint();
    std::raise(SIGSEGV);
    _exit(4); // unreachable: the handler re-raises
  }

  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status))
      << "child must die by signal (exit status " << Status << ")";
  EXPECT_EQ(WTERMSIG(Status), SIGSEGV)
      << "handler must re-raise the original signal";

  std::string Dump = slurp(DumpPath);
  ASSERT_FALSE(Dump.empty()) << "no dump at " << DumpPath;
  // The dump is one valid JSON document with the signal recorded.
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Dump, Doc, &Error)) << Error;
  EXPECT_EQ(Doc.numberOr("flight_recorder", 0), 1);
  EXPECT_EQ(Doc.numberOr("signal", 0), SIGSEGV);
  EXPECT_NE(Doc.find("checkpoint_metrics"), nullptr);
  EXPECT_NE(Doc.find("checkpoint_trace"), nullptr);

  // Ledger tail: parse through the same reader chameleon-stats uses and
  // compare against the canonical export of an identically-filled ledger.
  DecisionExport FromDump;
  ASSERT_TRUE(decisionsFromJson(Dump, FromDump, &Error)) << Error;
  LedgerScope Scope(1024);
  for (const DecisionRecord &R : crashFixtureRecords())
    DecisionLog::instance().record(R);
  DecisionExport Survivor = DecisionLog::instance().exportCanonical();
  ASSERT_EQ(FromDump.Events.size(), Survivor.Events.size());
  EXPECT_EQ(FromDump.Dropped, Survivor.Dropped);
  for (size_t I = 0; I < Survivor.Events.size(); ++I) {
    const DecisionRecord &D = FromDump.Events[I];
    const DecisionRecord &S = Survivor.Events[I];
    EXPECT_EQ(D.CtxId, S.CtxId) << I;
    EXPECT_EQ(D.Seq, S.Seq) << I;
    EXPECT_EQ(D.Epoch, S.Epoch) << I;
    EXPECT_EQ(D.Kind, S.Kind) << I;
    EXPECT_EQ(D.Outcome, S.Outcome) << I;
    EXPECT_EQ(D.Rule, S.Rule) << I;
    EXPECT_EQ(D.Impl, S.Impl) << I;
    EXPECT_EQ(D.Capacity, S.Capacity) << I;
    EXPECT_EQ(D.Allocations, S.Allocations) << I;
    EXPECT_EQ(D.TotLive, S.TotLive) << I;
    // Doubles travel as IEEE bit patterns: lossless round-trip.
    EXPECT_EQ(D.AvgOps, S.AvgOps) << I;
    EXPECT_EQ(D.AvgMaxSize, S.AvgMaxSize) << I;
  }
  std::remove(DumpPath.c_str());
}

} // namespace
