//===--- HdrHistogramTest.cpp - Log-linear histogram accuracy -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HDR-style histogram (DESIGN.md §16) under test: the fixed
/// log-linear bucket geometry, the 2^-HdrSubBucketBits (3.125%) relative
/// quantile error bound against exact quantiles of known distributions,
/// min/max clamping, and the snapshot path the exporters use — including
/// that a parsed snapshot re-renders the very same percentiles.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

using namespace chameleon::obs;

namespace {

/// Exact quantile of a sorted sample: the value at rank ceil(Q*N).
uint64_t exactQuantile(const std::vector<uint64_t> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(std::ceil(Q * Sorted.size()));
  if (Rank == 0)
    Rank = 1;
  return Sorted[std::min(Rank, Sorted.size()) - 1];
}

/// The guaranteed bound: an estimate may exceed the exact value by at
/// most one sub-bucket width, i.e. a 2^-HdrSubBucketBits relative error.
void expectWithinBound(uint64_t Estimate, uint64_t Exact, const char *What) {
  double Bound =
      static_cast<double>(Exact) / HdrSubBucketCount + 1.0; // +1: unit buckets
  EXPECT_GE(Estimate + static_cast<uint64_t>(Bound), Exact) << What;
  EXPECT_LE(static_cast<double>(Estimate),
            static_cast<double>(Exact) + Bound)
      << What << ": estimate " << Estimate << " vs exact " << Exact;
}

TEST(HdrGeometryTest, BucketIndexIsMonotoneAndBoundsContain) {
  size_t Prev = 0;
  for (uint64_t V : {0ull, 1ull, 31ull, 32ull, 33ull, 63ull, 64ull, 100ull,
                     1000ull, 123456ull, 1ull << 32, ~0ull}) {
    size_t I = hdrBucketIndex(V);
    EXPECT_LT(I, hdrNumBuckets());
    EXPECT_GE(I, Prev) << "index must be monotone in the value";
    Prev = I;
    // The bucket's inclusive upper bound contains the value...
    EXPECT_GE(hdrBucketUpperBound(I), V);
    // ...and overshoots by at most one sub-bucket width.
    uint64_t Over = hdrBucketUpperBound(I) - V;
    EXPECT_LE(Over, V / HdrSubBucketCount + 1) << "value " << V;
  }
}

TEST(HdrGeometryTest, SmallValuesLandInExactUnitBuckets) {
  for (uint64_t V = 0; V < HdrSubBucketCount; ++V)
    EXPECT_EQ(hdrBucketUpperBound(hdrBucketIndex(V)), V);
}

TEST(HdrHistogramTest, SingleValueCollapsesAllQuantiles) {
  HdrHistogram H("test.hdr.single");
  H.observe(777);
  for (double Q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(H.quantile(Q), 777u) << Q;
  EXPECT_EQ(H.min(), 777u);
  EXPECT_EQ(H.max(), 777u);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.sum(), 777u);
}

TEST(HdrHistogramTest, UniformQuantilesWithinErrorBound) {
  HdrHistogram H("test.hdr.uniform");
  std::vector<uint64_t> Values;
  for (uint64_t V = 1; V <= 100000; ++V) {
    H.observe(V);
    Values.push_back(V);
  }
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t Exact = exactQuantile(Values, Q);
    expectWithinBound(H.quantile(Q), Exact, "uniform");
  }
  EXPECT_EQ(H.quantile(1.0), 100000u) << "p100 clamps to the observed max";
  EXPECT_EQ(H.min(), 1u);
}

TEST(HdrHistogramTest, HeavyTailQuantilesWithinErrorBound) {
  // Deterministic splitmix-style stream shaped into a heavy tail: mostly
  // microsecond-scale with excursions past seconds — the GC-pause shape
  // the fixed-bucket Histogram cannot resolve.
  HdrHistogram H("test.hdr.tail");
  std::vector<uint64_t> Values;
  uint64_t X = 0x9E3779B97F4A7C15ull;
  for (int I = 0; I < 50000; ++I) {
    X += 0x9E3779B97F4A7C15ull;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    Z ^= Z >> 31;
    // Exponentiate a 0..17 range: values span 1ns .. ~100s.
    uint64_t V = 1 + (Z % 1000);
    unsigned Shift = static_cast<unsigned>((Z >> 32) % 18);
    V <<= Shift;
    H.observe(V);
    Values.push_back(V);
  }
  std::sort(Values.begin(), Values.end());
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t Exact = exactQuantile(Values, Q);
    expectWithinBound(H.quantile(Q), Exact, "heavy tail");
  }
}

TEST(HdrHistogramTest, SnapshotQuantileMatchesInstanceQuantile) {
  HdrHistogram H("test.hdrsnap.latency");
  for (uint64_t V = 1; V <= 5000; ++V)
    H.observe(V * 3);
  std::vector<MetricSnapshot> Snaps =
      MetricsRegistry::instance().snapshot("test.hdrsnap.");
  ASSERT_EQ(Snaps.size(), 1u);
  const MetricSnapshot &S = Snaps[0];
  EXPECT_EQ(S.Kind, MetricKind::Hdr);
  EXPECT_EQ(S.Count, 5000u);
  EXPECT_EQ(S.MinValue, 3u);
  EXPECT_EQ(S.MaxValue, 15000u);
  EXPECT_FALSE(S.HdrBuckets.empty());
  // The sparse snapshot carries the full distribution: the exporters'
  // quantile readout equals the live instance's.
  for (double Q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(hdrSnapshotQuantile(S, Q), H.quantile(Q)) << Q;
}

TEST(HdrHistogramTest, SameNameInstancesMergeAtSnapshot) {
  HdrHistogram A("test.hdrmerge.h");
  HdrHistogram B("test.hdrmerge.h");
  A.observe(10);
  A.observe(20);
  B.observe(1000);
  std::vector<MetricSnapshot> Snaps =
      MetricsRegistry::instance().snapshot("test.hdrmerge.");
  ASSERT_EQ(Snaps.size(), 1u);
  EXPECT_EQ(Snaps[0].Count, 3u);
  EXPECT_EQ(Snaps[0].Sum, 1030u);
  EXPECT_EQ(Snaps[0].MinValue, 10u);
  EXPECT_EQ(Snaps[0].MaxValue, 1000u);
  EXPECT_EQ(hdrSnapshotQuantile(Snaps[0], 1.0), 1000u);
}

} // namespace
