//===--- TelemetryTest.cpp - Telemetry layer tests ------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry layer (DESIGN.md §11) under test: registry correctness
/// under concurrent writers, histogram bucket boundaries, trace-ring
/// overwrite semantics, and golden renderings of every exporter (the JSON
/// snapshot chameleon-stats re-reads, Prometheus text, Chrome trace
/// JSON). The trace-site assertions are gated on CHAMELEON_NO_TELEMETRY
/// so the suite also passes in the compiled-out configuration — where it
/// instead asserts the sites really are gone.
///
//===----------------------------------------------------------------------===//

#include "fleet/Agent.h"
#include "fleet/Aggregator.h"
#include "fleet/Transport.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "runtime/GcHeap.h"
#include "runtime/ThreadCache.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace chameleon;
using namespace chameleon::obs;

namespace {

/// Snapshot filtered to one test-owned prefix (the process-global registry
/// also holds every cham.* metric of the linked runtime).
std::vector<MetricSnapshot> snapshotOf(const std::string &Prefix) {
  return MetricsRegistry::instance().snapshot(Prefix);
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CounterSumsConcurrentAdds) {
  Counter C("test.mt.counter");
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&C] {
      for (uint64_t I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), Threads * PerThread);

  std::vector<MetricSnapshot> Snaps = snapshotOf("test.mt.");
  ASSERT_EQ(Snaps.size(), 1u);
  EXPECT_EQ(Snaps[0].Name, "test.mt.counter");
  EXPECT_EQ(Snaps[0].Kind, MetricKind::Counter);
  EXPECT_EQ(Snaps[0].Value, Threads * PerThread);
}

TEST(MetricsTest, SameNameInstancesMergeAtSnapshot) {
  Counter A("test.merge.counter");
  Counter B("test.merge.counter");
  A.add(3);
  B.add(4);
  // Each instance reads only itself (per-instance accessor semantics)...
  EXPECT_EQ(A.value(), 3u);
  EXPECT_EQ(B.value(), 4u);
  // ...while the registry merges live same-name instances.
  std::vector<MetricSnapshot> Snaps = snapshotOf("test.merge.");
  ASSERT_EQ(Snaps.size(), 1u);
  EXPECT_EQ(Snaps[0].Value, 7u);
}

TEST(MetricsTest, InstanceUnregistersOnDestruction) {
  {
    Counter C("test.scoped.counter");
    C.inc();
    EXPECT_EQ(snapshotOf("test.scoped.").size(), 1u);
  }
  EXPECT_TRUE(snapshotOf("test.scoped.").empty());
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge G("test.gauge");
  G.set(10);
  G.add(-3);
  EXPECT_EQ(G.value(), 7);
  std::vector<MetricSnapshot> Snaps = snapshotOf("test.gauge");
  ASSERT_EQ(Snaps.size(), 1u);
  EXPECT_EQ(Snaps[0].GaugeValue, 7);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  Histogram H("test.hist", {10, 20});
  for (uint64_t V : {5u, 10u, 11u, 20u, 21u})
    H.observe(V);
  // Inclusive upper bounds: 5,10 -> le(10); 11,20 -> le(20); 21 -> +Inf.
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 67u);
}

TEST(MetricsTest, SnapshotIsNameSortedAndPrefixFiltered) {
  Counter B("test.sorted.b");
  Counter A("test.sorted.a");
  Gauge Z("test.zother");
  std::vector<MetricSnapshot> Snaps = snapshotOf("test.sorted.");
  ASSERT_EQ(Snaps.size(), 2u);
  EXPECT_EQ(Snaps[0].Name, "test.sorted.a");
  EXPECT_EQ(Snaps[1].Name, "test.sorted.b");
}

//===----------------------------------------------------------------------===//
// Trace recorder
//===----------------------------------------------------------------------===//

/// Arms the recorder for one test and disarms + clears on the way out so
/// no other test observes leftover events.
class RecorderScope {
public:
  explicit RecorderScope(uint32_t Capacity = TraceRecorder::DefaultCapacity) {
    TraceRecorder::instance().arm(Capacity);
  }
  ~RecorderScope() {
    TraceRecorder::instance().disarm();
    TraceRecorder::instance().clear();
  }
};

TEST(TraceTest, DisarmedRecorderKeepsNoEvents) {
  TraceRecorder &Rec = TraceRecorder::instance();
  Rec.disarm();
  Rec.clear();
  CHAM_TRACE_INSTANT("test", "ignored");
  { CHAM_TRACE_SPAN("test", "ignored_span"); }
  EXPECT_FALSE(TraceRecorder::enabled());
  EXPECT_TRUE(Rec.snapshot().empty());
  EXPECT_EQ(Rec.recordedEvents(), 0u);
}

/// Sum of every live instance of the trace-overflow counter.
uint64_t traceDropped() {
  uint64_t V = 0;
  for (const MetricSnapshot &S :
       MetricsRegistry::instance().snapshot("cham.obs.trace_dropped"))
    V += S.Value;
  return V;
}

TEST(TraceTest, RingOverwriteKeepsNewestEvents) {
  RecorderScope Scope(/*Capacity=*/4);
  TraceRecorder &Rec = TraceRecorder::instance();
  const uint64_t Dropped0 = traceDropped();
  for (uint64_t I = 1; I <= 6; ++I)
    Rec.recordInstant("test", "ev", "i", I);
  EXPECT_EQ(Rec.recordedEvents(), 6u);
  EXPECT_EQ(Rec.droppedEvents(), 2u);
  // The overflow is a first-class metric too, one tick per overwrite.
  EXPECT_EQ(traceDropped() - Dropped0, 2u);
  std::vector<TraceEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  // Oldest two were overwritten; survivors are in chronological order.
  for (size_t I = 0; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].ArgValue, I + 3);
}

TEST(TraceTest, SpansRecordDurationsAndInstantsDoNot) {
  RecorderScope Scope;
  TraceRecorder &Rec = TraceRecorder::instance();
  uint64_t Start = Rec.nowNanos();
  Rec.recordSpan("test", "span", Start, "k", 7);
  Rec.recordInstant("test", "instant");
  std::vector<TraceEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  const TraceEvent *Span = &Events[0];
  const TraceEvent *Instant = &Events[1];
  if (Span->Kind != TraceKind::Span)
    std::swap(Span, Instant);
  EXPECT_EQ(Span->Kind, TraceKind::Span);
  EXPECT_STREQ(Span->ArgName, "k");
  EXPECT_EQ(Span->ArgValue, 7u);
  EXPECT_EQ(Instant->Kind, TraceKind::Instant);
  EXPECT_EQ(Instant->DurNanos, 0u);
}

TEST(TraceTest, RecentByArgFiltersAndBounds) {
  RecorderScope Scope;
  TraceRecorder &Rec = TraceRecorder::instance();
  for (uint64_t I = 0; I < 10; ++I)
    Rec.recordInstant("test", "ctxev", "ctx", I % 2);
  Rec.recordInstant("test", "other", "task", 0);
  std::vector<TraceEvent> Recent = Rec.recentByArg("ctx", 0, 3);
  ASSERT_EQ(Recent.size(), 3u);
  for (const TraceEvent &Ev : Recent) {
    EXPECT_STREQ(Ev.ArgName, "ctx");
    EXPECT_EQ(Ev.ArgValue, 0u);
  }
}

TEST(TraceTest, ConcurrentWritersLoseNothingWithinCapacity) {
  RecorderScope Scope;
  TraceRecorder &Rec = TraceRecorder::instance();
  const uint64_t Dropped0 = traceDropped();
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 2000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&Rec] {
      for (uint64_t I = 0; I < PerThread; ++I)
        Rec.recordInstant("test", "mt");
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Rec.recordedEvents(), Threads * PerThread);
  EXPECT_EQ(Rec.droppedEvents(), 0u);
  EXPECT_EQ(Rec.snapshot().size(), Threads * PerThread);
  EXPECT_EQ(traceDropped() - Dropped0, 0u)
      << "within-capacity workload must not tick cham.obs.trace_dropped";
}

TEST(TraceTest, MacrosCompileOutWithNoTelemetry) {
  RecorderScope Scope;
  CHAM_TRACE_INSTANT_ARG("test", "macro_instant", "v", 1);
  { CHAM_TRACE_SPAN_ARG("test", "macro_span", "v", 2); }
#if defined(CHAMELEON_NO_TELEMETRY)
  EXPECT_EQ(TraceRecorder::instance().recordedEvents(), 0u);
#else
  EXPECT_EQ(TraceRecorder::instance().recordedEvents(), 2u);
#endif
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(ExporterTest, JsonGolden) {
  Counter C("testgold.a.counter");
  Gauge G("testgold.b.gauge");
  Histogram H("testgold.c.hist", {10, 20});
  C.add(42);
  G.set(-5);
  H.observe(5);
  H.observe(15);
  H.observe(25);
  EXPECT_EQ(Telemetry::snapshotJson("testgold."),
            "{\"metrics\":[\n"
            "  {\"name\":\"testgold.a.counter\",\"kind\":\"counter\","
            "\"value\":42},\n"
            "  {\"name\":\"testgold.b.gauge\",\"kind\":\"gauge\","
            "\"value\":-5},\n"
            "  {\"name\":\"testgold.c.hist\",\"kind\":\"histogram\","
            "\"count\":3,\"sum\":45,\"buckets\":["
            "{\"le\":10,\"count\":1},{\"le\":20,\"count\":1},"
            "{\"le\":\"+Inf\",\"count\":1}]}\n"
            "]}\n");
}

TEST(ExporterTest, PrometheusGolden) {
  Counter C("testgold.a.counter");
  Gauge G("testgold.b.gauge");
  Histogram H("testgold.c.hist", {10, 20});
  C.add(42);
  G.set(-5);
  H.observe(5);
  H.observe(15);
  H.observe(25);
  // Names sanitized ('.' -> '_'), histogram buckets cumulative.
  EXPECT_EQ(Telemetry::prometheusText("testgold."),
            "# TYPE testgold_a_counter counter\n"
            "testgold_a_counter 42\n"
            "# TYPE testgold_b_gauge gauge\n"
            "testgold_b_gauge -5\n"
            "# TYPE testgold_c_hist histogram\n"
            "testgold_c_hist_bucket{le=\"10\"} 1\n"
            "testgold_c_hist_bucket{le=\"20\"} 2\n"
            "testgold_c_hist_bucket{le=\"+Inf\"} 3\n"
            "testgold_c_hist_sum 45\n"
            "testgold_c_hist_count 3\n");
}

TEST(ExporterTest, JsonSnapshotRoundTripsThroughParser) {
  Counter C("testrt.counter");
  Gauge G("testrt.gauge");
  Histogram H("testrt.hist", {100});
  C.add(7);
  G.set(9);
  H.observe(50);
  H.observe(500);
  std::string Doc = Telemetry::snapshotJson("testrt.");

  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Doc, Parsed, &Error)) << Error;
  std::vector<MetricSnapshot> Snaps;
  ASSERT_TRUE(snapshotsFromJson(Parsed, Snaps, &Error)) << Error;
  ASSERT_EQ(Snaps.size(), 3u);

  // The re-read snapshots render to the very same documents — the
  // chameleon-stats byte-identity property.
  EXPECT_EQ(jsonFromSnapshots(Snaps), Doc);
  EXPECT_EQ(prometheusFromSnapshots(Snaps),
            Telemetry::prometheusText("testrt."));
}

TEST(ExporterTest, ChromeTraceJsonIsValidAndComplete) {
  std::vector<TraceEvent> Events;
  TraceEvent Span;
  Span.Category = "gc";
  Span.Name = "cycle";
  Span.ArgName = "cycle";
  Span.ArgValue = 1;
  Span.StartNanos = 1500;
  Span.DurNanos = 2500;
  Span.Tid = 0;
  Span.Kind = TraceKind::Span;
  Events.push_back(Span);
  TraceEvent Instant;
  Instant.Category = "profiler";
  Instant.Name = "shed_on";
  Instant.StartNanos = 3000;
  Instant.Tid = 1;
  Instant.Kind = TraceKind::Instant;
  Events.push_back(Instant);

  std::string Doc = chromeTraceFromEvents(Events);
  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Doc, Parsed, &Error)) << Error;
  const json::Value *Trace = Parsed.find("traceEvents");
  ASSERT_NE(Trace, nullptr);
  ASSERT_EQ(Trace->kind(), json::Value::Kind::Array);
  // process_name + 2 thread_name metadata + the 2 events.
  ASSERT_EQ(Trace->array().size(), 5u);

  const json::Value &SpanJson = Trace->array()[3];
  EXPECT_EQ(SpanJson.strOr("ph", ""), "X");
  EXPECT_EQ(SpanJson.strOr("cat", ""), "gc");
  EXPECT_DOUBLE_EQ(SpanJson.numberOr("ts", 0), 1.5);
  EXPECT_DOUBLE_EQ(SpanJson.numberOr("dur", 0), 2.5);
  const json::Value *Args = SpanJson.find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_DOUBLE_EQ(Args->numberOr("cycle", 0), 1);

  const json::Value &InstJson = Trace->array()[4];
  EXPECT_EQ(InstJson.strOr("ph", ""), "i");
  EXPECT_EQ(InstJson.strOr("s", ""), "t");
  EXPECT_EQ(InstJson.find("dur"), nullptr);
}

//===----------------------------------------------------------------------===//
// Allocator metrics
//===----------------------------------------------------------------------===//

/// Sum of every live instance of one cham.alloc.* metric.
uint64_t allocCounter(const std::string &Name) {
  uint64_t V = 0;
  for (const MetricSnapshot &S : MetricsRegistry::instance().snapshot(Name))
    V += S.Value;
  return V;
}

/// The allocation substrate (DESIGN.md §12) must be observable through the
/// same exporters as everything else: its counters appear in registry
/// snapshots, in the JSON bundle chameleon-stats re-reads, and in the
/// Prometheus text with the usual name sanitisation.
TEST(AllocMetricsTest, CountersExportThroughTelemetry) {
  // Touch the cached, central and direct paths so the counters are warm,
  // then publish the thread-local tallies.
  for (int I = 0; I < 64; ++I) {
    void *P = alloc::allocateBlock(40 + 8 * (I % 16));
    alloc::deallocateBlock(P);
  }
  void *Big = alloc::allocateBlock(alloc::kMaxPooledSize + 1);
  alloc::deallocateBlock(Big);
  alloc::threadCache().publishStats();

  std::vector<MetricSnapshot> Snaps = snapshotOf("cham.alloc.");
  auto Find = [&Snaps](const std::string &Name) -> const MetricSnapshot * {
    for (const MetricSnapshot &S : Snaps)
      if (S.Name == Name)
        return &S;
    return nullptr;
  };
  for (const char *Name :
       {"cham.alloc.cache_hits", "cham.alloc.cache_misses",
        "cham.alloc.transfer_batches", "cham.alloc.direct_allocs",
        "cham.alloc.spans_carved", "cham.alloc.central_contention",
        "cham.alloc.double_free", "cham.alloc.slot_cache_hits",
        "cham.alloc.slot_refills", "cham.alloc.locked_fallbacks"}) {
    const MetricSnapshot *S = Find(Name);
    ASSERT_NE(S, nullptr) << Name;
    EXPECT_EQ(S->Kind, MetricKind::Counter) << Name;
  }
  const MetricSnapshot *Reserved = Find("cham.alloc.reserved_bytes");
  ASSERT_NE(Reserved, nullptr);
  EXPECT_EQ(Reserved->Kind, MetricKind::Gauge);
  EXPECT_GT(Reserved->GaugeValue, 0) << "spans were carved above";
  EXPECT_GT(Find("cham.alloc.direct_allocs")->Value, 0u);

  // Both exporter renderings carry the substrate's counters.
  EXPECT_NE(Telemetry::snapshotJson("cham.alloc.")
                .find("cham.alloc.reserved_bytes"),
            std::string::npos);
  std::string Prom = Telemetry::prometheusText("cham.alloc.");
  EXPECT_NE(Prom.find("cham_alloc_cache_hits"), std::string::npos);
  EXPECT_NE(Prom.find("cham_alloc_reserved_bytes"), std::string::npos);
}

/// Deltas of the workload-determined alloc counters over one fixed
/// single-threaded workload.
struct AllocDeltas {
  uint64_t SlotHits;
  uint64_t SlotRefills;
  uint64_t LockedFallbacks;
  uint64_t DirectAllocs;
  uint64_t PoolAllocs; // cache hits + misses: every pooled block request

  bool operator==(const AllocDeltas &O) const = default;
};

AllocDeltas measureAllocWorkload() {
  using namespace chameleon::testing;
  // Make the cache state deterministic before measuring: return every
  // cached block centralward and drain the thread-local tallies.
  alloc::threadCache().flush();
  alloc::threadCache().publishStats();
  const uint64_t SlotHits0 = allocCounter("cham.alloc.slot_cache_hits");
  const uint64_t SlotRefills0 = allocCounter("cham.alloc.slot_refills");
  const uint64_t Fallbacks0 = allocCounter("cham.alloc.locked_fallbacks");
  const uint64_t Direct0 = allocCounter("cham.alloc.direct_allocs");
  const uint64_t Pool0 = allocCounter("cham.alloc.cache_hits") +
                         allocCounter("cham.alloc.cache_misses");
  {
    GcHeap Heap;
    TypeId Type = registerNodeType(Heap);
    std::vector<Handle> Roots;
    for (int I = 0; I < 3000; ++I) {
      ObjectRef R = allocNode(Heap, Type, 2, 8 + 8 * (I % 512));
      if (I % 7 == 0)
        Roots.emplace_back(Heap, R);
    }
    Heap.collect(true);
  }
  // Heap objects embed their variable parts in std::vector members, so
  // the direct path needs an explicit oversize block.
  void *Big = alloc::allocateBlock(alloc::kMaxPooledSize + 1);
  alloc::deallocateBlock(Big);
  alloc::threadCache().publishStats();
  return {allocCounter("cham.alloc.slot_cache_hits") - SlotHits0,
          allocCounter("cham.alloc.slot_refills") - SlotRefills0,
          allocCounter("cham.alloc.locked_fallbacks") - Fallbacks0,
          allocCounter("cham.alloc.direct_allocs") - Direct0,
          allocCounter("cham.alloc.cache_hits") +
              allocCounter("cham.alloc.cache_misses") - Pool0};
}

/// Identical single-threaded runs must move the workload-determined
/// counters by identical deltas — slot-cache traffic, locked fallbacks,
/// direct allocations, and total pooled requests (hits + misses; the
/// split between them may shift with the AIMD cache capacities the
/// process history left behind, their sum may not). spans_carved,
/// central_contention and reserved_bytes are deliberately excluded: they
/// depend on what earlier tests left in the central lists.
TEST(AllocMetricsTest, DeltasDeterministicAcrossIdenticalRuns) {
  (void)measureAllocWorkload(); // warm-up: settle arena + cache capacities
  AllocDeltas First = measureAllocWorkload();
  AllocDeltas Second = measureAllocWorkload();
  EXPECT_GT(First.SlotHits, 0u);
  EXPECT_GT(First.PoolAllocs, 0u);
  EXPECT_GT(First.DirectAllocs, 0u);
  EXPECT_EQ(First.SlotHits, Second.SlotHits);
  EXPECT_EQ(First.SlotRefills, Second.SlotRefills);
  EXPECT_EQ(First.LockedFallbacks, Second.LockedFallbacks);
  EXPECT_EQ(First.DirectAllocs, Second.DirectAllocs);
  EXPECT_EQ(First.PoolAllocs, Second.PoolAllocs);
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParsesNestedDocument) {
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"hi\\n\\u0041\"}",
      V, &Error))
      << Error;
  const json::Value *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->array().size(), 3u);
  EXPECT_DOUBLE_EQ(A->array()[1].number(), 2.5);
  EXPECT_DOUBLE_EQ(A->array()[2].number(), -300.0);
  const json::Value *B = V.find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->find("c")->boolean());
  EXPECT_TRUE(B->find("d")->isNull());
  EXPECT_EQ(V.strOr("s", ""), "hi\nA");
}

TEST(JsonTest, RejectsMalformedInput) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse("{\"a\": }", V, &Error));
  EXPECT_FALSE(json::parse("[1, 2", V, &Error));
  EXPECT_FALSE(json::parse("{} trailing", V, &Error));
  EXPECT_FALSE(json::parse("\"unterminated", V, &Error));
  EXPECT_FALSE(json::parse("", V, &Error));
}

TEST(JsonTest, EscapeRoundTrips) {
  std::string Escaped = json::escape("a\"b\\c\nd\x01");
  EXPECT_EQ(Escaped, "a\\\"b\\\\c\\nd\\u0001");
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse("\"" + Escaped + "\"", V, &Error)) << Error;
  EXPECT_EQ(V.str(), "a\"b\\c\nd\x01");
}

//===----------------------------------------------------------------------===//
// Fleet metrics
//===----------------------------------------------------------------------===//

/// Sum of every live instance of one cham.fleet.* metric.
uint64_t fleetCounter(const std::string &Name) {
  uint64_t V = 0;
  for (const MetricSnapshot &S : MetricsRegistry::instance().snapshot(Name))
    V += S.Value;
  return V;
}

struct FleetDeltas {
  uint64_t Commits = 0;
  uint64_t Sent = 0;
  uint64_t Updates = 0;
  uint64_t Acks = 0;
  uint64_t Persists = 0;
};

/// One fixed agent→aggregator exchange over the in-memory hub: four
/// committed epochs, fully drained. Single-threaded pump loop, no faults,
/// no wall time — the counter movement is workload-determined.
FleetDeltas measureFleetExchange() {
  uint64_t Commits0 = fleetCounter("cham.fleet.commits");
  uint64_t Sent0 = fleetCounter("cham.fleet.sent_records");
  uint64_t Updates0 = fleetCounter("cham.fleet.updates");
  uint64_t Acks0 = fleetCounter("cham.fleet.acks_sent");
  uint64_t Persists0 = fleetCounter("cham.fleet.snapshot_persists");

  fleet::InMemoryHub Hub;
  fleet::FleetAggregatorConfig GC;
  GC.PersistEveryUpdates = 1;
  fleet::FleetAggregator Agg(GC);
  fleet::FleetAgentConfig AC;
  AC.AgentId = "metrics-agent";
  fleet::FleetAgent Agent(AC, Hub);
  for (uint64_t E = 1; E <= 4; ++E) {
    fleet::ProcessProfile P;
    P.Epoch = E;
    P.HeapLive = {E * 100, 100, E};
    Agent.commitEpoch(std::move(P));
  }
  uint64_t Tick = 0;
  for (int Round = 0; Round < 200 && !Agent.drained(); ++Round) {
    Agent.pump(Tick++);
    for (auto &C : Hub.acceptAll())
      Agg.attach(std::move(C));
    Agg.pump();
  }
  EXPECT_TRUE(Agent.drained());

  return {fleetCounter("cham.fleet.commits") - Commits0,
          fleetCounter("cham.fleet.sent_records") - Sent0,
          fleetCounter("cham.fleet.updates") - Updates0,
          fleetCounter("cham.fleet.acks_sent") - Acks0,
          fleetCounter("cham.fleet.snapshot_persists") - Persists0};
}

/// Identical single-threaded fleet exchanges must move the fleet counters
/// by identical deltas — the determinism guard the other cham.* layers
/// already have. Backoff/retry counters are excluded only because this
/// run never fails; the exchange itself pins commits, sends, applied
/// updates, acks, and persists.
TEST(FleetMetricsTest, DeltasDeterministicAcrossIdenticalRuns) {
  FleetDeltas First = measureFleetExchange();
  FleetDeltas Second = measureFleetExchange();
  EXPECT_EQ(First.Commits, 4u);
  EXPECT_EQ(First.Sent, 4u);
  EXPECT_EQ(First.Updates, 4u);
  EXPECT_GT(First.Acks, 0u);
  EXPECT_GT(First.Persists, 0u);
  EXPECT_EQ(First.Commits, Second.Commits);
  EXPECT_EQ(First.Sent, Second.Sent);
  EXPECT_EQ(First.Updates, Second.Updates);
  EXPECT_EQ(First.Acks, Second.Acks);
  EXPECT_EQ(First.Persists, Second.Persists);
}

} // namespace
