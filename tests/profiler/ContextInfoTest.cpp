//===--- ContextInfoTest.cpp - Context statistics unit tests --------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profiler/ContextInfo.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

ObjectContextInfo makeUsage(uint32_t Adds, uint32_t Gets,
                            uint32_t MaxSize) {
  ObjectContextInfo Info;
  for (uint32_t I = 0; I < Adds; ++I)
    Info.count(OpKind::Add);
  for (uint32_t I = 0; I < Gets; ++I)
    Info.count(OpKind::Get);
  Info.noteSize(MaxSize);
  return Info;
}

TEST(ObjectContextInfo, CountsAndSizes) {
  ObjectContextInfo Info;
  Info.count(OpKind::Add);
  Info.count(OpKind::Add);
  Info.count(OpKind::Contains);
  Info.noteSize(2);
  Info.noteSize(5);
  Info.noteSize(3);
  EXPECT_EQ(Info.Counts[opIndex(OpKind::Add)], 2u);
  EXPECT_EQ(Info.Counts[opIndex(OpKind::Contains)], 1u);
  EXPECT_EQ(Info.MaxSize, 5u);
  EXPECT_EQ(Info.CurrentSize, 3u);
  EXPECT_EQ(Info.allOps(), 3u);
}

TEST(ObjectContextInfo, AllOpsExcludesCopiedFrom) {
  ObjectContextInfo Info;
  Info.count(OpKind::CopiedFrom);
  Info.count(OpKind::CopiedInto);
  EXPECT_EQ(Info.allOps(), 1u);
}

TEST(ContextInfo, RecordDeathAggregatesPerInstanceSamples) {
  ContextInfo Info(0, {1, 2}, "HashMap");
  ObjectContextInfo A = makeUsage(3, 10, 4);
  ObjectContextInfo B = makeUsage(5, 20, 6);
  Info.recordDeath(A);
  Info.recordDeath(B);
  EXPECT_EQ(Info.foldedInstances(), 2u);
  EXPECT_DOUBLE_EQ(Info.opStat(OpKind::Add).mean(), 4.0);
  EXPECT_DOUBLE_EQ(Info.opStat(OpKind::Get).mean(), 15.0);
  EXPECT_DOUBLE_EQ(Info.maxSizeStat().mean(), 5.0);
  EXPECT_DOUBLE_EQ(Info.totalOps(OpKind::Add), 8.0);
}

TEST(ContextInfo, RecordDeathIsIdempotentPerInstance) {
  ContextInfo Info(0, {1}, "ArrayList");
  ObjectContextInfo A = makeUsage(1, 0, 1);
  Info.recordDeath(A);
  Info.recordDeath(A); // harvest-then-sweep double fold
  EXPECT_EQ(Info.foldedInstances(), 1u);
}

TEST(ContextInfo, RecordAllocationTracksCapacity) {
  ContextInfo Info(0, {1}, "ArrayList");
  Info.recordAllocation(10);
  Info.recordAllocation(20);
  EXPECT_EQ(Info.allocations(), 2u);
  EXPECT_DOUBLE_EQ(Info.initialCapacityStat().mean(), 15.0);
}

TEST(ContextInfo, CycleAccumulationFoldsIntoTotalMax) {
  ContextInfo Info(0, {1}, "HashMap");
  CollectionSizes S1{100, 80, 40};
  CollectionSizes S2{60, 50, 20};

  // Two wrappers in cycle 1.
  EXPECT_TRUE(Info.accumulateCycle(1, S1));
  EXPECT_FALSE(Info.accumulateCycle(1, S2));
  Info.finishCycle();

  // One wrapper in cycle 2.
  EXPECT_TRUE(Info.accumulateCycle(2, S1));
  Info.finishCycle();

  EXPECT_EQ(Info.liveData().total(), 260u);
  EXPECT_EQ(Info.liveData().max(), 160u);
  EXPECT_EQ(Info.usedData().total(), 210u); // (80+50) + 80
  EXPECT_EQ(Info.coreData().total(), 100u); // (40+20) + 40
  EXPECT_EQ(Info.liveObjects().total(), 3u);
  EXPECT_EQ(Info.liveObjects().max(), 2u);
}

TEST(ContextInfo, SavingPotentialIsLiveMinusUsed) {
  ContextInfo Info(0, {1}, "HashMap");
  Info.accumulateCycle(1, {100, 30, 10});
  Info.finishCycle();
  EXPECT_EQ(Info.savingPotential(), 70u);
}

TEST(ContextInfo, AvgAllOpsSumsOperationMeans) {
  ContextInfo Info(0, {1}, "ArrayList");
  ObjectContextInfo A = makeUsage(2, 4, 3);
  Info.recordDeath(A);
  EXPECT_DOUBLE_EQ(Info.avgAllOps(), 6.0);
}

} // namespace
