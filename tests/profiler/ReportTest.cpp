//===--- ReportTest.cpp - Profiler report rendering unit tests -----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profiler/Report.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(LiveDataSeries, ExtractsFractionsPerCycle) {
  std::vector<GcCycleRecord> Cycles(2);
  Cycles[0].Cycle = 1;
  Cycles[0].LiveBytes = 1000;
  Cycles[0].CollectionLiveBytes = 700;
  Cycles[0].CollectionUsedBytes = 400;
  Cycles[0].CollectionCoreBytes = 100;
  Cycles[1].Cycle = 2;
  Cycles[1].LiveBytes = 2000;
  Cycles[1].CollectionLiveBytes = 500;
  Cycles[1].CollectionUsedBytes = 250;
  Cycles[1].CollectionCoreBytes = 200;

  std::vector<LiveDataPoint> Series = liveDataSeries(Cycles);
  ASSERT_EQ(Series.size(), 2u);
  EXPECT_DOUBLE_EQ(Series[0].LiveFraction, 0.7);
  EXPECT_DOUBLE_EQ(Series[0].UsedFraction, 0.4);
  EXPECT_DOUBLE_EQ(Series[0].CoreFraction, 0.1);
  EXPECT_DOUBLE_EQ(Series[1].LiveFraction, 0.25);
  EXPECT_EQ(Series[1].Cycle, 2u);
}

TEST(LiveDataSeries, RenderedTableHasHeaderAndRows) {
  std::vector<GcCycleRecord> Cycles(1);
  Cycles[0].Cycle = 1;
  Cycles[0].LiveBytes = 100;
  Cycles[0].CollectionLiveBytes = 50;
  std::string Out = renderLiveDataSeries(liveDataSeries(Cycles));
  EXPECT_NE(Out.find("GC#"), std::string::npos);
  EXPECT_NE(Out.find("live%"), std::string::npos);
  EXPECT_NE(Out.find("50.0%"), std::string::npos);
}

TEST(TopContexts, BuildsRankedSummaries) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("HashMap");
  ContextInfo *Info;
  {
    CallFrame Caller(P, "caller");
    Info = P.contextForAllocation(Site, Type);
  }
  ASSERT_NE(Info, nullptr);
  Info->recordAllocation(16);
  ObjectContextInfo Usage;
  Usage.count(OpKind::Get);
  Usage.count(OpKind::Get);
  Usage.count(OpKind::Put);
  Usage.noteSize(3);
  Info->recordDeath(Usage);

  HeapObject Dummy(/*Type=*/0, /*ShallowBytes=*/8);
  P.onLiveCollection(Dummy, {100, 40, 10}, Info);
  GcCycleRecord Rec;
  Rec.LiveBytes = 200;
  Rec.CollectionLiveBytes = 100;
  Rec.CollectionUsedBytes = 40;
  Rec.CollectionCoreBytes = 10;
  P.onCycleEnd(Rec);

  std::vector<ContextSummary> Top = topContexts(P, 4);
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(Top[0].Label, "HashMap:site:1;caller");
  // Potential 60 of 200 heap-live bytes.
  EXPECT_DOUBLE_EQ(Top[0].PotentialOfHeap, 0.3);
  // get dominates the op distribution.
  ASSERT_FALSE(Top[0].OpDistribution.empty());
  EXPECT_EQ(Top[0].OpDistribution[0].first, "get(Object)");
  EXPECT_NEAR(Top[0].OpDistribution[0].second, 2.0 / 3.0, 1e-9);

  std::string Rendered = renderTopContexts(Top);
  EXPECT_NE(Rendered.find("1: HashMap:site:1;caller"), std::string::npos);
  EXPECT_NE(Rendered.find("potential: 30.0%"), std::string::npos);
}

TEST(ContextDetail, RendersSizesOpsAndHeapRows) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:9");
  ContextInfo *Info;
  {
    CallFrame Caller(P, "caller");
    Info = P.contextForAllocation(Site, P.internFrame("HashMap"));
  }
  Info->recordAllocation(16);
  ObjectContextInfo Usage;
  Usage.count(OpKind::Put);
  Usage.count(OpKind::Get);
  Usage.count(OpKind::Get);
  Usage.noteSize(3);
  Info->recordDeath(Usage);
  HeapObject Dummy(0, 8);
  P.onLiveCollection(Dummy, {200, 120, 40}, Info);
  GcCycleRecord Rec;
  Rec.LiveBytes = 400;
  P.onCycleEnd(Rec);

  std::string Out = renderContextDetail(P, *Info);
  EXPECT_NE(Out.find("context: HashMap:site:9;caller"),
            std::string::npos);
  EXPECT_NE(Out.find("allocations: 1, folded instances: 1"),
            std::string::npos);
  EXPECT_NE(Out.find("max size"), std::string::npos);
  EXPECT_NE(Out.find("get(Object)"), std::string::npos);
  EXPECT_NE(Out.find("put"), std::string::npos);
  EXPECT_EQ(Out.find("removeFirst"), std::string::npos)
      << "zero-count ops are omitted";
  EXPECT_NE(Out.find("live data"), std::string::npos);
  EXPECT_NE(Out.find("saving potential"), std::string::npos);
  EXPECT_NE(Out.find("80 B"), std::string::npos); // 200 - 120
}

TEST(TypeDistribution, ResolvesNamesAndSorts) {
  TypeRegistry Types;
  SemanticMap A;
  A.Name = "LinkedList$Entry";
  TypeId IdA = Types.registerType(std::move(A));
  SemanticMap B;
  B.Name = "Object[]";
  TypeId IdB = Types.registerType(std::move(B));

  GcCycleRecord Rec;
  Rec.LiveBytes = 1000;
  Rec.TypeDistribution = {{IdB, 100}, {IdA, 250}};

  std::vector<TypeShare> Shares = typeDistribution(Rec, Types);
  ASSERT_EQ(Shares.size(), 2u);
  EXPECT_EQ(Shares[0].Name, "LinkedList$Entry");
  EXPECT_EQ(Shares[0].Bytes, 250u);
  EXPECT_DOUBLE_EQ(Shares[0].Fraction, 0.25);
  EXPECT_EQ(Shares[1].Name, "Object[]");

  std::string Out = renderTypeDistribution(Shares);
  EXPECT_NE(Out.find("LinkedList$Entry"), std::string::npos);
  EXPECT_NE(Out.find("25.0%"), std::string::npos);
}

TEST(TopContexts, LimitsToN) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("ArrayList");
  for (int I = 0; I < 6; ++I) {
    CallFrame Caller(P, "caller" + std::to_string(I));
    (void)P.contextForAllocation(Site, Type);
  }
  EXPECT_EQ(topContexts(P, 4).size(), 4u);
}

} // namespace
