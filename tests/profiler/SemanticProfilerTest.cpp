//===--- SemanticProfilerTest.cpp - Profiler unit tests --------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profiler/SemanticProfiler.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(SemanticProfiler, InternFrameIsIdempotent) {
  SemanticProfiler P;
  FrameId A = P.internFrame("Foo.bar:10");
  FrameId B = P.internFrame("Foo.bar:10");
  FrameId C = P.internFrame("Foo.baz:20");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(P.frameName(A), "Foo.bar:10");
}

TEST(SemanticProfiler, CallFramePushesAndPops) {
  SemanticProfiler P;
  EXPECT_EQ(P.stackDepth(), 0u);
  {
    CallFrame F1(P, "a");
    EXPECT_EQ(P.stackDepth(), 1u);
    {
      CallFrame F2(P, "b");
      EXPECT_EQ(P.stackDepth(), 2u);
    }
    EXPECT_EQ(P.stackDepth(), 1u);
  }
  EXPECT_EQ(P.stackDepth(), 0u);
}

TEST(SemanticProfiler, SameSiteSameCallerSameContext) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("HashMap");
  CallFrame Caller(P, "caller");
  ContextInfo *A = P.contextForAllocation(Site, Type);
  ContextInfo *B = P.contextForAllocation(Site, Type);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A, B);
  EXPECT_EQ(P.contexts().size(), 1u);
}

TEST(SemanticProfiler, DifferentCallersSeparateContexts) {
  // The factory motivation of §2.1: same site, different callers.
  SemanticProfiler P;
  FrameId Site = P.internFrame("Factory.make:31");
  FrameId Type = P.internFrame("HashMap");
  ContextInfo *A;
  ContextInfo *B;
  {
    CallFrame Caller(P, "callerA");
    A = P.contextForAllocation(Site, Type);
  }
  {
    CallFrame Caller(P, "callerB");
    B = P.contextForAllocation(Site, Type);
  }
  EXPECT_NE(A, B);
  EXPECT_EQ(P.contexts().size(), 2u);
}

TEST(SemanticProfiler, DifferentTypesSeparateContexts) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  ContextInfo *A = P.contextForAllocation(Site, P.internFrame("HashMap"));
  ContextInfo *B = P.contextForAllocation(Site, P.internFrame("ArrayList"));
  EXPECT_NE(A, B);
}

TEST(SemanticProfiler, ContextDepthBoundsTheKey) {
  ProfilerConfig Config;
  Config.ContextDepth = 2; // site + one caller
  SemanticProfiler P(Config);
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("HashMap");
  ContextInfo *A;
  ContextInfo *B;
  {
    CallFrame Outer(P, "outerA");
    CallFrame Inner(P, "inner");
    A = P.contextForAllocation(Site, Type);
  }
  {
    CallFrame Outer(P, "outerB"); // differs only beyond the depth
    CallFrame Inner(P, "inner");
    B = P.contextForAllocation(Site, Type);
  }
  EXPECT_EQ(A, B) << "frames beyond the partial depth must not split "
                     "contexts";
  EXPECT_EQ(A->frames().size(), 2u);
}

TEST(SemanticProfiler, DisabledProfilerCapturesNothing) {
  ProfilerConfig Config;
  Config.Enabled = false;
  SemanticProfiler P(Config);
  FrameId Site = P.internFrame("site:1");
  EXPECT_EQ(P.contextForAllocation(Site, P.internFrame("HashMap")),
            nullptr);
  EXPECT_EQ(P.contextAcquisitions(), 0u);
}

TEST(SemanticProfiler, SamplingSkipsAllButOneInN) {
  ProfilerConfig Config;
  Config.SamplingPeriod = 4;
  SemanticProfiler P(Config);
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("HashMap");
  unsigned Captured = 0;
  for (int I = 0; I < 100; ++I)
    Captured += P.contextForAllocation(Site, Type) != nullptr;
  EXPECT_EQ(Captured, 25u);
  EXPECT_EQ(P.allocationsSampledOut(), 75u);
}

TEST(SemanticProfiler, ContextLabelHasPaperFormat) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("tvla.util.HashMapFactory:31");
  FrameId Type = P.internFrame("HashMap");
  CallFrame Caller(P, "tvla.core.base.BaseTVS:50");
  ContextInfo *Info = P.contextForAllocation(Site, Type);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(P.contextLabel(*Info),
            "HashMap:tvla.util.HashMapFactory:31;tvla.core.base.BaseTVS:50");
}

TEST(SemanticProfiler, HooksAggregateHeapStats) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  ContextInfo *Info = P.contextForAllocation(Site, P.internFrame("HashMap"));
  ASSERT_NE(Info, nullptr);

  HeapObject Dummy(/*Type=*/0, /*ShallowBytes=*/8);
  CollectionSizes Sizes{100, 60, 20};
  P.onLiveCollection(Dummy, Sizes, Info);
  GcCycleRecord Rec;
  Rec.LiveBytes = 500;
  Rec.CollectionLiveBytes = 100;
  Rec.CollectionUsedBytes = 60;
  Rec.CollectionCoreBytes = 20;
  P.onCycleEnd(Rec);

  EXPECT_EQ(Info->liveData().total(), 100u);
  EXPECT_EQ(Info->usedData().total(), 60u);
  EXPECT_EQ(P.heapLiveData().total(), 500u);
  EXPECT_EQ(P.cyclesSeen(), 1u);
}

TEST(SemanticProfiler, DeathHookFoldsObjectInfo) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  ContextInfo *Info = P.contextForAllocation(Site, P.internFrame("HashMap"));
  ObjectContextInfo Usage;
  Usage.count(OpKind::Put);
  Usage.noteSize(3);
  HeapObject Dummy(/*Type=*/0, /*ShallowBytes=*/8);
  P.onCollectionDeath(Dummy, Info, &Usage);
  EXPECT_EQ(Info->foldedInstances(), 1u);
  EXPECT_DOUBLE_EQ(Info->opStat(OpKind::Put).mean(), 1.0);
}

TEST(SemanticProfiler, RankedByPotentialOrdersDescending) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("HashMap");
  ContextInfo *Small;
  ContextInfo *Big;
  {
    CallFrame Caller(P, "small");
    Small = P.contextForAllocation(Site, Type);
  }
  {
    CallFrame Caller(P, "big");
    Big = P.contextForAllocation(Site, Type);
  }
  HeapObject Dummy(/*Type=*/0, /*ShallowBytes=*/8);
  P.onLiveCollection(Dummy, {100, 90, 10}, Small); // potential 10
  P.onLiveCollection(Dummy, {100, 20, 10}, Big);   // potential 80
  GcCycleRecord Rec;
  P.onCycleEnd(Rec);

  std::vector<ContextInfo *> Ranked = P.rankedByPotential();
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_EQ(Ranked[0], Big);
  EXPECT_EQ(Ranked[1], Small);
}

TEST(SemanticProfiler, FastPathHitsOnRepeatedCapture) {
  SemanticProfiler P;
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("HashMap");
  CallFrame Caller(P, "caller");
  ContextInfo *First = P.contextForAllocation(Site, Type);
  uint64_t MissesAfterFirst = P.contextCacheMisses();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(P.contextForAllocation(Site, Type), First);
  EXPECT_EQ(P.contextCacheHits(), 100u);
  EXPECT_EQ(P.contextCacheMisses(), MissesAfterFirst);
}

TEST(SemanticProfiler, FastPathMatchesSlowPathAcrossStacks) {
  // The same capture sequence with the cache on and off must produce the
  // same set of contexts with the same frame vectors — the fingerprint
  // cache is purely a performance knob.
  auto Capture = [](bool FastPath) {
    ProfilerConfig Config;
    Config.ContextFastPath = FastPath;
    SemanticProfiler P(Config);
    FrameId Site = P.internFrame("Factory.make:31");
    FrameId Type = P.internFrame("HashMap");
    std::vector<std::string> Labels;
    for (int Round = 0; Round < 3; ++Round) {
      for (int CallerIdx = 0; CallerIdx < 5; ++CallerIdx) {
        CallFrame Outer(P, "outer" + std::to_string(CallerIdx));
        Labels.push_back(
            P.contextLabel(*P.contextForAllocation(Site, Type)));
        {
          CallFrame Inner(P, "inner");
          Labels.push_back(
              P.contextLabel(*P.contextForAllocation(Site, Type)));
        }
        // Same depth again after the pop: must re-match the outer context.
        Labels.push_back(
            P.contextLabel(*P.contextForAllocation(Site, Type)));
      }
    }
    return std::make_pair(Labels, P.contexts().size());
  };
  auto [FastLabels, FastCount] = Capture(true);
  auto [SlowLabels, SlowCount] = Capture(false);
  EXPECT_EQ(FastLabels, SlowLabels);
  EXPECT_EQ(FastCount, SlowCount);
}

TEST(SemanticProfiler, FastPathDistinguishesSiblingStacks) {
  // Stacks that agree on the top frames but differ deeper still hit the
  // correct context: the fingerprint covers the whole stack, so each deep
  // variant occupies its own cache line yet maps to the same ContextInfo.
  ProfilerConfig Config;
  Config.ContextDepth = 2;
  SemanticProfiler P(Config);
  FrameId Site = P.internFrame("site:1");
  FrameId Type = P.internFrame("ArrayList");
  ContextInfo *FromA;
  ContextInfo *FromB;
  {
    CallFrame Deep(P, "deepA");
    CallFrame Caller(P, "caller");
    FromA = P.contextForAllocation(Site, Type);
  }
  {
    CallFrame Deep(P, "deepB");
    CallFrame Caller(P, "caller");
    FromB = P.contextForAllocation(Site, Type);
  }
  // Depth 2 keys on (site, caller) only, so both stacks share a context.
  EXPECT_EQ(FromA, FromB);
  {
    CallFrame Deep(P, "deepA");
    CallFrame Caller(P, "caller");
    EXPECT_EQ(P.contextForAllocation(Site, Type), FromA);
  }
  EXPECT_GE(P.contextCacheHits(), 1u);
}

TEST(SemanticProfiler, FingerprintTracksPushPop) {
  SemanticProfiler P;
  uint64_t Empty = P.stackFingerprint();
  FrameId A = P.internFrame("a");
  FrameId B = P.internFrame("b");
  P.pushFrame(A);
  uint64_t AfterA = P.stackFingerprint();
  EXPECT_NE(AfterA, Empty);
  P.pushFrame(B);
  EXPECT_NE(P.stackFingerprint(), AfterA);
  P.popFrame();
  EXPECT_EQ(P.stackFingerprint(), AfterA);
  P.popFrame();
  EXPECT_EQ(P.stackFingerprint(), Empty);
}

} // namespace
