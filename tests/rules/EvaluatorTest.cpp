//===--- EvaluatorTest.cpp - Rule evaluator unit tests ---------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Evaluator.h"

#include "rules/Parser.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::rules;

namespace {

/// Builds a profiler + context preloaded with a synthetic profile.
struct EvaluatorTest : ::testing::Test {
  SemanticProfiler Profiler;
  ContextInfo *Info = nullptr;

  void SetUp() override {
    FrameId Site = Profiler.internFrame("site:1");
    Info = Profiler.contextForAllocation(
        Site, Profiler.internFrame("HashMap"));
    ASSERT_NE(Info, nullptr);

    // Three dead instances: 4/6/8 gets, max sizes 3/3/3, one put each.
    for (uint32_t Gets : {4u, 6u, 8u}) {
      ObjectContextInfo Usage;
      for (uint32_t I = 0; I < Gets; ++I)
        Usage.count(OpKind::Get);
      Usage.count(OpKind::Put);
      Usage.noteSize(3);
      Info->recordDeath(Usage);
      Info->recordAllocation(16);
    }
    // Heap stats: one cycle of 100 live / 60 used / 20 core.
    HeapObject Dummy(0, 8);
    Profiler.onLiveCollection(Dummy, {100, 60, 20}, Info);
    GcCycleRecord Rec;
    Rec.LiveBytes = 400;
    Profiler.onCycleEnd(Rec);
  }

  /// Parses a single condition by wrapping it in a throwaway rule.
  CondPtr cond(const std::string &Text) {
    ParseResult R = parseRules("Collection : " + Text + " -> warn");
    EXPECT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
    EXPECT_EQ(R.Rules.size(), 1u);
    return std::move(R.Rules[0].Condition);
  }

  bool eval(const std::string &Text) {
    Evaluator E(*Info, Profiler);
    CondPtr C = cond(Text);
    return C && E.evalCond(*C);
  }
};

TEST_F(EvaluatorTest, OpCountIsPerInstanceAverage) {
  EXPECT_TRUE(eval("#get(Object) == 6"));
  EXPECT_TRUE(eval("#put == 1"));
  EXPECT_TRUE(eval("#add == 0"));
}

TEST_F(EvaluatorTest, OpVarianceIsStddev) {
  // Gets are 4/6/8: population stddev = sqrt(8/3) ~ 1.633.
  EXPECT_TRUE(eval("@get(Object) > 1.6"));
  EXPECT_TRUE(eval("@get(Object) < 1.7"));
  EXPECT_TRUE(eval("@put == 0"));
}

TEST_F(EvaluatorTest, SizeMetrics) {
  EXPECT_TRUE(eval("maxSize == 3"));
  EXPECT_TRUE(eval("@maxSize == 0"));
  EXPECT_TRUE(eval("size == 3"));
  EXPECT_TRUE(eval("initialCapacity == 16"));
  EXPECT_TRUE(eval("allocCount == 3"));
}

TEST_F(EvaluatorTest, AllOpsSumsAverages) {
  // 6 gets + 1 put per instance on average.
  EXPECT_TRUE(eval("#allOps == 7"));
}

TEST_F(EvaluatorTest, HeapMetrics) {
  EXPECT_TRUE(eval("totLive == 100"));
  EXPECT_TRUE(eval("maxLive == 100"));
  EXPECT_TRUE(eval("totUsed == 60"));
  EXPECT_TRUE(eval("totCore == 20"));
  EXPECT_TRUE(eval("potential == 40"));
  EXPECT_TRUE(eval("heapTotLive == 400"));
  EXPECT_TRUE(eval("totObjects == 1"));
}

TEST_F(EvaluatorTest, ArithmeticAndPrecedence) {
  EXPECT_TRUE(eval("totLive - totUsed == 40"));
  EXPECT_TRUE(eval("2 + 3 * 4 == 14"));
  EXPECT_TRUE(eval("(2 + 3) * 4 == 20"));
  EXPECT_TRUE(eval("totLive / totUsed > 1.6"));
}

TEST_F(EvaluatorTest, DivisionByZeroYieldsZero) {
  EXPECT_TRUE(eval("#add / #remove(Object) == 0"));
}

TEST_F(EvaluatorTest, DivisionGuardHitsAreCounted) {
  Evaluator E(*Info, Profiler);
  EXPECT_EQ(E.divGuardHits(), 0u);
  CondPtr Guarded = cond("#add / #remove(Object) == 0");
  EXPECT_TRUE(E.evalCond(*Guarded));
  EXPECT_EQ(E.divGuardHits(), 1u);
  // A clean division leaves the counter alone; a second x/0 adds to it.
  CondPtr Clean = cond("totLive / totUsed > 1.6");
  EXPECT_TRUE(E.evalCond(*Clean));
  EXPECT_EQ(E.divGuardHits(), 1u);
  CondPtr Again = cond("#put / @put == 0");
  EXPECT_TRUE(E.evalCond(*Again));
  EXPECT_EQ(E.divGuardHits(), 2u);
}

TEST_F(EvaluatorTest, BooleanConnectives) {
  EXPECT_TRUE(eval("maxSize == 3 && #put == 1"));
  EXPECT_FALSE(eval("maxSize == 3 && #put == 2"));
  EXPECT_TRUE(eval("maxSize == 9 || #put == 1"));
  EXPECT_TRUE(eval("!(maxSize == 9)"));
}

TEST_F(EvaluatorTest, ComparisonOperators) {
  EXPECT_TRUE(eval("maxSize >= 3"));
  EXPECT_TRUE(eval("maxSize <= 3"));
  EXPECT_FALSE(eval("maxSize != 3"));
  EXPECT_TRUE(eval("maxSize < 4"));
  EXPECT_FALSE(eval("maxSize > 3"));
}

TEST_F(EvaluatorTest, TracksSizeMetricUsage) {
  Evaluator E(*Info, Profiler);
  CondPtr C = cond("maxSize > 1 && #put == 1");
  ASSERT_TRUE(C);
  E.evalCond(*C);
  EXPECT_TRUE(E.usedMaxSize());
  EXPECT_FALSE(E.usedFinalSize());

  Evaluator E2(*Info, Profiler);
  CondPtr C2 = cond("#put == 1");
  E2.evalCond(*C2);
  EXPECT_FALSE(E2.usedMaxSize());
}

TEST_F(EvaluatorTest, StddevReferencesDoNotTripTheStabilityFlag) {
  // Explicit @maxSize use is the rule author asking about stability, not
  // depending on the mean.
  Evaluator E(*Info, Profiler);
  CondPtr C = cond("@maxSize == 0");
  E.evalCond(*C);
  EXPECT_FALSE(E.usedMaxSize());
}

} // namespace
