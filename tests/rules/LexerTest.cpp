//===--- LexerTest.cpp - Rule-language lexer unit tests --------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Lexer.h"

#include <gtest/gtest.h>

using namespace chameleon::rules;

namespace {

std::vector<Token> lex(const std::string &Source) {
  return Lexer(Source).lexAll();
}

TEST(Lexer, EmptyInputIsJustEof) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(Lexer, PunctuationAndOperators) {
  std::vector<Token> Tokens =
      lex(": -> ( ) [ ] , ; && || ! < <= > >= == != + - * /");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds,
            (std::vector<TokenKind>{
                TokenKind::Colon, TokenKind::Arrow, TokenKind::LParen,
                TokenKind::RParen, TokenKind::LBracket,
                TokenKind::RBracket, TokenKind::Comma,
                TokenKind::Semicolon, TokenKind::AndAnd, TokenKind::OrOr,
                TokenKind::Not, TokenKind::Less, TokenKind::LessEq,
                TokenKind::Greater, TokenKind::GreaterEq, TokenKind::EqEq,
                TokenKind::NotEq, TokenKind::Plus, TokenKind::Minus,
                TokenKind::Star, TokenKind::Slash, TokenKind::Eof}));
}

TEST(Lexer, SingleEqualsIsAcceptedAsEquality) {
  // Fig. 4 writes `expr = constant`.
  std::vector<Token> Tokens = lex("=");
  EXPECT_TRUE(Tokens[0].is(TokenKind::EqEq));
}

TEST(Lexer, NumbersIncludingDecimals) {
  std::vector<Token> Tokens = lex("42 3.5 0");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_DOUBLE_EQ(Tokens[0].NumberValue, 42.0);
  EXPECT_DOUBLE_EQ(Tokens[1].NumberValue, 3.5);
  EXPECT_DOUBLE_EQ(Tokens[2].NumberValue, 0.0);
}

TEST(Lexer, IdentifiersAndKeywordsAreIdents) {
  std::vector<Token> Tokens = lex("ArrayList maxSize setCapacity");
  ASSERT_EQ(Tokens.size(), 4u);
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Tokens[I].is(TokenKind::Ident));
  EXPECT_EQ(Tokens[0].Text, "ArrayList");
}

TEST(Lexer, OpCountersIncludeParameterLists) {
  std::vector<Token> Tokens =
      lex("#contains #get(int) #addAll(int,Collection) @add @maxSize");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::OpCount));
  EXPECT_EQ(Tokens[0].Text, "contains");
  EXPECT_EQ(Tokens[1].Text, "get(int)");
  EXPECT_EQ(Tokens[2].Text, "addAll(int,Collection)");
  EXPECT_TRUE(Tokens[3].is(TokenKind::OpVar));
  EXPECT_EQ(Tokens[3].Text, "add");
  EXPECT_EQ(Tokens[4].Text, "maxSize");
}

TEST(Lexer, StringsCarryTheirText) {
  std::vector<Token> Tokens = lex("\"Space: too big\"");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::String));
  EXPECT_EQ(Tokens[0].Text, "Space: too big");
}

TEST(Lexer, LineCommentsAreSkipped) {
  std::vector<Token> Tokens = lex("// a comment\nfoo // trailing\nbar");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "bar");
}

TEST(Lexer, PositionsAre1Based) {
  std::vector<Token> Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Col, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Col, 3u);
}

TEST(Lexer, UnterminatedStringIsAnError) {
  std::vector<Token> Tokens = lex("\"oops");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
}

TEST(Lexer, UnterminatedOpParamListIsAnError) {
  std::vector<Token> Tokens = lex("#get(int");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
}

TEST(Lexer, StrayCharacterIsAnError) {
  std::vector<Token> Tokens = lex("%");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
  EXPECT_NE(Tokens[0].Text.find("unexpected character"),
            std::string::npos);
}

TEST(Lexer, ParamsCarryTheirName) {
  std::vector<Token> Tokens = lex("$X $maxContains");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Param));
  EXPECT_EQ(Tokens[0].Text, "X");
  EXPECT_EQ(Tokens[1].Text, "maxContains");
}

TEST(Lexer, BareDollarIsAnError) {
  std::vector<Token> Tokens = lex("$ 1");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
}

TEST(Lexer, SingleAmpersandIsAnError) {
  std::vector<Token> Tokens = lex("a & b");
  bool SawError = false;
  for (const Token &T : Tokens)
    SawError |= T.is(TokenKind::Error);
  EXPECT_TRUE(SawError);
}

} // namespace
