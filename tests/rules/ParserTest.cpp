//===--- ParserTest.cpp - Rule-language parser unit tests ------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Parser.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::rules;

namespace {

TEST(Parser, MinimalReplacementRule) {
  ParseResult R = parseRules("HashSet : maxSize < 9 -> ArraySet");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  ASSERT_EQ(R.Rules.size(), 1u);
  const Rule &Rule0 = R.Rules[0];
  EXPECT_EQ(Rule0.SrcType, "HashSet");
  EXPECT_EQ(Rule0.Action, ActionKind::Replace);
  EXPECT_EQ(Rule0.NewImpl, ImplKind::ArraySet);
  EXPECT_EQ(Rule0.Name, "rule1");
  ASSERT_NE(Rule0.Condition, nullptr);
  EXPECT_EQ(Rule0.Condition->kind(), Cond::Kind::Compare);
}

TEST(Parser, PaperTable2ContainsRule) {
  // "ArrayList : #contains > X && maxSize > Y -> LinkedHashSet"
  ParseResult R = parseRules(
      "ArrayList : #contains > 32 && maxSize > 64 -> LinkedHashSet");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  const Rule &Rule0 = R.Rules[0];
  EXPECT_EQ(Rule0.NewImpl, ImplKind::LinkedHashSet);
  ASSERT_EQ(Rule0.Condition->kind(), Cond::Kind::And);
  const auto &And = static_cast<const AndCond &>(*Rule0.Condition);
  const auto &Lhs = static_cast<const CompareCond &>(*And.Lhs);
  EXPECT_EQ(Lhs.Op, CompareCond::Operator::Gt);
  EXPECT_EQ(Lhs.Lhs->kind(), Expr::Kind::OpCount);
  EXPECT_EQ(static_cast<const OpCountExpr &>(*Lhs.Lhs).Op,
            OpKind::Contains);
}

TEST(Parser, ArithmeticSumsOfOpCounters) {
  ParseResult R = parseRules(
      "LinkedList : #add(int,Object) + #remove(int) + #removeFirst < 1 "
      "-> ArrayList");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  const auto &Cmp =
      static_cast<const CompareCond &>(*R.Rules[0].Condition);
  ASSERT_EQ(Cmp.Lhs->kind(), Expr::Kind::Binary);
}

TEST(Parser, CapacityOnReplacement) {
  ParseResult R = parseRules("HashMap : maxSize > 0 -> ArrayMap(maxSize)");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  ASSERT_NE(R.Rules[0].Capacity, nullptr);
  EXPECT_EQ(R.Rules[0].Capacity->kind(), Expr::Kind::Metric);
}

TEST(Parser, SetCapacityAction) {
  ParseResult R = parseRules(
      "Collection : maxSize > initialCapacity -> setCapacity(maxSize)");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  EXPECT_EQ(R.Rules[0].Action, ActionKind::SetCapacity);
  ASSERT_NE(R.Rules[0].Capacity, nullptr);
}

TEST(Parser, WarnAction) {
  ParseResult R = parseRules("Collection : #allOps == 0 -> warn");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  EXPECT_EQ(R.Rules[0].Action, ActionKind::Warn);
}

TEST(Parser, MessageAndCategory) {
  ParseResult R = parseRules(
      "HashSet : maxSize < 9 -> ArraySet \"Space: smaller structure\"");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  EXPECT_EQ(R.Rules[0].Message, "Space: smaller structure");
  EXPECT_EQ(R.Rules[0].Category, "Space");
}

TEST(Parser, NamedAndUnstableAttributes) {
  ParseResult R = parseRules(
      "[my-rule, unstable] HashSet : maxSize < 9 -> ArraySet");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  EXPECT_EQ(R.Rules[0].Name, "my-rule");
  EXPECT_TRUE(R.Rules[0].IgnoreStability);
}

TEST(Parser, GroupedConditionsAndNot) {
  ParseResult R = parseRules(
      "Collection : !(maxSize > 5 || maxSize < 1) && #size >= 0 -> warn");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  ASSERT_EQ(R.Rules[0].Condition->kind(), Cond::Kind::And);
  const auto &And = static_cast<const AndCond &>(*R.Rules[0].Condition);
  EXPECT_EQ(And.Lhs->kind(), Cond::Kind::Not);
}

TEST(Parser, ParenthesizedArithmeticIsNotAGroupedCond) {
  ParseResult R = parseRules(
      "Collection : (totLive - totUsed) / heapTotLive > 0.1 -> warn");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  const auto &Cmp =
      static_cast<const CompareCond &>(*R.Rules[0].Condition);
  EXPECT_EQ(Cmp.Lhs->kind(), Expr::Kind::Binary);
}

TEST(Parser, MultipleRulesWithOptionalSemicolons) {
  ParseResult R = parseRules(R"(
    HashSet : maxSize < 9 -> ArraySet;
    HashMap : maxSize < 9 -> ArrayMap
    LinkedList : #get(int) > 10 -> ArrayList
  )");
  ASSERT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  EXPECT_EQ(R.Rules.size(), 3u);
  EXPECT_EQ(R.Rules[2].Name, "rule3");
}

TEST(Parser, UnknownSourceTypeIsDiagnosed) {
  ParseResult R = parseRules("FooBar : maxSize < 9 -> ArraySet");
  EXPECT_TRUE(R.Rules.empty());
  ASSERT_EQ(R.Diags.size(), 1u);
  EXPECT_NE(R.Diags[0].Message.find("unknown source type"),
            std::string::npos);
  EXPECT_EQ(R.Diags[0].Line, 1u);
}

TEST(Parser, UnknownImplIsDiagnosed) {
  ParseResult R = parseRules("HashSet : maxSize < 9 -> TreeSet");
  EXPECT_TRUE(R.Rules.empty());
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("unknown implementation type"),
            std::string::npos);
}

TEST(Parser, UnknownMetricIsDiagnosed) {
  ParseResult R = parseRules("HashSet : bogusMetric < 9 -> ArraySet");
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("unknown metric"), std::string::npos);
}

TEST(Parser, UnknownOpCounterIsDiagnosed) {
  ParseResult R = parseRules("HashSet : #frobnicate > 1 -> ArraySet");
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("unknown operation"),
            std::string::npos);
}

TEST(Parser, MissingArrowIsDiagnosed) {
  ParseResult R = parseRules("HashSet : maxSize < 9 ArraySet");
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("expected '->'"), std::string::npos);
}

TEST(Parser, MissingComparisonIsDiagnosed) {
  ParseResult R = parseRules("HashSet : maxSize -> ArraySet");
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("comparison operator"),
            std::string::npos);
}

TEST(Parser, RecoveryContinuesAtTheNextRule) {
  ParseResult R = parseRules(R"(
    HashSet : bogus < 9 -> ArraySet;
    HashMap : maxSize < 9 -> ArrayMap
  )");
  EXPECT_EQ(R.Rules.size(), 1u);
  EXPECT_EQ(R.Rules[0].SrcType, "HashMap");
  EXPECT_FALSE(R.Diags.empty());
}

TEST(Parser, DiagnosticFormatIsLineColMessage) {
  Diagnostic D;
  D.Line = 3;
  D.Col = 7;
  D.Message = "boom";
  EXPECT_EQ(D.format(), "3:7: boom");
}

} // namespace
