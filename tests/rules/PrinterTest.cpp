//===--- PrinterTest.cpp - Pretty-printer round-trip tests ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rules/Printer.h"

#include "rules/Parser.h"
#include "rules/RuleEngine.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::rules;

namespace {

std::string reprint(const std::string &Source) {
  ParseResult R = parseRules(Source);
  EXPECT_TRUE(R.succeeded()) << formatDiagnostics(R.Diags);
  EXPECT_EQ(R.Rules.size(), 1u);
  return R.Rules.empty() ? std::string() : printRule(R.Rules[0]);
}

TEST(Printer, CanonicalFormsAreStable) {
  EXPECT_EQ(reprint("HashSet : maxSize < 9 -> ArraySet"),
            "[rule1] HashSet : maxSize < 9 -> ArraySet");
  EXPECT_EQ(reprint("[x] HashMap : maxSize > 0 -> ArrayMap(maxSize)"),
            "[x] HashMap : maxSize > 0 -> ArrayMap(maxSize)");
  EXPECT_EQ(
      reprint("Collection : #allOps == 0 -> warn \"Space: unused\""),
      "[rule1] Collection : #allOps == 0 -> warn \"Space: unused\"");
  EXPECT_EQ(reprint("[a, unstable] List : maxSize <= 1 -> SingletonList"),
            "[a, unstable] List : maxSize <= 1 -> SingletonList");
}

TEST(Printer, MinimalParenthesesForArithmetic) {
  EXPECT_EQ(reprint("Collection : 1 + 2 * 3 > 0 -> warn"),
            "[rule1] Collection : 1 + 2 * 3 > 0 -> warn");
  EXPECT_EQ(reprint("Collection : (1 + 2) * 3 > 0 -> warn"),
            "[rule1] Collection : (1 + 2) * 3 > 0 -> warn");
  EXPECT_EQ(reprint("Collection : 1 - (2 - 3) > 0 -> warn"),
            "[rule1] Collection : 1 - (2 - 3) > 0 -> warn");
  EXPECT_EQ(reprint("Collection : 1 - 2 - 3 > 0 -> warn"),
            "[rule1] Collection : 1 - 2 - 3 > 0 -> warn");
}

TEST(Printer, MinimalParenthesesForConditions) {
  EXPECT_EQ(reprint("Collection : #add > 0 && #get(Object) > 0 "
                    "|| maxSize == 0 -> warn"),
            "[rule1] Collection : #add > 0 && #get(Object) > 0 "
            "|| maxSize == 0 -> warn");
  EXPECT_EQ(reprint("Collection : #add > 0 && (#get(Object) > 0 "
                    "|| maxSize == 0) -> warn"),
            "[rule1] Collection : #add > 0 && (#get(Object) > 0 "
            "|| maxSize == 0) -> warn");
  EXPECT_EQ(reprint("Collection : !(maxSize > 5) -> warn"),
            "[rule1] Collection : !(maxSize > 5) -> warn");
}

TEST(Printer, OpCountersAndParamsKeepTheirSigils) {
  std::string Out = reprint(
      "LinkedList : #addAll(int,Collection) + #remove(int) < $limit "
      "-> LazyArrayList");
  EXPECT_NE(Out.find("#addAll(int,Collection)"), std::string::npos);
  EXPECT_NE(Out.find("$limit"), std::string::npos);
}

TEST(Printer, PrintParseFixpoint) {
  // print . parse is a fixpoint: the canonical form re-parses to itself.
  const char *Sources[] = {
      "HashSet : maxSize < 9 -> ArraySet",
      "[x, unstable] HashMap : maxSize > 0 && @maxSize == 0 "
      "-> ArrayMap(maxSize) \"Space: hi\"",
      "Collection : (totLive - totUsed) / heapTotLive > 0.1 -> warn",
      "LinkedList : #get(int) > 32 || !(maxSize <= 1) "
      "-> setCapacity(maxSize + 4)",
  };
  for (const char *Source : Sources) {
    std::string Once = reprint(Source);
    std::string Twice = reprint(Once);
    EXPECT_EQ(Once, Twice) << Source;
  }
}

TEST(Printer, BuiltinRulesRoundTrip) {
  ParseResult Original = parseRules(RuleEngine::builtinRulesText());
  ASSERT_TRUE(Original.succeeded());
  std::string Printed = printRules(Original.Rules);
  ParseResult Reparsed = parseRules(Printed);
  ASSERT_TRUE(Reparsed.succeeded())
      << formatDiagnostics(Reparsed.Diags) << "\n"
      << Printed;
  ASSERT_EQ(Reparsed.Rules.size(), Original.Rules.size());
  EXPECT_EQ(printRules(Reparsed.Rules), Printed);
}

/// Random expression generator for the fuzz round-trip below.
ExprPtr randomExpr(SplitMix64 &Rng, int Depth) {
  if (Depth == 0 || Rng.nextBool(0.4)) {
    switch (Rng.nextBelow(4)) {
    case 0:
      return std::make_unique<NumberExpr>(
          static_cast<double>(Rng.nextBelow(100)));
    case 1:
      return std::make_unique<MetricExpr>(MetricKind::MaxSize);
    case 2:
      return std::make_unique<OpCountExpr>(OpKind::GetAtIndex);
    default:
      return std::make_unique<ParamExpr>("p");
    }
  }
  auto Op = static_cast<BinaryExpr::Operator>(Rng.nextBelow(4));
  return std::make_unique<BinaryExpr>(Op, randomExpr(Rng, Depth - 1),
                                      randomExpr(Rng, Depth - 1));
}

CondPtr randomCond(SplitMix64 &Rng, int Depth) {
  if (Depth == 0 || Rng.nextBool(0.4)) {
    auto Op = static_cast<CompareCond::Operator>(Rng.nextBelow(6));
    return std::make_unique<CompareCond>(Op, randomExpr(Rng, 2),
                                         randomExpr(Rng, 2));
  }
  switch (Rng.nextBelow(3)) {
  case 0:
    return std::make_unique<AndCond>(randomCond(Rng, Depth - 1),
                                     randomCond(Rng, Depth - 1));
  case 1:
    return std::make_unique<OrCond>(randomCond(Rng, Depth - 1),
                                    randomCond(Rng, Depth - 1));
  default:
    return std::make_unique<NotCond>(randomCond(Rng, Depth - 1));
  }
}

TEST(Printer, FuzzedConditionsRoundTrip) {
  SplitMix64 Rng(2026);
  for (int I = 0; I < 200; ++I) {
    CondPtr C = randomCond(Rng, 4);
    std::string Source =
        "Collection : " + printCond(*C) + " -> warn";
    ParseResult R = parseRules(Source);
    ASSERT_TRUE(R.succeeded())
        << formatDiagnostics(R.Diags) << "\n" << Source;
    ASSERT_EQ(R.Rules.size(), 1u);
    EXPECT_EQ(printCond(*R.Rules[0].Condition), printCond(*C))
        << Source;
  }
}

} // namespace
