//===--- RuleEngineTest.cpp - Rule engine + Table-2 rule tests ------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each built-in rule (paper Table 2 plus the case-study refinements),
/// fabricates a context profile that should trigger it — and near-miss
/// profiles that should not — then checks the engine's suggestion,
/// stability gating, plan compilation, and report rendering.
///
//===----------------------------------------------------------------------===//

#include "rules/RuleEngine.h"

#include "collections/CollectionRuntime.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::rules;

namespace {

/// Fabricates profiles and runs the engine over them.
struct RuleEngineTest : ::testing::Test {
  SemanticProfiler Profiler;
  RuleEngine Engine;

  void SetUp() override { Engine.addBuiltinRules(); }

  /// Distinguishes synthetic sites; a fixture member (not a function-local
  /// static) so every makeContext instantiation shares it.
  unsigned SiteCounter = 0;

  /// Creates a context of source type \p TypeName with \p Instances dead
  /// instances shaped by \p Shape (applied to each instance record).
  template <typename ShapeFn>
  ContextInfo *makeContext(const std::string &TypeName, unsigned Instances,
                           ShapeFn Shape, uint32_t InitialCapacity = 0) {
    FrameId Site =
        Profiler.internFrame("site:" + std::to_string(++SiteCounter));
    ContextInfo *Info = Profiler.contextForAllocation(
        Site, Profiler.internFrame(TypeName));
    for (unsigned I = 0; I < Instances; ++I) {
      ObjectContextInfo Usage;
      Shape(Usage, I);
      Info->recordDeath(Usage);
      Info->recordAllocation(InitialCapacity);
    }
    return Info;
  }

  std::vector<Suggestion> suggestionsFor(const ContextInfo &Info) {
    std::vector<Suggestion> Out;
    Engine.evaluateContext(Info, Profiler, Out);
    return Out;
  }

  /// The first fired rule name, or "" when nothing fired.
  std::string firstRule(const ContextInfo &Info) {
    std::vector<Suggestion> Suggs = suggestionsFor(Info);
    return Suggs.empty() ? std::string() : Suggs[0].RuleName;
  }

  bool fired(const ContextInfo &Info, const std::string &Name) {
    for (const Suggestion &S : suggestionsFor(Info))
      if (S.RuleName == Name)
        return true;
    return false;
  }
};

TEST_F(RuleEngineTest, BuiltinRulesParse) {
  EXPECT_GE(Engine.rules().size(), 18u);
}

TEST_F(RuleEngineTest, SmallHashMapBecomesArrayMap) {
  // Table 2: "HashSet maxSize < X -> ArraySet", map analogue; the TVLA
  // headline replacement.
  ContextInfo *Info = makeContext(
      "HashMap", 10,
      [](ObjectContextInfo &U, unsigned) {
        for (int I = 0; I < 3; ++I)
          U.count(OpKind::Put);
        for (int I = 0; I < 20; ++I)
          U.count(OpKind::Get);
        U.noteSize(3);
      },
      /*InitialCapacity=*/16);
  EXPECT_TRUE(fired(*Info, "small-hashmap"));
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  ASSERT_FALSE(Suggs.empty());
  EXPECT_EQ(Suggs[0].NewImpl, ImplKind::ArrayMap);
  EXPECT_EQ(Suggs[0].Action, ActionKind::Replace);
}

TEST_F(RuleEngineTest, LargeHashMapIsLeftAlone) {
  ContextInfo *Info = makeContext("HashMap", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Put);
                                    U.noteSize(500);
                                  },
                                  /*InitialCapacity=*/1024);
  EXPECT_FALSE(fired(*Info, "small-hashmap"));
}

TEST_F(RuleEngineTest, SmallHashSetBecomesArraySet) {
  ContextInfo *Info = makeContext("HashSet", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Add);
                                    U.noteSize(4);
                                  },
                                  /*InitialCapacity=*/16);
  EXPECT_TRUE(fired(*Info, "small-hashset"));
}

TEST_F(RuleEngineTest, ContainsHeavyArrayListBecomesLinkedHashSet) {
  // Table 2 row 1.
  ContextInfo *Info = makeContext("ArrayList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 100; ++I)
                                      U.count(OpKind::Contains);
                                    U.noteSize(64);
                                  },
                                  /*InitialCapacity=*/64);
  EXPECT_TRUE(fired(*Info, "arraylist-contains"));
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  EXPECT_EQ(Suggs[0].NewImpl, ImplKind::LinkedHashSet);
}

TEST_F(RuleEngineTest, FewContainsDoesNotFireTheContainsRule) {
  ContextInfo *Info = makeContext("ArrayList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Contains);
                                    U.noteSize(64);
                                  },
                                  /*InitialCapacity=*/64);
  EXPECT_FALSE(fired(*Info, "arraylist-contains"));
}

TEST_F(RuleEngineTest, RandomAccessLinkedListBecomesArrayList) {
  // Table 2 row 2.
  ContextInfo *Info = makeContext("LinkedList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 100; ++I)
                                      U.count(OpKind::GetAtIndex);
                                    U.noteSize(40);
                                  });
  EXPECT_TRUE(fired(*Info, "linkedlist-random-access"));
}

TEST_F(RuleEngineTest, SequentialLinkedListBecomesArrayListBySpace) {
  // Table 2 row 3: no middle/head surgery -> the LinkedList overhead is
  // unjustified.
  ContextInfo *Info = makeContext("LinkedList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 10; ++I)
                                      U.count(OpKind::Add);
                                    U.count(OpKind::Iterate);
                                    U.noteSize(10);
                                  });
  EXPECT_TRUE(fired(*Info, "linkedlist-overhead"));
}

TEST_F(RuleEngineTest, HeadSurgeryJustifiesTheLinkedList) {
  ContextInfo *Info = makeContext("LinkedList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 10; ++I) {
                                      U.count(OpKind::Add);
                                      U.count(OpKind::RemoveFirst);
                                    }
                                    U.noteSize(10);
                                  });
  EXPECT_FALSE(fired(*Info, "linkedlist-overhead"));
  EXPECT_FALSE(fired(*Info, "linkedlist-random-access"));
}

TEST_F(RuleEngineTest, AlwaysEmptyListsBecomeSharedEmpty) {
  ContextInfo *Info = makeContext("LinkedList", 20,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.noteSize(0);
                                  });
  EXPECT_EQ(firstRule(*Info), "never-used-lists");
  EXPECT_TRUE(fired(*Info, "never-used"));
}

TEST_F(RuleEngineTest, EmptyButQueriedListsBecomeLazy) {
  ContextInfo *Info = makeContext("ArrayList", 20,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Contains);
                                    U.noteSize(0);
                                  },
                                  /*InitialCapacity=*/10);
  EXPECT_EQ(firstRule(*Info), "empty-lists");
  EXPECT_FALSE(fired(*Info, "never-used-lists"));
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  EXPECT_EQ(Suggs[0].NewImpl, ImplKind::LazyArrayList);
}

TEST_F(RuleEngineTest, MostlyEmptyMapsBecomeLazy) {
  // 80% empty, 20% one entry (the FindBugs annotations shape).
  ContextInfo *Info = makeContext("HashMap", 20,
                                  [](ObjectContextInfo &U, unsigned I) {
                                    if (I % 5 == 0) {
                                      U.count(OpKind::Put);
                                      U.noteSize(1);
                                    } else {
                                      U.noteSize(0);
                                    }
                                  },
                                  /*InitialCapacity=*/16);
  EXPECT_TRUE(fired(*Info, "mostly-empty-maps"));
}

TEST_F(RuleEngineTest, SingletonArrayListsBecomeSingletonList) {
  ContextInfo *Info = makeContext("ArrayList", 20,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Add);
                                    for (int I = 0; I < 5; ++I)
                                      U.count(OpKind::GetAtIndex);
                                    U.noteSize(1);
                                  },
                                  /*InitialCapacity=*/10);
  EXPECT_TRUE(fired(*Info, "singleton-lists"));
}

TEST_F(RuleEngineTest, MutatedSingletonsAreNotSingletonList) {
  ContextInfo *Info = makeContext("ArrayList", 20,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Add);
                                    U.count(OpKind::RemoveObject);
                                    U.noteSize(1);
                                  },
                                  /*InitialCapacity=*/10);
  EXPECT_FALSE(fired(*Info, "singleton-lists"));
}

TEST_F(RuleEngineTest, IncrementalResizingSuggestsTheObservedSize) {
  // Table 2 row: "Collection maxSize > initialCapacity".
  ContextInfo *Info = makeContext("ArrayList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 30; ++I)
                                      U.count(OpKind::Add);
                                    U.noteSize(30);
                                  },
                                  /*InitialCapacity=*/10);
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  bool Found = false;
  for (const Suggestion &S : Suggs) {
    if (S.RuleName == "incremental-resizing") {
      Found = true;
      EXPECT_EQ(S.Action, ActionKind::SetCapacity);
      ASSERT_TRUE(S.Capacity.has_value());
      EXPECT_EQ(*S.Capacity, 30u);
    }
  }
  EXPECT_TRUE(Found);
}

TEST_F(RuleEngineTest, OversizedCapacityIsShrunk) {
  ContextInfo *Info = makeContext("ArrayList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Add);
                                    U.noteSize(2);
                                  },
                                  /*InitialCapacity=*/32);
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  bool Found = false;
  for (const Suggestion &S : Suggs)
    if (S.RuleName == "oversized-capacity") {
      Found = true;
      EXPECT_EQ(*S.Capacity, 2u);
    }
  EXPECT_TRUE(Found);
}

TEST_F(RuleEngineTest, RedundantCopyTemporariesAreFlagged) {
  // Table 2: "#allOps == #copied" — collections that only ever get copied.
  ContextInfo *Info = makeContext("ArrayList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::CopiedFrom); // birth
                                    U.count(OpKind::CopiedInto);
                                    U.noteSize(3);
                                  },
                                  /*InitialCapacity=*/3);
  EXPECT_TRUE(fired(*Info, "redundant-copies"));
}

TEST_F(RuleEngineTest, EmptyIteratorsAreFlagged) {
  ContextInfo *Info = makeContext("HashSet", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 20; ++I)
                                      U.count(OpKind::IterateEmpty);
                                    U.noteSize(0);
                                  },
                                  /*InitialCapacity=*/16);
  EXPECT_TRUE(fired(*Info, "empty-iterators"));
}

TEST_F(RuleEngineTest, StabilityGateSuppressesUnstableSizes) {
  // Definition 3.1: wildly varying max sizes -> size-based rules must not
  // fire. Alternate tiny and huge collections at one context.
  ContextInfo *Info = makeContext("HashMap", 20,
                                  [](ObjectContextInfo &U, unsigned I) {
                                    U.count(OpKind::Put);
                                    U.noteSize(I % 2 == 0 ? 1 : 400);
                                  },
                                  /*InitialCapacity=*/16);
  EXPECT_FALSE(fired(*Info, "small-hashmap"));
}

TEST_F(RuleEngineTest, UnstableAttributeBypassesTheGate) {
  RuleEngine Custom;
  Custom.addRules(
      "[gate-test, unstable] HashMap : maxSize < 500 -> ArrayMap");
  ContextInfo *Info = makeContext("HashMap", 20,
                                  [](ObjectContextInfo &U, unsigned I) {
                                    U.count(OpKind::Put);
                                    U.noteSize(I % 2 == 0 ? 1 : 400);
                                  });
  std::vector<Suggestion> Out;
  Custom.evaluateContext(*Info, Profiler, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].RuleName, "gate-test");
}

TEST_F(RuleEngineTest, MinSamplesSkipsThinContexts) {
  ContextInfo *Info = makeContext("HashMap", 2,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Put);
                                    U.noteSize(2);
                                  },
                                  /*InitialCapacity=*/16);
  EXPECT_TRUE(suggestionsFor(*Info).empty());
}

TEST_F(RuleEngineTest, MinPotentialGatesSpaceRulesOnly) {
  RuleEngineConfig Config;
  Config.MinPotentialBytes = 1000000; // nothing qualifies
  RuleEngine Gated(Config);
  Gated.addBuiltinRules();
  ContextInfo *Info = makeContext("HashMap", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Put);
                                    U.noteSize(3);
                                  },
                                  /*InitialCapacity=*/16);
  std::vector<Suggestion> Out;
  Gated.evaluateContext(*Info, Profiler, Out);
  EXPECT_TRUE(Out.empty())
      << "space rules must be gated below the potential threshold; got "
      << (Out.empty() ? "" : Out[0].RuleName);
}

TEST_F(RuleEngineTest, BuildPlanMergesReplaceAndCapacity) {
  ContextInfo *Info = makeContext("HashMap", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    for (int I = 0; I < 3; ++I)
                                      U.count(OpKind::Put);
                                    U.noteSize(3);
                                  },
                                  /*InitialCapacity=*/16);
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  ReplacementPlan Plan = RuleEngine::buildPlan(Suggs);
  const PlanDecision *Decision =
      Plan.lookup(Profiler.contextLabel(*Info));
  ASSERT_NE(Decision, nullptr);
  ASSERT_TRUE(Decision->Impl.has_value());
  EXPECT_EQ(*Decision->Impl, ImplKind::ArrayMap);
  ASSERT_TRUE(Decision->Capacity.has_value());
  EXPECT_EQ(*Decision->Capacity, 3u); // from oversized-capacity-maps
}

TEST_F(RuleEngineTest, WarnSuggestionsStayOutOfThePlan) {
  ContextInfo *Info = makeContext("ArrayList", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::CopiedInto);
                                    U.count(OpKind::CopiedFrom);
                                    U.noteSize(2);
                                  },
                                  /*InitialCapacity=*/2);
  std::vector<Suggestion> Suggs = suggestionsFor(*Info);
  ReplacementPlan Plan = RuleEngine::buildPlan(Suggs);
  EXPECT_EQ(Plan.lookup(Profiler.contextLabel(*Info)), nullptr);
}

TEST_F(RuleEngineTest, ExplainContextNamesEveryOutcome) {
  ContextInfo *Info = makeContext(
      "HashMap", 10,
      [](ObjectContextInfo &U, unsigned) {
        for (int I = 0; I < 3; ++I)
          U.count(OpKind::Put);
        U.noteSize(3);
      },
      /*InitialCapacity=*/16);
  std::string Text = Engine.explainContext(*Info, Profiler);
  EXPECT_NE(Text.find("[small-hashmap] fired -> replace with ArrayMap"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("[small-hashset] source type mismatch"),
            std::string::npos);
  EXPECT_NE(Text.find("[never-used] condition false"), std::string::npos);

  // Thin contexts explain themselves too.
  ContextInfo *Thin = makeContext("HashMap", 1,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.noteSize(1);
                                  });
  std::string ThinText = Engine.explainContext(*Thin, Profiler);
  EXPECT_NE(ThinText.find("too few folded instances"), std::string::npos)
      << ThinText;
}

TEST_F(RuleEngineTest, ExplainReportsUnstableAndMissingParams) {
  RuleEngine Custom;
  Custom.addRules(R"(
    [sized] HashMap : maxSize < 500 -> ArrayMap
    [tuned] HashMap : maxSize < $bound -> ArrayMap
  )");
  ContextInfo *Info = makeContext("HashMap", 20,
                                  [](ObjectContextInfo &U, unsigned I) {
                                    U.count(OpKind::Put);
                                    U.noteSize(I % 2 == 0 ? 1 : 400);
                                  });
  std::string Text = Custom.explainContext(*Info, Profiler);
  EXPECT_NE(Text.find("[sized] suppressed by stability gate"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("[tuned] unbound $-parameter"), std::string::npos);
}

TEST_F(RuleEngineTest, ExplainSurfacesDivisionGuard) {
  // A ratio rule over a profile with zero removes divides by zero; the
  // evaluator defines x/0 = 0, which silently falsifies the condition.
  // The explanation must say that, or the silence is undiagnosable.
  RuleEngine Custom;
  Custom.addRules(
      "[ratio] HashMap : #get(Object) / #remove(Object) > 2 -> ArrayMap");
  ContextInfo *Info = makeContext("HashMap", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Get);
                                    U.count(OpKind::Put);
                                    U.noteSize(3);
                                  });
  std::string Text = Custom.explainContext(*Info, Profiler);
  EXPECT_NE(Text.find("[ratio] condition false"), std::string::npos) << Text;
  EXPECT_NE(Text.find("(division guard: 1 division by zero evaluated as 0)"),
            std::string::npos)
      << Text;

  // No divisions by zero, no note.
  RuleEngine Plain;
  Plain.addRules("[plain] HashMap : maxSize > 100 -> ArrayMap");
  std::string PlainText = Plain.explainContext(*Info, Profiler);
  EXPECT_EQ(PlainText.find("division guard"), std::string::npos) << PlainText;
}

/// A selector with one line of per-context state, as OnlineAdaptor has.
struct DescribingSelector : OnlineSelector {
  ImplKind chooseImpl(const ContextInfo *, AdtKind, ImplKind Requested,
                      uint32_t &) override {
    return Requested;
  }
  std::string describeContext(const ContextInfo *) const override {
    return "online: plan=ArrayMap cap=4 consecutiveAborts=2";
  }
};

TEST_F(RuleEngineTest, ExplainContextShowsRuntimeIntrospection) {
  ContextInfo *Info = makeContext(
      "HashMap", 10,
      [](ObjectContextInfo &U, unsigned) {
        for (int I = 0; I < 3; ++I)
          U.count(OpKind::Put);
        U.noteSize(3);
      },
      /*InitialCapacity=*/16);

  // Bare explanation: no migration state, no selector, no telemetry.
  std::string Bare = Engine.explainContext(*Info, Profiler);
  EXPECT_EQ(Bare.find("migrations:"), std::string::npos) << Bare;
  EXPECT_EQ(Bare.find("recent telemetry:"), std::string::npos) << Bare;

  // With live-migration history, selector state, and trace instants
  // tagged with this context's id, all three sections appear.
  Info->noteMigrationCommit();
  Info->noteMigrationAbort();
  Info->noteMigrationAbort();
  DescribingSelector Selector;

#if !defined(CHAMELEON_NO_TELEMETRY)
  obs::TraceRecorder &Rec = obs::TraceRecorder::instance();
  Rec.arm();
  for (int I = 0; I < 5; ++I)
    Rec.recordInstant("online", "evaluate", "ctx", Info->id());
  Rec.recordInstant("migrate", "abort", "ctx", Info->id());
  Rec.recordInstant("online", "evaluate", "ctx", Info->id() + 1);
  Rec.disarm();
#endif

  std::string Text =
      Engine.explainContext(*Info, Profiler, &Selector,
                            /*TraceInstantLimit=*/4);
  EXPECT_NE(Text.find("  migrations: 1 committed, 2 aborted\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("  online: plan=ArrayMap cap=4 consecutiveAborts=2\n"),
            std::string::npos)
      << Text;

#if !defined(CHAMELEON_NO_TELEMETRY)
  EXPECT_NE(Text.find("  recent telemetry:\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("    [migrate] abort @"), std::string::npos) << Text;
  // Limited to the newest 4 of this context's 6 instants, none from the
  // neighbouring context.
  size_t Shown = 0;
  for (size_t At = Text.find("    ["); At != std::string::npos;
       At = Text.find("    [", At + 1))
    ++Shown;
  EXPECT_EQ(Shown, 4u) << Text;
  obs::TraceRecorder::instance().clear();
#endif
}

TEST_F(RuleEngineTest, ParamsTuneRuleConstants) {
  RuleEngine Custom;
  Custom.addRules(
      "[tuned] HashMap : maxSize <= $smallMax -> ArrayMap($smallMax)");
  ContextInfo *Info = makeContext("HashMap", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Put);
                                    U.noteSize(5);
                                  },
                                  /*InitialCapacity=*/16);

  // Unbound parameter: the rule must never fire.
  std::vector<Suggestion> Out;
  Custom.evaluateContext(*Info, Profiler, Out);
  EXPECT_TRUE(Out.empty());

  // Bound below the observed size: still silent.
  Custom.setParam("smallMax", 3);
  Custom.evaluateContext(*Info, Profiler, Out);
  EXPECT_TRUE(Out.empty());

  // Bound above: fires, and the capacity expression sees the binding.
  Custom.setParam("smallMax", 8);
  Custom.evaluateContext(*Info, Profiler, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].NewImpl, ImplKind::ArrayMap);
  ASSERT_TRUE(Out[0].Capacity.has_value());
  EXPECT_EQ(*Out[0].Capacity, 8u);
}

TEST_F(RuleEngineTest, ReportRendersInPaperFormat) {
  ContextInfo *Info = makeContext("HashMap", 10,
                                  [](ObjectContextInfo &U, unsigned) {
                                    U.count(OpKind::Put);
                                    U.noteSize(3);
                                  },
                                  /*InitialCapacity=*/16);
  std::string Report =
      RuleEngine::renderReport(suggestionsFor(*Info));
  EXPECT_NE(Report.find("replace with ArrayMap"), std::string::npos);
  EXPECT_NE(Report.find("1: HashMap:site:"), std::string::npos);
}

} // namespace
