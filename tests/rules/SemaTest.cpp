//===--- SemaTest.cpp - Rule-language semantic analysis tests -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the sema/lint pass: golden-file comparisons over the
/// tools/testdata lint fixtures, the tier-1 guarantee that the built-in
/// Table-2 rule set lints clean, the RuleEngine SemaMode integration
/// (warn/strict, never-fires short-circuit, explainContext notes), and
/// unit coverage for the interval analysis and did-you-mean helpers.
///
//===----------------------------------------------------------------------===//

#include "rules/RuleEngine.h"
#include "rules/Sema.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace chameleon;
using namespace chameleon::rules;

namespace {

std::string readTestdata(const std::string &Name) {
  std::string Path = std::string(CHAMELEON_TOOLS_TESTDATA) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Lints tools/testdata/<stem>.rules and compares the rendered diagnostics
/// against tools/testdata/<stem>.expected.
void checkGolden(const std::string &Stem,
                 const SemaOptions &Opts = SemaOptions()) {
  std::string Source = readTestdata(Stem + ".rules");
  std::string Expected = readTestdata(Stem + ".expected");
  LintResult Result = lintRuleSource(Source, Opts);
  EXPECT_EQ(formatDiagnostics(Result.Diags), Expected) << "fixture " << Stem;
}

//===----------------------------------------------------------------------===//
// Golden-file fixtures
//===----------------------------------------------------------------------===//

TEST(SemaGolden, TypoSuggestions) { checkGolden("lint_typo"); }
TEST(SemaGolden, UnsatisfiableConditions) { checkGolden("lint_unsat"); }
TEST(SemaGolden, ShadowedRules) { checkGolden("lint_shadow"); }
TEST(SemaGolden, UnknownTargets) { checkGolden("lint_unknown_target"); }
TEST(SemaGolden, ScaleConfusions) { checkGolden("lint_scales"); }
TEST(SemaGolden, UnboundParams) { checkGolden("lint_params"); }

TEST(SemaGolden, BoundParamsSilenceTheWarning) {
  RuleParams Params;
  Params["threshold"] = 32;
  SemaOptions Opts;
  Opts.Params = &Params;
  LintResult Result =
      lintRuleSource(readTestdata("lint_params.rules"), Opts);
  EXPECT_EQ(formatDiagnostics(Result.Diags), "");
}

//===----------------------------------------------------------------------===//
// Tier-1: the built-in rule set lints clean
//===----------------------------------------------------------------------===//

TEST(Sema, BuiltinRulesLintClean) {
  LintResult Result = lintRuleSource(RuleEngine::builtinRulesText());
  EXPECT_EQ(formatDiagnostics(Result.Diags), "");
  EXPECT_FALSE(Result.hasErrors());
  EXPECT_FALSE(Result.hasWarnings());
}

//===----------------------------------------------------------------------===//
// Individual diagnostic classes
//===----------------------------------------------------------------------===//

std::vector<Diagnostic> diagsFor(const std::string &Source,
                                 const SemaOptions &Opts = SemaOptions()) {
  return lintRuleSource(Source, Opts).Diags;
}

bool hasDiag(const std::vector<Diagnostic> &Diags, const std::string &ID) {
  for (const Diagnostic &D : Diags)
    if (D.ID == ID)
      return true;
  return false;
}

TEST(Sema, NegativeOpCountNeverFires) {
  std::vector<Diagnostic> Diags =
      diagsFor("ArrayList : #contains < 0 -> LinkedList");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].ID, "sema-never-fires");
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
}

TEST(Sema, EmptyIntervalNeverFires) {
  EXPECT_TRUE(hasDiag(
      diagsFor("HashMap : maxSize > 5 && maxSize < 3 -> ArrayMap"),
      "sema-never-fires"));
}

TEST(Sema, IntersectionAcrossThreeConjunctsNeverFires) {
  // No single pair is contradictory against the domain, but the
  // intersection over the whole conjunction is empty.
  EXPECT_TRUE(hasDiag(diagsFor("HashMap : maxSize >= 3 && maxSize <= 8 "
                               "&& maxSize > 8 -> ArrayMap"),
                      "sema-never-fires"));
}

TEST(Sema, LatticeUsedExceedsLiveNeverFires) {
  EXPECT_TRUE(hasDiag(diagsFor("Map : totUsed > totLive -> ArrayMap"),
                      "sema-never-fires"));
}

TEST(Sema, LatticeHoldsTransitively) {
  // core <= used <= live <= heap-live; the closure proves core <= heapMaxLive.
  EXPECT_TRUE(hasDiag(
      diagsFor("Map : maxCore > heapMaxLive -> ArrayMap"),
      "sema-never-fires"));
}

TEST(Sema, AlwaysTrueGuardWarns) {
  std::vector<Diagnostic> Diags =
      diagsFor("HashSet : totUsed <= totLive && maxSize < 9 -> ArraySet");
  ASSERT_TRUE(hasDiag(Diags, "sema-always-true"));
  EXPECT_FALSE(hasErrors(Diags));
}

TEST(Sema, DeadOrBranchWarns) {
  std::vector<Diagnostic> Diags = diagsFor(
      "HashSet : #contains < 0 || maxSize < 9 -> ArraySet");
  EXPECT_TRUE(hasDiag(Diags, "sema-dead-branch"));
  // The other branch is satisfiable, so the rule itself is fine.
  EXPECT_FALSE(hasDiag(Diags, "sema-never-fires"));
}

TEST(Sema, SatisfiableRangeIsSilent) {
  EXPECT_TRUE(
      diagsFor("HashMap : maxSize > 3 && maxSize < 9 -> ArrayMap").empty());
}

TEST(Sema, DivisionFoldsLikeTheEvaluator) {
  // The evaluator defines x/0 = 0, so `maxSize / 0 > 1` can never hold —
  // sema must fold it the same way rather than claim +inf.
  EXPECT_TRUE(hasDiag(
      diagsFor("HashMap : maxSize / 0 > 1 -> ArrayMap"),
      "sema-never-fires"));
}

TEST(Sema, TargetKindMismatchIsError) {
  std::vector<Diagnostic> Diags =
      diagsFor("HashMap : maxSize < 9 -> ArrayList");
  ASSERT_TRUE(hasDiag(Diags, "sema-target-kind-mismatch"));
  EXPECT_TRUE(hasErrors(Diags));
}

TEST(Sema, AdaptableReplacementAcrossKindsIsAllowed) {
  // List -> set-backed impl is a real Table-2 move (contains-heavy
  // ArrayList -> LinkedHashSet); it must not be flagged.
  EXPECT_TRUE(
      diagsFor("ArrayList : #contains > 32 -> LinkedHashSet").empty());
}

TEST(Sema, SelfReplacementWarns) {
  EXPECT_TRUE(hasDiag(
      diagsFor("LinkedList : maxSize < 9 -> LinkedList"),
      "sema-self-replacement"));
}

TEST(Sema, SelfReplacementWithCapacityIsSilent) {
  // Same impl but with a capacity argument actually changes behaviour.
  EXPECT_TRUE(
      diagsFor("ArrayList : maxSize > 9 -> ArrayList(maxSize)").empty());
}

TEST(Sema, ShadowedRuleWarns) {
  std::vector<Diagnostic> Diags =
      diagsFor("Map : maxSize <= 8 -> ArrayMap\n"
               "HashMap : maxSize <= 4 -> ArrayMap");
  EXPECT_TRUE(hasDiag(Diags, "sema-shadowed-rule"));
}

TEST(Sema, DistinctRangesDoNotShadow) {
  EXPECT_TRUE(diagsFor("Map : maxSize <= 4 -> ArrayMap\n"
                       "HashMap : maxSize <= 8 -> ArrayMap")
                  .empty());
}

TEST(Sema, StabilityGateBlocksShadowing) {
  // The later rule bypasses the Definition-3.1 stability gate, so it can
  // fire where the earlier one is suppressed; not a true shadow.
  EXPECT_TRUE(diagsFor("Map : maxSize <= 8 -> ArrayMap\n"
                       "[r2, unstable] HashMap : maxSize <= 4 -> ArrayMap")
                  .empty());
}

TEST(Sema, UnusedParamWarnsOnlyWhenAsked) {
  RuleParams Params;
  Params["X"] = 8;
  Params["orphan"] = 1;
  SemaOptions Opts;
  Opts.Params = &Params;
  std::vector<Diagnostic> Diags =
      diagsFor("HashSet : maxSize < $X -> ArraySet", Opts);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].ID, "sema-unused-param");
  EXPECT_NE(Diags[0].Message.find("orphan"), std::string::npos);

  Opts.CheckUnusedParams = false;
  EXPECT_TRUE(diagsFor("HashSet : maxSize < $X -> ArraySet", Opts).empty());
}

//===----------------------------------------------------------------------===//
// RuleEngine integration (SemaMode)
//===----------------------------------------------------------------------===//

TEST(SemaEngine, WarnModeInstallsAndReports) {
  RuleEngine Engine;
  ParseResult Result = Engine.addRules(
      "ArrayList : #contains < 0 -> LinkedList", SemaMode::Warn);
  EXPECT_TRUE(hasErrors(Result.Diags));
  // Warn mode still installs everything that parsed.
  ASSERT_EQ(Engine.rules().size(), 1u);
  EXPECT_TRUE(Engine.rules()[0].NeverFires);
}

TEST(SemaEngine, StrictModeRejectsTheWholeFile) {
  RuleEngine Engine;
  ParseResult Result = Engine.addRules(
      "HashSet : maxSize < 9 -> ArraySet\n"
      "ArrayList : #contains < 0 -> LinkedList",
      SemaMode::Strict);
  EXPECT_FALSE(Result.succeeded());
  EXPECT_TRUE(Engine.rules().empty());
}

TEST(SemaEngine, StrictModeAcceptsWarningsOnly) {
  RuleEngine Engine;
  ParseResult Result = Engine.addRules(
      "LinkedList : maxSize < 9 -> LinkedList", SemaMode::Strict);
  EXPECT_TRUE(Result.succeeded());
  EXPECT_TRUE(hasWarnings(Result.Diags));
  EXPECT_EQ(Engine.rules().size(), 1u);
}

TEST(SemaEngine, OffModeIsTheHistoricalBehaviour) {
  RuleEngine Engine;
  ParseResult Result =
      Engine.addRules("ArrayList : #contains < 0 -> LinkedList");
  EXPECT_TRUE(Result.succeeded());
  EXPECT_TRUE(Result.Diags.empty());
  ASSERT_EQ(Engine.rules().size(), 1u);
  EXPECT_FALSE(Engine.rules()[0].NeverFires);
}

TEST(SemaEngine, NeverFiresShortCircuitsEvaluation) {
  SemanticProfiler Profiler;
  RuleEngine Engine;
  Engine.addRules("[dead] ArrayList : #contains < 0 -> LinkedList",
                  SemaMode::Warn);
  ContextInfo *Info = Profiler.contextForAllocation(
      Profiler.internFrame("site:sema"), Profiler.internFrame("ArrayList"));
  for (unsigned I = 0; I < 8; ++I) {
    ObjectContextInfo Usage;
    Usage.count(OpKind::Contains);
    Usage.noteSize(3);
    Info->recordDeath(Usage);
    Info->recordAllocation(0);
  }
  EXPECT_EQ(Engine.evaluateRule(Engine.rules()[0], *Info, Profiler, nullptr),
            RuleEngine::RuleOutcome::NeverFires);
  std::string Explanation = Engine.explainContext(*Info, Profiler);
  EXPECT_NE(Explanation.find("statically can never fire"),
            std::string::npos);
  EXPECT_NE(Explanation.find("condition is unsatisfiable"),
            std::string::npos);
}

TEST(SemaEngine, UnboundParamNoteSurfacesInExplain) {
  SemanticProfiler Profiler;
  RuleEngine Engine;
  Engine.addRules("[tuned] HashSet : maxSize < $X -> ArraySet",
                  SemaMode::Warn);
  ASSERT_EQ(Engine.rules().size(), 1u);
  EXPECT_NE(Engine.rules()[0].SemaNote.find("$X"), std::string::npos);
  ContextInfo *Info = Profiler.contextForAllocation(
      Profiler.internFrame("site:sema2"), Profiler.internFrame("HashSet"));
  for (unsigned I = 0; I < 8; ++I) {
    ObjectContextInfo Usage;
    Usage.noteSize(3);
    Info->recordDeath(Usage);
    Info->recordAllocation(0);
  }
  std::string Explanation = Engine.explainContext(*Info, Profiler);
  EXPECT_NE(Explanation.find("unbound at load time"), std::string::npos);
}

TEST(SemaEngine, BoundParamAtLoadTimeCarriesNoNote) {
  RuleEngine Engine;
  Engine.setParam("X", 9);
  Engine.addRules("HashSet : maxSize < $X -> ArraySet", SemaMode::Warn);
  ASSERT_EQ(Engine.rules().size(), 1u);
  EXPECT_TRUE(Engine.rules()[0].SemaNote.empty());
}

TEST(SemaEngine, BuiltinRulesLoadStrict) {
  RuleEngine Engine;
  ParseResult Result =
      Engine.addRules(RuleEngine::builtinRulesText(), SemaMode::Strict);
  EXPECT_TRUE(Result.succeeded());
  EXPECT_TRUE(Result.Diags.empty()) << formatDiagnostics(Result.Diags);
  EXPECT_GE(Engine.rules().size(), 18u);
}

//===----------------------------------------------------------------------===//
// Fix-it helpers
//===----------------------------------------------------------------------===//

TEST(SemaFixIts, EditDistance) {
  EXPECT_EQ(editDistance("maxSize", "maxSize"), 0u);
  EXPECT_EQ(editDistance("maxSze", "maxSize"), 1u);
  EXPECT_EQ(editDistance("", "abc"), 3u);
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
  // Case-insensitive: 'MAXSIZE' is the same identifier misspelled in caps.
  EXPECT_EQ(editDistance("MAXSIZE", "maxSize"), 0u);
}

TEST(SemaFixIts, SuggestsMetricNames) {
  EXPECT_EQ(suggestMetricName("maxSze"), "maxSize");
  EXPECT_EQ(suggestMetricName("totalLive"), "totLive");
  EXPECT_EQ(suggestMetricName("zzzzqqqq"), "");
}

TEST(SemaFixIts, SuggestsOpNames) {
  EXPECT_EQ(suggestOpName("contian"), "contains");
  EXPECT_EQ(suggestOpName("get(in)"), "get(int)");
}

TEST(SemaFixIts, SuggestsImplAndSourceTypeNames) {
  EXPECT_EQ(suggestImplName("AraySet"), "ArraySet");
  EXPECT_EQ(suggestSourceTypeName("HashMpa"), "HashMap");
}

} // namespace
