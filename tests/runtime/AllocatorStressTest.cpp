//===--- AllocatorStressTest.cpp - Allocation substrate tests -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tcmalloc-style allocation substrate (DESIGN.md §12) under test: the
/// size-class table's invariants, the raw block lifecycle (tags, alignment,
/// double-return containment, mode switches mid-stream), multi-threaded
/// churn across size classes through stop-the-world safepoints, and the
/// determinism contract — with thread caches on and off, the same workload
/// must produce identical slot sequences, identical per-cycle statistics,
/// and byte-identical profiled reports. Run under TSan in CI (the
/// `AllocatorStress*` filter of the sanitizer job).
///
//===----------------------------------------------------------------------===//

#include "apps/BloatSim.h"
#include "apps/ServerSim.h"
#include "apps/TvlaSim.h"
#include "collections/Handles.h"
#include "core/Chameleon.h"
#include "obs/Metrics.h"
#include "runtime/ThreadCache.h"

#include "TestHelpers.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace chameleon;
using namespace chameleon::testing;

namespace {

//===----------------------------------------------------------------------===//
// Size-class table
//===----------------------------------------------------------------------===//

TEST(AllocatorStress, SizeClassTableInvariants) {
  using namespace chameleon::alloc;
  // Sizes are strictly increasing and cover [8, kMaxPooledSize].
  EXPECT_EQ(classSize(0), 8u);
  EXPECT_EQ(classSize(kNumClasses - 1), kMaxPooledSize);
  for (uint32_t C = 1; C < kNumClasses; ++C)
    EXPECT_LT(classSize(C - 1), classSize(C)) << "class " << C;

  // The alignment guarantee of SizeClasses.h: every class above 128 bytes
  // is a 16-multiple (8-multiple classes only exist below that), so
  // 16-aligned types always land on 16-aligned blocks.
  for (uint32_t C = 0; C < kNumClasses; ++C) {
    EXPECT_EQ(classSize(C) % 8, 0u) << "class " << C;
    if (classSize(C) > 128)
      EXPECT_EQ(classSize(C) % 16, 0u) << "class " << C;
  }

  // classIndexFor is the exact inverse on class sizes and picks the
  // smallest sufficient class for everything in between.
  for (uint32_t C = 0; C < kNumClasses; ++C)
    EXPECT_EQ(classIndexFor(classSize(C)), C);
  for (size_t Size = 1; Size <= kMaxPooledSize; ++Size) {
    const uint32_t C = classIndexFor(Size);
    ASSERT_LT(C, kNumClasses) << "size " << Size;
    EXPECT_GE(classSize(C), Size) << "size " << Size;
    if (C > 0)
      EXPECT_LT(classSize(C - 1), Size) << "size " << Size;
  }

  // Transfer batches amortise the central lock without hoarding pages.
  for (uint32_t C = 0; C < kNumClasses; ++C) {
    EXPECT_GE(transferBatch(C), 2u) << "class " << C;
    EXPECT_LE(transferBatch(C), 32u) << "class " << C;
  }
}

//===----------------------------------------------------------------------===//
// Raw block lifecycle
//===----------------------------------------------------------------------===//

TEST(AllocatorStress, RawBlockRoundTrip) {
  using namespace chameleon::alloc;
  ASSERT_EQ(mode(), Mode::Cached);
  for (size_t UserSize : {1ul, 8ul, 24ul, 120ul, 500ul, 4000ul, 30000ul}) {
    void *P = allocateBlock(UserSize);
    ASSERT_NE(P, nullptr) << UserSize;
    BlockHeader *B = blockOfPayload(P);
    EXPECT_EQ(B->State, kLiveTag) << UserSize;
    const uint32_t Cls = classIndexFor(UserSize + sizeof(BlockHeader));
    EXPECT_EQ(B->ClassOrSize, Cls) << UserSize;
    // Blocks of 16-multiple classes carry 16-byte alignment (the header
    // is 16 bytes and spans start aligned); every block is at least
    // 8-aligned.
    const size_t Align = classSize(Cls) % 16 == 0 ? 16 : 8;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u) << UserSize;
    // The payload is fully writable.
    std::memset(P, 0xAB, UserSize);
    deallocateBlock(P);
    EXPECT_EQ(B->State, kFreeTag) << UserSize;
  }

  // Oversize requests bypass the pools entirely.
  void *Big = allocateBlock(kMaxPooledSize + 1);
  ASSERT_NE(Big, nullptr);
  EXPECT_EQ(blockOfPayload(Big)->State, kDirectTag);
  deallocateBlock(Big);
}

/// A freed-block pointer returned twice is counted and leaked, never
/// pushed onto a free list a second time.
TEST(AllocatorStress, DoubleFreeCountedAndContained) {
  using namespace chameleon::alloc;
  auto DoubleFrees = [] {
    uint64_t V = 0;
    for (const obs::MetricSnapshot &S :
         obs::MetricsRegistry::instance().snapshot("cham.alloc.double_free"))
      V += S.Value;
    return V;
  };
  const uint64_t Before = DoubleFrees();

  void *P = allocateBlock(48);
  deallocateBlock(P);
  deallocateBlock(P); // double return: counted, block leaked
  EXPECT_EQ(DoubleFrees(), Before + 1);

  // The free list stayed coherent: the block was not enqueued twice, so
  // two fresh allocations of the class never alias.
  void *A = allocateBlock(48);
  void *B = allocateBlock(48);
  EXPECT_NE(A, B);
  deallocateBlock(A);
  deallocateBlock(B);
}

/// Every block's header remembers how to free it, so blocks survive mode
/// switches: allocate under one mode, release under another.
TEST(AllocatorStress, BlocksSurviveModeSwitches) {
  using namespace chameleon::alloc;
  ASSERT_EQ(mode(), Mode::Cached);

  void *FromCached = allocateBlock(64);
  setMode(Mode::Central);
  void *FromCentral = allocateBlock(64);
  setMode(Mode::Passthrough);
  void *FromDirect = allocateBlock(64);
  EXPECT_EQ(blockOfPayload(FromDirect)->State, kDirectTag);

  // Release all three under modes other than the one that served them.
  deallocateBlock(FromCached); // passthrough mode, pooled block
  setMode(Mode::Cached);
  deallocateBlock(FromCentral); // cached mode, central-served block
  deallocateBlock(FromDirect);  // cached mode, direct block
}

//===----------------------------------------------------------------------===//
// Multi-threaded churn through safepoints
//===----------------------------------------------------------------------===//

/// N mutator threads churn allocations spanning the size-class table while
/// sampling GCs stop the world mid-loop; afterwards the heap must verify
/// and the byte accounting must balance. Runs with the thread caches on
/// and off — the same invariants hold on both paths.
void churnAcrossClasses(bool UseCaches) {
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  Config.UseThreadCaches = UseCaches;
  // Frequent sampling GCs: safepoints interrupt the churn constantly, so
  // slot-cache flush/unbump and storage recycling run under load.
  Config.GcSampleEveryBytes = 48 * 1024;
  CollectionRuntime RT(Config);

  constexpr unsigned Threads = 4;
  constexpr int PerThread = 1500;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&RT, T] {
      MutatorScope Scope(RT);
      SplitMix64 Rng(0x57BE55 + T);
      std::vector<Handle> Ring(32);
      for (int I = 0; I < PerThread; ++I) {
        // Scalar payloads from 0 to ~6 KiB: small-class, mid-class,
        // page-class and (with the header) near-direct blocks.
        const uint32_t Scalar =
            static_cast<uint32_t>(Rng.nextBelow(6144));
        ObjectRef Ref =
            RT.allocData(1 + static_cast<uint32_t>(Rng.nextBelow(4)),
                         Scalar)
                .asRef();
        if (Rng.nextBool(0.25))
          Ring[Rng.nextBelow(Ring.size())].set(RT.heap(), Ref);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_GT(RT.heap().cycleCount(), 0u)
      << "sampling GCs must have stopped the world mid-churn";

  std::string Error;
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;

  // All ring roots died with the worker scopes; a forced collection must
  // reclaim everything the runtime itself does not root, and the byte
  // accounting must balance exactly.
  const GcCycleRecord &Rec = RT.heap().collect(true);
  EXPECT_EQ(RT.heap().bytesInUse(), Rec.LiveBytes);
  EXPECT_EQ(RT.heap().objectsInUse(), Rec.LiveObjects);
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

TEST(AllocatorStress, MtChurnThroughSafepointsCached) {
  churnAcrossClasses(/*UseCaches=*/true);
}

TEST(AllocatorStress, MtChurnThroughSafepointsLocked) {
  churnAcrossClasses(/*UseCaches=*/false);
}

//===----------------------------------------------------------------------===//
// Determinism: cached path == locked path
//===----------------------------------------------------------------------===//

/// Single-threaded, the slot-cache flush discipline (SlotBumpTag un-bump)
/// must make the cached grant path invisible: the same workload on two
/// heaps — caches on and off — lands every allocation in the same slot,
/// before and after a collection recycles part of the heap.
TEST(AllocatorStress, SlotSequenceMatchesLockedPath) {
  auto Run = [](bool UseCaches) {
    auto Heap = std::make_unique<GcHeap>();
    Heap->setUseThreadCaches(UseCaches);
    TypeId Type = registerNodeType(*Heap);
    SplitMix64 Rng(0x51075);
    std::vector<uint32_t> Slots;
    std::vector<Handle> Roots;
    for (int I = 0; I < 4000; ++I) {
      ObjectRef R = allocNode(*Heap, Type, 1, 8 + 8 * Rng.nextBelow(64));
      Slots.push_back(R.slot());
      if (Rng.nextBool(0.2))
        Roots.emplace_back(*Heap, R);
    }
    GcCycleRecord Rec = Heap->collect(true);
    for (int I = 0; I < 4000; ++I)
      Slots.push_back(allocNode(*Heap, Type, 0).slot());
    return std::make_pair(std::move(Slots), Rec);
  };
  auto [CachedSlots, CachedRec] = Run(true);
  auto [LockedSlots, LockedRec] = Run(false);
  ASSERT_EQ(CachedSlots.size(), LockedSlots.size());
  EXPECT_EQ(CachedSlots, LockedSlots);
  EXPECT_EQ(CachedRec.LiveBytes, LockedRec.LiveBytes);
  EXPECT_EQ(CachedRec.LiveObjects, LockedRec.LiveObjects);
  EXPECT_EQ(CachedRec.FreedBytes, LockedRec.FreedBytes);
  EXPECT_EQ(CachedRec.FreedObjects, LockedRec.FreedObjects);
}

/// Signature of one profiled run: every cycle record field plus every
/// per-context aggregate, rendered to a comparable string (the same
/// discipline ParallelSweepTest uses for GC-thread invariance).
std::string profileSignature(const CollectionRuntime &RT) {
  std::string Sig;
  auto Add = [&Sig](uint64_t V) {
    Sig += std::to_string(V);
    Sig += ',';
  };
  for (const GcCycleRecord &Rec : RT.heap().cycles()) {
    Add(Rec.Cycle);
    Add(Rec.Forced);
    Add(Rec.LiveBytes);
    Add(Rec.LiveObjects);
    Add(Rec.CollectionLiveBytes);
    Add(Rec.CollectionUsedBytes);
    Add(Rec.CollectionCoreBytes);
    Add(Rec.CollectionObjects);
    Add(Rec.FreedBytes);
    Add(Rec.FreedObjects);
    for (const auto &[Type, Bytes] : Rec.TypeDistribution) {
      Add(Type);
      Add(Bytes);
    }
    Sig += '\n';
  }
  const SemanticProfiler &P = RT.profiler();
  for (const ContextInfo *Info : P.contexts()) {
    Sig += P.contextLabel(*Info);
    Sig += ':';
    Add(Info->allocations());
    Add(Info->foldedInstances());
    Add(Info->liveData().total());
    Add(Info->liveData().max());
    Add(Info->usedData().total());
    Add(Info->coreData().total());
    Sig += std::to_string(Info->opStat(OpKind::Put).mean());
    Sig += ',';
    Sig += std::to_string(Info->maxSizeStat().mean());
    Sig += '\n';
  }
  return Sig;
}

/// TvlaSim with sampling GCs: cached and locked allocation must produce
/// byte-identical cycle records and context aggregates at every GC thread
/// count.
TEST(AllocatorDifferential, TvlaCachesOnOffIdentical) {
  auto Run = [](unsigned GcThreads, bool UseCaches) {
    RuntimeConfig Config;
    Config.GcThreads = GcThreads;
    Config.UseThreadCaches = UseCaches;
    Config.RecordTypeDistribution = true;
    Config.GcSampleEveryBytes = 64 * 1024;
    auto RT = std::make_unique<CollectionRuntime>(Config);
    apps::TvlaConfig App;
    App.NumStates = 500;
    App.LiveWindow = 300;
    apps::runTvla(*RT, App);
    RT->heap().collect(true);
    RT->harvestLiveStatistics();
    return profileSignature(*RT);
  };

  std::string Baseline = Run(1, /*UseCaches=*/true);
  ASSERT_FALSE(Baseline.empty());
  for (unsigned GcThreads : {1u, 2u, 8u}) {
    EXPECT_EQ(Run(GcThreads, false), Baseline)
        << "locked path diverged at GcThreads=" << GcThreads;
    if (GcThreads != 1)
      EXPECT_EQ(Run(GcThreads, true), Baseline)
          << "cached path diverged at GcThreads=" << GcThreads;
  }
}

/// BloatSim through the full Chameleon pipeline: the rendered report (and
/// the cycle records backing it) must not depend on the allocator mode.
TEST(AllocatorDifferential, BloatCachesOnOffIdentical) {
  auto Profile = [](bool UseCaches) {
    ChameleonConfig Config;
    Config.Runtime.UseThreadCaches = UseCaches;
    Chameleon Tool(Config);
    apps::BloatConfig App;
    App.Phases = 4;
    App.NodesPerPhase = 400;
    App.SpikePhase = 2;
    return Tool.profile(
        [&](CollectionRuntime &RT) { apps::runBloat(RT, App); });
  };

  RunResult On = Profile(true);
  RunResult Off = Profile(false);
  ASSERT_FALSE(On.Report.empty());
  EXPECT_EQ(On.Report, Off.Report);
  EXPECT_EQ(On.GcCycles, Off.GcCycles);
  EXPECT_EQ(On.PeakLiveBytes, Off.PeakLiveBytes);
  EXPECT_EQ(On.TotalAllocatedBytes, Off.TotalAllocatedBytes);
  ASSERT_EQ(On.Cycles.size(), Off.Cycles.size());
  for (size_t I = 0; I < On.Cycles.size(); ++I) {
    EXPECT_EQ(On.Cycles[I].LiveBytes, Off.Cycles[I].LiveBytes);
    EXPECT_EQ(On.Cycles[I].FreedBytes, Off.Cycles[I].FreedBytes);
    EXPECT_EQ(On.Cycles[I].CollectionUsedBytes,
              Off.Cycles[I].CollectionUsedBytes);
  }
}

/// ServerSim with concurrent mutators: at 1, 2 and 8 mutator threads the
/// report must be byte-identical with the caches on and off (the trigger
/// mirror keeps collection points identical; the task-ordered replay keeps
/// the folds identical).
TEST(AllocatorDifferential, ServerSimCachesOnOffIdentical) {
  auto Run = [](uint32_t Threads, bool UseCaches) {
    RuntimeConfig Config = apps::serverSimRuntimeConfig();
    Config.UseThreadCaches = UseCaches;
    CollectionRuntime RT(Config);
    apps::ServerSimConfig SimConfig;
    SimConfig.MutatorThreads = Threads;
    return apps::runServerSim(RT, SimConfig);
  };

  for (uint32_t Threads : {1u, 2u, 8u}) {
    apps::ServerSimResult On = Run(Threads, true);
    apps::ServerSimResult Off = Run(Threads, false);
    ASSERT_FALSE(On.Report.empty());
    EXPECT_EQ(On.Report, Off.Report)
        << "allocator mode changed the report at " << Threads
        << " mutator threads";
  }
}

} // namespace
