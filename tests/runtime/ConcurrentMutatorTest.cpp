//===--- ConcurrentMutatorTest.cpp - Mutator-thread stress tests ----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stress and correctness tests of the concurrent-mutator runtime
/// (DESIGN.md §9): N registered mutator threads allocate, use, and retire
/// collections — with stop-the-world GCs triggered both by allocation
/// sampling mid-operation and by explicit collect() calls — while the
/// sharded profiler keeps exact, race-free statistics. Run under TSan in
/// CI (the `ConcurrentMutator*` filter of the sanitizer job).
///
//===----------------------------------------------------------------------===//

#include "collections/Handles.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using namespace chameleon;

namespace {

/// Runs \p Fn on \p Threads workers, each registered as a mutator.
void onMutators(CollectionRuntime &RT, unsigned Threads,
                const std::function<void(unsigned)> &Fn) {
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&RT, &Fn, T] {
      MutatorScope Scope(RT);
      Fn(T);
    });
  for (std::thread &W : Workers)
    W.join();
}

TEST(ConcurrentMutator, DisjointOpsUnderPressureGc) {
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  // Statistics-sampling GCs fire in the middle of handle operations, so
  // workers are stopped at countOp safepoint polls, not just at barriers.
  Config.GcSampleEveryBytes = 64 * 1024;
  CollectionRuntime RT(Config);

  constexpr unsigned Threads = 4;
  constexpr int PerThread = 600;
  onMutators(RT, Threads, [&](unsigned Tid) {
    FrameId Site = RT.site("cm.pressure:" + std::to_string(Tid));
    std::vector<Map> Kept;
    for (int I = 0; I < PerThread; ++I) {
      Map M = RT.newHashMap(Site, 4);
      for (int E = 0; E < 6; ++E)
        M.put(Value::ofInt(E), Value::ofInt(Tid * 1000 + I));
      ASSERT_EQ(M.size(), 6u);
      ASSERT_EQ(M.get(Value::ofInt(3)).asInt(), Tid * 1000 + I);
      if (I % 5 == 0)
        Kept.push_back(std::move(M));
      // The others die; sweep folding races against nothing because the
      // world is stopped for every cycle.
    }
    // Every retained map must have survived the pressure GCs intact.
    for (size_t I = 0; I < Kept.size(); ++I)
      ASSERT_EQ(Kept[I].get(Value::ofInt(0)).asInt(),
                static_cast<int64_t>(Tid * 1000 + I * 5));
  });

  EXPECT_GT(RT.heap().cycleCount(), 0u)
      << "the test must actually have stopped the world";
  RT.harvestLiveStatistics();
  uint64_t Allocations = 0;
  for (const ContextInfo *Ctx : RT.profiler().contexts())
    Allocations += Ctx->allocations();
  EXPECT_EQ(Allocations, static_cast<uint64_t>(Threads) * PerThread);
  std::string Error;
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

TEST(ConcurrentMutator, SamplingCountersExactPerThread) {
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  Config.Profiler.SamplingPeriod = 4;
  CollectionRuntime RT(Config);

  constexpr unsigned Threads = 4;
  constexpr int PerThread = 400; // divisible by the period
  onMutators(RT, Threads, [&](unsigned Tid) {
    FrameId Site = RT.site("cm.sampling:" + std::to_string(Tid));
    for (int I = 0; I < PerThread; ++I) {
      List L = RT.newArrayList(Site, 2);
      L.add(Value::ofInt(I));
      L.retire();
    }
  });

  // The sampling tick is per thread: each thread captures exactly 1 in 4
  // of its own allocations, with no cross-thread counter interleaving.
  EXPECT_EQ(RT.profiler().contextAcquisitions(),
            static_cast<uint64_t>(Threads) * PerThread / 4);
  EXPECT_EQ(RT.profiler().allocationsSampledOut(),
            static_cast<uint64_t>(Threads) * PerThread * 3 / 4);
}

TEST(ConcurrentMutator, StripedRegistrySameContextAcrossThreads) {
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  CollectionRuntime RT(Config);
  FrameId Site = RT.site("cm.shared:1");
  FrameId Caller = RT.profiler().internFrame("cm.caller");

  constexpr unsigned Threads = 8;
  constexpr int PerThread = 300;
  onMutators(RT, Threads, [&](unsigned) {
    CallFrame Frame(RT.profiler(), Caller);
    for (int I = 0; I < PerThread; ++I) {
      Map M = RT.newHashMap(Site, 2);
      M.put(Value::ofInt(0), Value::ofInt(I));
      M.retire();
    }
  });
  RT.profiler().flushEpoch();

  // All threads hit the same (site, type, stack): the striped registry
  // must deduplicate to exactly one context holding every event.
  ASSERT_EQ(RT.profiler().contexts().size(), 1u);
  const ContextInfo &Ctx = *RT.profiler().contexts().front();
  EXPECT_EQ(Ctx.allocations(), static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(Ctx.foldedInstances(),
            static_cast<uint64_t>(Threads) * PerThread);
}

TEST(ConcurrentMutator, FoldedStatsInvariantAcrossThreadCounts) {
  // The same partitioned workload at 1 and 4 threads must produce
  // identical context statistics (the fold order is the task order, not
  // the thread schedule).
  auto Run = [](unsigned Threads) {
    RuntimeConfig Config;
    Config.Profiler.ConcurrentMutators = true;
    CollectionRuntime RT(Config);
    FrameId Site = RT.site("cm.invariant:1");
    constexpr int Tasks = 240;
    onMutators(RT, Threads, [&](unsigned Tid) {
      for (int Task = 0; Task < Tasks; ++Task) {
        if (Task % Threads != Tid)
          continue;
        RT.profiler().setCurrentTask(Task + 1);
        List L = RT.newArrayList(Site, 4);
        for (int E = 0; E < Task % 9; ++E)
          L.add(Value::ofInt(E));
        (void)L.contains(Value::ofInt(1));
        L.retire();
      }
    });
    RT.profiler().flushEpoch();
    const ContextInfo &Ctx = *RT.profiler().contexts().front();
    return std::tuple(Ctx.allocations(), Ctx.foldedInstances(),
                      Ctx.avgAllOps(), Ctx.maxSizeStat().mean(),
                      Ctx.maxSizeStat().variance(),
                      Ctx.finalSizeStat().mean());
  };
  EXPECT_EQ(Run(1), Run(4));
}

TEST(ConcurrentMutator, HandlesMigrateAcrossThreads) {
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  CollectionRuntime RT(Config);
  FrameId Site = RT.site("cm.migrate:1");

  // Built on worker threads; the handles (and their root entries) outlive
  // the workers — unregistering splices surviving roots into the main
  // thread's root list.
  std::vector<Map> Survivors(4);
  onMutators(RT, 4, [&](unsigned Tid) {
    Map M = RT.newHashMap(Site, 4);
    M.put(Value::ofInt(0), Value::ofInt(Tid));
    Survivors[Tid] = std::move(M);
  });

  RT.heap().collect(/*Forced=*/true);
  std::string Error;
  ASSERT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
  for (unsigned Tid = 0; Tid < 4; ++Tid)
    EXPECT_EQ(Survivors[Tid].get(Value::ofInt(0)).asInt(),
              static_cast<int64_t>(Tid));
}

TEST(ConcurrentMutator, ConcurrentForcedCollections) {
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  CollectionRuntime RT(Config);

  // Several threads race to initiate stop-the-world cycles while the
  // rest keep mutating; initiators must serialise, and waiting out an
  // in-flight request must not deadlock.
  onMutators(RT, 4, [&](unsigned Tid) {
    FrameId Site = RT.site("cm.collect:" + std::to_string(Tid));
    for (int I = 0; I < 40; ++I) {
      List L = RT.newArrayList(Site, 2);
      L.add(Value::ofInt(I));
      if (I % 8 == Tid % 8)
        RT.heap().collect(/*Forced=*/true);
      ASSERT_EQ(L.get(0).asInt(), I);
      L.retire();
    }
  });
  std::string Error;
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

TEST(ConcurrentMutator, ParallelGcWithConcurrentMutators) {
  // Parallel collector workers (GcThreads=2) under registered mutator
  // threads: the STW protocol and the mark/sweep pool must compose.
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  Config.GcThreads = 2;
  Config.GcSampleEveryBytes = 96 * 1024;
  CollectionRuntime RT(Config);

  onMutators(RT, 4, [&](unsigned Tid) {
    FrameId Site = RT.site("cm.parallel:" + std::to_string(Tid));
    std::vector<List> Kept;
    for (int I = 0; I < 400; ++I) {
      List L = RT.newArrayList(Site, 4);
      for (int E = 0; E < 5; ++E)
        L.add(Value::ofInt(Tid * 10 + E));
      if (I % 7 == 0)
        Kept.push_back(std::move(L));
    }
    for (List &L : Kept)
      ASSERT_EQ(L.get(4).asInt(), static_cast<int64_t>(Tid * 10 + 4));
  });

  EXPECT_GT(RT.heap().cycleCount(), 0u);
  std::string Error;
  EXPECT_TRUE(RT.heap().verifyHeap(&Error)) << Error;
}

TEST(ConcurrentMutator, DeathFoldsExactUnderConcurrentRetire) {
  // Regression for the death-event fold race: every retired instance is
  // folded exactly once, even when sweeps run between the retires.
  RuntimeConfig Config;
  Config.Profiler.ConcurrentMutators = true;
  CollectionRuntime RT(Config);
  FrameId Site = RT.site("cm.retire:1");

  constexpr unsigned Threads = 4;
  constexpr int PerThread = 500;
  std::atomic<int> Collects{0};
  onMutators(RT, Threads, [&](unsigned Tid) {
    for (int I = 0; I < PerThread; ++I) {
      Map M = RT.newHashMap(Site, 2);
      M.put(Value::ofInt(0), Value::ofInt(I));
      M.retire(); // buffered on the retiring thread
      if (I % 100 == 99 && Tid == 0) {
        RT.heap().collect(/*Forced=*/true); // sweeps must skip the folded
        Collects.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  RT.profiler().flushEpoch();

  EXPECT_GT(Collects.load(), 0);
  ASSERT_EQ(RT.profiler().contexts().size(), 1u);
  const ContextInfo &Ctx = *RT.profiler().contexts().front();
  EXPECT_EQ(Ctx.allocations(), static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(Ctx.foldedInstances(),
            static_cast<uint64_t>(Threads) * PerThread)
      << "each instance must fold exactly once (retire + sweep idempotent)";
}

} // namespace
