//===--- FaultInjectionTest.cpp - Fault injector unit tests ---------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault injector's own contracts: glob matching over site names,
/// exact Nth-hit delivery, seed-replayable probability streams, FailScope
/// suppression, ForceGc site gating, MaxFires, and stats survival across
/// disarm.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

/// Disarms the process-global injector when a test ends, whatever happens.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

TEST(FaultSiteMatch, Globs) {
  EXPECT_TRUE(faultSiteMatch("gc.alloc", "gc.alloc"));
  EXPECT_FALSE(faultSiteMatch("gc.alloc", "gc.allocate"));
  EXPECT_FALSE(faultSiteMatch("gc.allocate", "gc.alloc"));

  EXPECT_TRUE(faultSiteMatch("*", "anything.at.all"));
  EXPECT_TRUE(faultSiteMatch("*", ""));
  EXPECT_TRUE(faultSiteMatch("", ""));
  EXPECT_FALSE(faultSiteMatch("", "x"));

  EXPECT_TRUE(faultSiteMatch("migrate.*", "migrate.begin"));
  EXPECT_TRUE(faultSiteMatch("migrate.*", "migrate."));
  EXPECT_FALSE(faultSiteMatch("migrate.*", "migrat.begin"));

  EXPECT_TRUE(faultSiteMatch("*.reserve", "hashmap.reserve"));
  EXPECT_TRUE(faultSiteMatch("*.reserve", ".reserve"));
  EXPECT_FALSE(faultSiteMatch("*.reserve", "hashmap.resize"));

  EXPECT_TRUE(faultSiteMatch("a*b", "ab"));
  EXPECT_TRUE(faultSiteMatch("a*b", "a.middle.b"));
  EXPECT_FALSE(faultSiteMatch("a*b", "a.middle.c"));

  // Multiple stars, with backtracking past a false partial match.
  EXPECT_TRUE(faultSiteMatch("*map*reserve", "hashmap.reserve"));
  EXPECT_TRUE(faultSiteMatch("*.re*ve", "arraylist.reserve"));
  EXPECT_FALSE(faultSiteMatch("*map*reserve", "arraylist.reserve"));
}

TEST(FaultInjector, NthHitFiresExactlyOnce) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan Plan;
  Plan.Rules.push_back({"x.site", FaultAction::FailAlloc, /*NthHit=*/3});
  FI.arm(Plan);
  ASSERT_TRUE(FaultInjector::enabled());

  for (int Hit = 1; Hit <= 10; ++Hit) {
    FaultAction A = FI.evaluate("x.site", /*AllowFail=*/true,
                                /*AllowGc=*/false);
    if (Hit == 3)
      EXPECT_EQ(A, FaultAction::FailAlloc) << "hit " << Hit;
    else
      EXPECT_EQ(A, FaultAction::None) << "hit " << Hit;
  }
  // Non-matching sites advance nothing.
  EXPECT_EQ(FI.evaluate("y.other", true, false), FaultAction::None);

  FaultStats Stats = FI.stats();
  EXPECT_EQ(Stats.Hits, 11u);
  EXPECT_EQ(Stats.AllocFailuresThrown, 1u);
  EXPECT_EQ(Stats.SuppressedFailures, 0u);
  ASSERT_EQ(FI.ruleReports().size(), 1u);
  EXPECT_EQ(FI.ruleReports()[0].Hits, 10u);
  EXPECT_EQ(FI.ruleReports()[0].Fires, 1u);
}

TEST(FaultInjector, SeedReplayIsExact) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();

  auto firePattern = [&FI](uint64_t Seed) {
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.Rules.push_back(
        {"p.site", FaultAction::FailAlloc, /*NthHit=*/0, /*Probability=*/0.3});
    FI.arm(Plan);
    std::vector<bool> Pattern;
    for (int I = 0; I < 256; ++I)
      Pattern.push_back(FI.evaluate("p.site", true, false)
                        == FaultAction::FailAlloc);
    return Pattern;
  };

  std::vector<bool> First = firePattern(0xFEED);
  std::vector<bool> Replay = firePattern(0xFEED);
  EXPECT_EQ(First, Replay) << "same seed must replay the exact schedule";

  std::vector<bool> Other = firePattern(0xFEED + 1);
  EXPECT_NE(First, Other) << "different seed, different schedule";

  // The schedule actually fires sometimes and skips sometimes.
  size_t Fires = 0;
  for (bool B : First)
    Fires += B;
  EXPECT_GT(Fires, 0u);
  EXPECT_LT(Fires, First.size());
}

TEST(FaultInjector, StreamPositionIgnoresScopeState) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan Plan;
  Plan.Seed = 0xAB;
  Plan.Rules.push_back(
      {"s.site", FaultAction::FailAlloc, /*NthHit=*/0, /*Probability=*/0.5});

  // Reference run: all hits inside a fail scope.
  FI.arm(Plan);
  std::vector<FaultAction> Reference;
  for (int I = 0; I < 64; ++I)
    Reference.push_back(FI.evaluate("s.site", true, false));

  // Interleaved run: even hits outside any scope (suppressed, not thrown)
  // must not shift the odd hits' draws.
  FI.arm(Plan);
  for (int I = 0; I < 64; ++I) {
    FaultAction A = FI.evaluate("s.site", /*AllowFail=*/I % 2 != 0, false);
    if (I % 2 != 0)
      EXPECT_EQ(A, Reference[I]) << "hit " << I;
    else
      EXPECT_EQ(A, FaultAction::None) << "hit " << I;
  }
  EXPECT_GT(FI.stats().SuppressedFailures, 0u);
}

TEST(FaultInjector, FailScopeGatesDeliveryAndMacroThrows) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan Plan;
  Plan.Rules.push_back({"m.site", FaultAction::FailAlloc, /*NthHit=*/1});
  FI.arm(Plan);

  // First (and only) firing hit lands outside a scope: suppressed.
  EXPECT_EQ(FI.evaluate("m.site", /*AllowFail=*/false, false),
            FaultAction::None);
  EXPECT_EQ(FI.stats().SuppressedFailures, 1u);
  EXPECT_EQ(FI.stats().AllocFailuresThrown, 0u);

  // Re-arm; with a scope armed the macro delivers a typed throw.
  FI.arm(Plan);
  FaultInjector::FailScope Scope;
  bool Thrown = false;
  try {
    CHAM_FAULT("m.site");
  } catch (const InjectedFault &F) {
    Thrown = true;
    EXPECT_STREQ(F.Site, "m.site");
  }
  EXPECT_TRUE(Thrown);
  EXPECT_EQ(FI.stats().AllocFailuresThrown, 1u);
}

TEST(FaultInjector, ForceGcOnlyAtGcCapableSites) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan Plan;
  Plan.Rules.push_back(
      {"g.site", FaultAction::ForceGc, /*NthHit=*/0, /*Probability=*/1.0});
  FI.arm(Plan);

  EXPECT_EQ(FI.evaluate("g.site", true, /*AllowGc=*/false),
            FaultAction::None)
      << "throw-only sites must never see a forced GC";
  EXPECT_EQ(FI.evaluate("g.site", true, /*AllowGc=*/true),
            FaultAction::ForceGc);
  EXPECT_EQ(FI.stats().ForcedGcs, 1u);
}

TEST(FaultInjector, MaxFiresBoundsDelivery) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan Plan;
  Plan.Rules.push_back({"b.site", FaultAction::FailAlloc, /*NthHit=*/0,
                        /*Probability=*/1.0, /*MaxFires=*/2});
  FI.arm(Plan);
  int Delivered = 0;
  for (int I = 0; I < 10; ++I)
    Delivered += FI.evaluate("b.site", true, false) == FaultAction::FailAlloc;
  EXPECT_EQ(Delivered, 2);
}

TEST(FaultInjector, DisarmKeepsStatsForReporting) {
  DisarmGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan Plan;
  Plan.Rules.push_back({"d.site", FaultAction::FailAlloc, /*NthHit=*/1});
  FI.arm(Plan);
  {
    FaultInjector::FailScope Scope;
    EXPECT_EQ(FI.evaluate("d.site", true, false), FaultAction::FailAlloc);
  }
  FI.disarm();
  EXPECT_FALSE(FaultInjector::enabled());
  // Disarmed sites stay quiet but the run's stats survive for the report.
  EXPECT_EQ(FI.evaluate("d.site", true, false), FaultAction::None);
  EXPECT_EQ(FI.stats().AllocFailuresThrown, 1u);
  EXPECT_EQ(FI.stats().Hits, 1u);
}

} // namespace
