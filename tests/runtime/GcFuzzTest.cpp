//===--- GcFuzzTest.cpp - Randomized collector property tests -------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test for the collector: a randomized object graph is mutated
/// alongside a C++-side shadow model; after every collection, the set of
/// surviving objects must be exactly the shadow model's reachable set,
/// and the heap's byte accounting must match the model's.
///
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"

#include "TestHelpers.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

using namespace chameleon;
using namespace chameleon::testing;

namespace {

/// C++-side mirror of the object graph.
struct ShadowGraph {
  struct ShadowNode {
    std::vector<ObjectRef> Refs; // slot -> target (null allowed)
    uint64_t Bytes = 0;
  };

  std::map<uint32_t, ShadowNode> Nodes; // keyed by slot index
  std::vector<ObjectRef> Roots;

  std::set<uint32_t> reachable() const {
    std::set<uint32_t> Seen;
    std::vector<uint32_t> Work;
    for (ObjectRef R : Roots) {
      if (!R.isNull() && Seen.insert(R.slot()).second)
        Work.push_back(R.slot());
    }
    while (!Work.empty()) {
      uint32_t Slot = Work.back();
      Work.pop_back();
      auto It = Nodes.find(Slot);
      EXPECT_TRUE(It != Nodes.end()) << "shadow graph corrupt";
      if (It == Nodes.end())
        continue;
      for (ObjectRef R : It->second.Refs)
        if (!R.isNull() && Seen.insert(R.slot()).second)
          Work.push_back(R.slot());
    }
    return Seen;
  }
};

TEST(GcFuzz, SurvivorsMatchShadowReachability) {
  GcHeap Heap;
  TypeId NodeType = registerNodeType(Heap);
  SplitMix64 Rng(20260704);
  ShadowGraph Shadow;
  std::vector<Handle> RootHandles;

  constexpr unsigned Slots = 3;
  auto AllLive = [&] {
    std::vector<uint32_t> Live;
    for (const auto &[Slot, Node] : Shadow.Nodes)
      Live.push_back(Slot);
    return Live;
  };

  for (int Step = 0; Step < 6000; ++Step) {
    unsigned Choice = static_cast<unsigned>(Rng.nextBelow(10));
    if (Choice < 4 || Shadow.Nodes.empty()) {
      // Allocate, sometimes rooted.
      uint64_t Bytes = 8 * (1 + Rng.nextBelow(8));
      ObjectRef R = allocNode(Heap, NodeType, Slots, Bytes);
      ShadowGraph::ShadowNode Node;
      Node.Refs.assign(Slots, ObjectRef::null());
      Node.Bytes = Bytes;
      Shadow.Nodes[R.slot()] = Node;
      if (Rng.nextBool(0.3)) {
        RootHandles.emplace_back(Heap, R);
        Shadow.Roots.push_back(R);
      }
    } else if (Choice < 7) {
      // Rewire a random edge between live nodes (or to null).
      std::vector<uint32_t> Live = AllLive();
      uint32_t From = Live[Rng.nextBelow(Live.size())];
      unsigned SlotIdx = static_cast<unsigned>(Rng.nextBelow(Slots));
      ObjectRef To = ObjectRef::null();
      if (Rng.nextBool(0.8))
        To = ObjectRef::fromSlot(Live[Rng.nextBelow(Live.size())]);
      Heap.getAs<Node>(ObjectRef::fromSlot(From)).setRef(SlotIdx, To);
      Shadow.Nodes[From].Refs[SlotIdx] = To;
    } else if (Choice < 8 && !RootHandles.empty()) {
      // Drop a random root.
      size_t I = Rng.nextBelow(RootHandles.size());
      RootHandles.erase(RootHandles.begin() + static_cast<long>(I));
      Shadow.Roots.erase(Shadow.Roots.begin() + static_cast<long>(I));
    } else if (Choice == 8) {
      // Collect and compare against the model.
      Heap.collect(/*Forced=*/true);
      std::set<uint32_t> Expected = Shadow.reachable();

      std::set<uint32_t> Actual;
      uint64_t ActualBytes = 0;
      Heap.forEachObject([&](HeapObject &Obj) {
        Actual.insert(Obj.self().slot());
        ActualBytes += Obj.shallowBytes();
      });

      ASSERT_EQ(Actual, Expected) << "survivor set diverged at step "
                                  << Step;
      uint64_t ExpectedBytes = 0;
      for (uint32_t Slot : Expected)
        ExpectedBytes += Shadow.Nodes[Slot].Bytes;
      ASSERT_EQ(Heap.bytesInUse(), ExpectedBytes);
      ASSERT_EQ(ActualBytes, ExpectedBytes);
      ASSERT_EQ(Heap.objectsInUse(), Expected.size());

      // Prune the shadow to the survivors (slots may be reused later).
      for (auto It = Shadow.Nodes.begin(); It != Shadow.Nodes.end();) {
        if (!Expected.count(It->first))
          It = Shadow.Nodes.erase(It);
        else
          ++It;
      }

      // The verifier agrees after every collection.
      std::string Error;
      ASSERT_TRUE(Heap.verifyHeap(&Error)) << Error;
    } else {
      // Duplicate-root churn: root an already-live node again.
      std::vector<uint32_t> Live = AllLive();
      ObjectRef R = ObjectRef::fromSlot(Live[Rng.nextBelow(Live.size())]);
      RootHandles.emplace_back(Heap, R);
      Shadow.Roots.push_back(R);
    }
  }

  // Final consistency check.
  Heap.collect(true);
  std::set<uint32_t> Expected = Shadow.reachable();
  ASSERT_EQ(Heap.objectsInUse(), Expected.size());
}

} // namespace
