//===--- GcHeapTest.cpp - Managed heap and collector unit tests ----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::testing;

namespace {

struct GcHeapTest : ::testing::Test {
  GcHeap Heap;
  TypeId NodeType = registerNodeType(Heap);
};

TEST_F(GcHeapTest, AllocateTracksBytesAndObjects) {
  EXPECT_EQ(Heap.bytesInUse(), 0u);
  ObjectRef A = allocNode(Heap, NodeType, 0, 24);
  ObjectRef B = allocNode(Heap, NodeType, 0, 40);
  (void)A;
  (void)B;
  EXPECT_EQ(Heap.bytesInUse(), 64u);
  EXPECT_EQ(Heap.objectsInUse(), 2u);
  EXPECT_EQ(Heap.totalAllocatedBytes(), 64u);
  EXPECT_EQ(Heap.totalAllocatedObjects(), 2u);
}

TEST_F(GcHeapTest, SelfRefIsStable) {
  ObjectRef A = allocNode(Heap, NodeType, 0);
  EXPECT_EQ(Heap.get(A).self(), A);
}

TEST_F(GcHeapTest, UnrootedObjectsAreSwept) {
  allocNode(Heap, NodeType, 0, 16);
  allocNode(Heap, NodeType, 0, 16);
  const GcCycleRecord &Rec = Heap.collect(/*Forced=*/true);
  EXPECT_EQ(Rec.FreedObjects, 2u);
  EXPECT_EQ(Rec.FreedBytes, 32u);
  EXPECT_EQ(Rec.LiveObjects, 0u);
  EXPECT_EQ(Heap.bytesInUse(), 0u);
}

TEST_F(GcHeapTest, RootedObjectsSurvive) {
  ObjectRef A = allocNode(Heap, NodeType, 0, 16);
  Handle Root(Heap, A);
  allocNode(Heap, NodeType, 0, 16); // garbage
  const GcCycleRecord &Rec = Heap.collect(true);
  EXPECT_EQ(Rec.LiveObjects, 1u);
  EXPECT_EQ(Rec.FreedObjects, 1u);
  EXPECT_EQ(Heap.get(A).shallowBytes(), 16u);
}

TEST_F(GcHeapTest, ReachabilityIsTransitive) {
  ObjectRef A = allocNode(Heap, NodeType, 1);
  ObjectRef B = allocNode(Heap, NodeType, 1);
  ObjectRef C = allocNode(Heap, NodeType, 0);
  Heap.getAs<Node>(A).setRef(0, B);
  Heap.getAs<Node>(B).setRef(0, C);
  Handle Root(Heap, A);
  const GcCycleRecord &Rec = Heap.collect(true);
  EXPECT_EQ(Rec.LiveObjects, 3u);
  EXPECT_EQ(Rec.FreedObjects, 0u);
}

TEST_F(GcHeapTest, CyclesAreCollected) {
  ObjectRef A = allocNode(Heap, NodeType, 1);
  ObjectRef B = allocNode(Heap, NodeType, 1);
  Heap.getAs<Node>(A).setRef(0, B);
  Heap.getAs<Node>(B).setRef(0, A);
  const GcCycleRecord &Rec = Heap.collect(true);
  EXPECT_EQ(Rec.FreedObjects, 2u);
}

TEST_F(GcHeapTest, DeepChainDoesNotOverflowTheStack) {
  // The marker must be iterative: a recursive tracer would overflow on a
  // long linked chain.
  ObjectRef Head = allocNode(Heap, NodeType, 1);
  Handle Root(Heap, Head);
  ObjectRef Prev = Head;
  for (int I = 0; I < 200000; ++I) {
    ObjectRef Next = allocNode(Heap, NodeType, 1);
    Heap.getAs<Node>(Prev).setRef(0, Next);
    Prev = Next;
  }
  const GcCycleRecord &Rec = Heap.collect(true);
  EXPECT_EQ(Rec.LiveObjects, 200001u);
}

TEST_F(GcHeapTest, SlotReuseAfterSweep) {
  ObjectRef A = allocNode(Heap, NodeType, 0);
  uint32_t OldSlot = A.slot();
  Heap.collect(true); // sweeps A
  ObjectRef B = allocNode(Heap, NodeType, 0);
  EXPECT_EQ(B.slot(), OldSlot);
}

TEST_F(GcHeapTest, TempRootsProtectAcrossCollections) {
  ObjectRef A = allocNode(Heap, NodeType, 0);
  {
    TempRootScope Guard(Heap, A);
    const GcCycleRecord &Rec = Heap.collect(true);
    EXPECT_EQ(Rec.LiveObjects, 1u);
  }
  const GcCycleRecord &Rec = Heap.collect(true);
  EXPECT_EQ(Rec.FreedObjects, 1u);
}

TEST_F(GcHeapTest, PressureCollectionTriggersAtTheLimit) {
  Heap.setHeapLimit(1024);
  Heap.setMinFreeFraction(0.0);
  // Allocate garbage past the limit; pressure GCs keep reclaiming it.
  for (int I = 0; I < 100; ++I)
    allocNode(Heap, NodeType, 0, 64);
  EXPECT_FALSE(Heap.outOfMemory());
  EXPECT_GT(Heap.cycleCount(), 0u);
}

TEST_F(GcHeapTest, OutOfMemoryWhenLiveExceedsLimit) {
  Heap.setHeapLimit(1024);
  Heap.setMinFreeFraction(0.0);
  std::vector<Handle> Roots;
  for (int I = 0; I < 100 && !Heap.outOfMemory(); ++I)
    Roots.emplace_back(Heap, allocNode(Heap, NodeType, 0, 64));
  EXPECT_TRUE(Heap.outOfMemory());
}

TEST_F(GcHeapTest, MinFreeFractionFailsTightHeapsFast) {
  // With a 50% headroom requirement, live data over half the limit is
  // already out-of-memory at the first pressure collection.
  Heap.setHeapLimit(1024);
  Heap.setMinFreeFraction(0.5);
  std::vector<Handle> Roots;
  for (int I = 0; I < 12; ++I)
    Roots.emplace_back(Heap, allocNode(Heap, NodeType, 0, 64));
  // 768 live bytes; the next allocation exceeds 1024 and collects, but
  // headroom after GC is < 512.
  for (int I = 0; I < 8; ++I)
    allocNode(Heap, NodeType, 0, 64);
  EXPECT_TRUE(Heap.outOfMemory());
}

TEST_F(GcHeapTest, ClearOutOfMemoryResets) {
  Heap.setHeapLimit(64);
  Heap.setMinFreeFraction(0.0);
  Handle Root(Heap, allocNode(Heap, NodeType, 0, 48));
  allocNode(Heap, NodeType, 0, 48);
  EXPECT_TRUE(Heap.outOfMemory());
  Heap.clearOutOfMemory();
  EXPECT_FALSE(Heap.outOfMemory());
}

TEST_F(GcHeapTest, ForcedCyclesAreMarkedForced) {
  Heap.collect(true);
  Heap.collect(false);
  ASSERT_EQ(Heap.cycles().size(), 2u);
  EXPECT_TRUE(Heap.cycles()[0].Forced);
  EXPECT_FALSE(Heap.cycles()[1].Forced);
  EXPECT_EQ(Heap.cycles()[0].Cycle, 1u);
  EXPECT_EQ(Heap.cycles()[1].Cycle, 2u);
}

TEST_F(GcHeapTest, SamplingGcFiresByAllocationVolume) {
  Heap.setGcSampleEveryBytes(1024);
  for (int I = 0; I < 100; ++I)
    allocNode(Heap, NodeType, 0, 64); // 6400 bytes total
  EXPECT_GE(Heap.cycleCount(), 5u);
  EXPECT_LE(Heap.cycleCount(), 7u);
  for (const GcCycleRecord &Rec : Heap.cycles())
    EXPECT_TRUE(Rec.Forced);
}

TEST_F(GcHeapTest, ForEachObjectVisitsAllAllocated) {
  allocNode(Heap, NodeType, 0);
  allocNode(Heap, NodeType, 0);
  unsigned Count = 0;
  Heap.forEachObject([&](HeapObject &) { ++Count; });
  EXPECT_EQ(Count, 2u);
}

TEST_F(GcHeapTest, TypeDistributionRecordedWhenEnabled) {
  Heap.setRecordTypeDistribution(true);
  TypeId Other = registerNodeType(Heap, "Other");
  Handle R1(Heap, allocNode(Heap, NodeType, 0, 16));
  Handle R2(Heap, allocNode(Heap, Other, 0, 32));
  const GcCycleRecord &Rec = Heap.collect(true);
  ASSERT_EQ(Rec.TypeDistribution.size(), 2u);
  uint64_t NodeBytes = 0, OtherBytes = 0;
  for (auto &[Type, Bytes] : Rec.TypeDistribution) {
    if (Type == NodeType)
      NodeBytes = Bytes;
    if (Type == Other)
      OtherBytes = Bytes;
  }
  EXPECT_EQ(NodeBytes, 16u);
  EXPECT_EQ(OtherBytes, 32u);
}

TEST_F(GcHeapTest, VerifyHeapAcceptsAConsistentHeap) {
  ObjectRef A = allocNode(Heap, NodeType, 2);
  ObjectRef B = allocNode(Heap, NodeType, 0);
  Heap.getAs<Node>(A).setRef(0, B);
  Handle Root(Heap, A);
  Heap.collect(true);
  std::string Error;
  EXPECT_TRUE(Heap.verifyHeap(&Error)) << Error;
}

TEST_F(GcHeapTest, VerifyHeapCatchesDanglingReferences) {
  ObjectRef A = allocNode(Heap, NodeType, 1);
  Handle Root(Heap, A);
  ObjectRef Garbage = allocNode(Heap, NodeType, 0);
  Heap.collect(true); // frees Garbage's slot
  // Wire a stale reference to the freed slot (programmer error).
  Heap.getAs<Node>(A).setRef(0, Garbage);
  std::string Error;
  EXPECT_FALSE(Heap.verifyHeap(&Error));
  EXPECT_NE(Error.find("dangling reference"), std::string::npos);
}

TEST_F(GcHeapTest, CycleRecordFractionsComputed) {
  GcCycleRecord Rec;
  Rec.LiveBytes = 1000;
  Rec.CollectionLiveBytes = 700;
  Rec.CollectionUsedBytes = 400;
  Rec.CollectionCoreBytes = 100;
  EXPECT_DOUBLE_EQ(Rec.collectionLiveFraction(), 0.7);
  EXPECT_DOUBLE_EQ(Rec.collectionUsedFraction(), 0.4);
  EXPECT_DOUBLE_EQ(Rec.collectionCoreFraction(), 0.1);
  GcCycleRecord Empty;
  EXPECT_DOUBLE_EQ(Empty.collectionLiveFraction(), 0.0);
}

} // namespace
