//===--- HandleTest.cpp - Root handle unit tests --------------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <vector>

using namespace chameleon;
using namespace chameleon::testing;

namespace {

struct HandleTest : ::testing::Test {
  GcHeap Heap;
  TypeId NodeType = registerNodeType(Heap);

  unsigned liveAfterGc() {
    return static_cast<unsigned>(Heap.collect(true).LiveObjects);
  }
};

TEST_F(HandleTest, DefaultHandleIsNull) {
  Handle H;
  EXPECT_TRUE(H.isNull());
  EXPECT_EQ(H.heap(), nullptr);
}

TEST_F(HandleTest, HandleKeepsObjectAlive) {
  Handle H(Heap, allocNode(Heap, NodeType, 0));
  EXPECT_EQ(liveAfterGc(), 1u);
  H.reset();
  EXPECT_EQ(liveAfterGc(), 0u);
}

TEST_F(HandleTest, CopyIsAnIndependentRoot) {
  Handle A(Heap, allocNode(Heap, NodeType, 0));
  Handle B = A;
  A.reset();
  EXPECT_EQ(liveAfterGc(), 1u);
  B.reset();
  EXPECT_EQ(liveAfterGc(), 0u);
}

TEST_F(HandleTest, MoveTransfersTheRoot) {
  Handle A(Heap, allocNode(Heap, NodeType, 0));
  Handle B = std::move(A);
  EXPECT_TRUE(A.isNull());
  EXPECT_FALSE(B.isNull());
  EXPECT_EQ(liveAfterGc(), 1u);
}

TEST_F(HandleTest, MoveAssignmentDropsOldTarget) {
  Handle A(Heap, allocNode(Heap, NodeType, 0));
  Handle B(Heap, allocNode(Heap, NodeType, 0));
  B = std::move(A);
  // B's old object is now unrooted; A's object stays alive through B.
  EXPECT_EQ(liveAfterGc(), 1u);
}

TEST_F(HandleTest, SelfAssignmentIsSafe) {
  Handle A(Heap, allocNode(Heap, NodeType, 0));
  Handle &Alias = A;
  A = Alias;
  EXPECT_FALSE(A.isNull());
  EXPECT_EQ(liveAfterGc(), 1u);
}

TEST_F(HandleTest, VectorReallocationPreservesRoots) {
  // Vector growth moves handles; the intrusive root list must follow.
  std::vector<Handle> Handles;
  for (int I = 0; I < 100; ++I)
    Handles.emplace_back(Heap, allocNode(Heap, NodeType, 0));
  EXPECT_EQ(liveAfterGc(), 100u);
  Handles.clear();
  EXPECT_EQ(liveAfterGc(), 0u);
}

TEST_F(HandleTest, SetRetargets) {
  Handle H(Heap, allocNode(Heap, NodeType, 0));
  ObjectRef Second = allocNode(Heap, NodeType, 0);
  H.set(Heap, Second);
  EXPECT_EQ(H.ref(), Second);
  EXPECT_EQ(liveAfterGc(), 1u);
}

TEST_F(HandleTest, ManyHandlesToSameObject) {
  ObjectRef A = allocNode(Heap, NodeType, 0);
  std::vector<Handle> Handles;
  for (int I = 0; I < 10; ++I)
    Handles.emplace_back(Heap, A);
  EXPECT_EQ(liveAfterGc(), 1u);
  Handles.resize(1);
  EXPECT_EQ(liveAfterGc(), 1u);
  Handles.clear();
  EXPECT_EQ(liveAfterGc(), 0u);
}

} // namespace
