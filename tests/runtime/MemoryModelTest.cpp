//===--- MemoryModelTest.cpp - Layout arithmetic unit tests ---------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/MemoryModel.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(MemoryModel, AlignRoundsUpToGranule) {
  MemoryModel M = MemoryModel::jvm32();
  EXPECT_EQ(M.align(0), 0u);
  EXPECT_EQ(M.align(1), 8u);
  EXPECT_EQ(M.align(8), 8u);
  EXPECT_EQ(M.align(9), 16u);
  EXPECT_EQ(M.align(24), 24u);
}

TEST(MemoryModel, HashMapEntryIsExactly24Bytes) {
  // §2.3: "The entry object alone on a 32-bit architecture consumes 24
  // bytes (object header and three pointers)."
  MemoryModel M = MemoryModel::jvm32();
  EXPECT_EQ(M.objectBytes(3), 24u);
}

TEST(MemoryModel, ObjectBytesIncludesScalars) {
  MemoryModel M = MemoryModel::jvm32();
  // Header 8 + 1 pointer (4) = 12 -> 16.
  EXPECT_EQ(M.objectBytes(1), 16u);
  // Header 8 + 1 pointer + 8 scalar bytes = 20 -> 24.
  EXPECT_EQ(M.objectBytes(1, 8), 24u);
  // Header only.
  EXPECT_EQ(M.objectBytes(0), 8u);
}

TEST(MemoryModel, ArrayBytes) {
  MemoryModel M = MemoryModel::jvm32();
  // Header 12 -> aligned 16 for the empty array.
  EXPECT_EQ(M.arrayBytes(0), 16u);
  // 12 + 10*4 = 52 -> 56 (the default ArrayList backing array).
  EXPECT_EQ(M.arrayBytes(10), 56u);
  // 12 + 16*4 = 76 -> 80 (the default HashMap table).
  EXPECT_EQ(M.arrayBytes(16), 80u);
}

TEST(MemoryModel, LinkedHashEntryIs32Bytes) {
  MemoryModel M = MemoryModel::jvm32();
  // Header 8 + 5 pointers = 28 -> 32.
  EXPECT_EQ(M.objectBytes(5), 32u);
}

TEST(MemoryModel, Jvm64UsesWideReferences) {
  MemoryModel M = MemoryModel::jvm64();
  // Header 16 + 3 pointers * 8 = 40.
  EXPECT_EQ(M.objectBytes(3), 40u);
  EXPECT_EQ(M.arrayBytes(2), 40u); // 24 + 16
}

TEST(MemoryModel, ArrayListGrowthPolicyFromPaper) {
  // §2.2: growing a 100-capacity ArrayList yields capacity 151.
  auto Grow = [](uint32_t C) { return (C * 3) / 2 + 1; };
  EXPECT_EQ(Grow(100), 151u);
  EXPECT_EQ(Grow(10), 16u);
  EXPECT_EQ(Grow(0), 1u);
}

} // namespace
