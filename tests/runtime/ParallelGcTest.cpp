//===--- ParallelGcTest.cpp - Parallel marking equivalence tests ----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's collector marks with parallel threads (§4.3.2) and we keep
/// that orthogonal to every reported metric: these tests build identical
/// heaps and check that parallel marking produces bit-identical cycle
/// statistics and per-context profiles to sequential marking.
///
//===----------------------------------------------------------------------===//

#include "collections/CollectionRuntime.h"
#include "collections/Handles.h"

#include "TestHelpers.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::testing;

namespace {

/// Builds the same random object graph on \p Heap (deterministic).
std::vector<Handle> buildGraph(GcHeap &Heap, TypeId NodeType) {
  SplitMix64 Rng(4242);
  std::vector<ObjectRef> All;
  std::vector<Handle> Roots;
  for (int I = 0; I < 20000; ++I) {
    ObjectRef R = allocNode(Heap, NodeType, 3, 8 * (1 + Rng.nextBelow(6)));
    All.push_back(R);
    if (Rng.nextBool(0.05))
      Roots.emplace_back(Heap, R);
    // Wire a few random edges backwards (keeps some garbage unreachable).
    Node &N = Heap.getAs<Node>(R);
    for (unsigned S = 0; S < 3; ++S)
      if (Rng.nextBool(0.6))
        N.setRef(S, All[Rng.nextBelow(All.size())]);
  }
  return Roots;
}

TEST(ParallelGc, CycleStatisticsMatchSequential) {
  GcHeap Sequential;
  TypeId SeqType = registerNodeType(Sequential);
  std::vector<Handle> SeqRoots = buildGraph(Sequential, SeqType);
  const GcCycleRecord &SeqRec = Sequential.collect(true);

  GcHeap Parallel;
  Parallel.setGcThreads(4);
  TypeId ParType = registerNodeType(Parallel);
  std::vector<Handle> ParRoots = buildGraph(Parallel, ParType);
  const GcCycleRecord &ParRec = Parallel.collect(true);

  EXPECT_EQ(ParRec.LiveBytes, SeqRec.LiveBytes);
  EXPECT_EQ(ParRec.LiveObjects, SeqRec.LiveObjects);
  EXPECT_EQ(ParRec.FreedBytes, SeqRec.FreedBytes);
  EXPECT_EQ(ParRec.FreedObjects, SeqRec.FreedObjects);
  EXPECT_EQ(Parallel.bytesInUse(), Sequential.bytesInUse());
}

TEST(ParallelGc, RepeatedCyclesStayConsistent) {
  GcHeap Heap;
  Heap.setGcThreads(4);
  TypeId NodeType = registerNodeType(Heap);
  std::vector<Handle> Roots = buildGraph(Heap, NodeType);
  uint64_t Live1 = Heap.collect(true).LiveObjects;
  uint64_t Live2 = Heap.collect(true).LiveObjects;
  EXPECT_EQ(Live1, Live2);
  Roots.clear();
  EXPECT_EQ(Heap.collect(true).LiveObjects, 0u);
}

TEST(ParallelGc, CollectionProfilesMatchSequential) {
  auto RunWorkload = [](unsigned Threads) {
    RuntimeConfig Config;
    Config.GcThreads = Threads;
    Config.RecordTypeDistribution = true;
    auto RT = std::make_unique<CollectionRuntime>(Config);
    FrameId Site = RT->site("par:1");
    std::vector<Map> Live;
    for (int I = 0; I < 500; ++I) {
      Map M = RT->newHashMap(Site);
      for (int E = 0; E < 3; ++E)
        M.put(Value::ofInt(E), Value::ofInt(I));
      Live.push_back(std::move(M));
      if (Live.size() > 200)
        Live.erase(Live.begin());
      if (I % 50 == 49)
        RT->heap().collect(true);
    }
    Live.clear();
    RT->heap().collect(true);
    return RT;
  };

  auto Seq = RunWorkload(1);
  auto Par = RunWorkload(4);

  ASSERT_EQ(Seq->heap().cycleCount(), Par->heap().cycleCount());
  for (size_t I = 0; I < Seq->heap().cycles().size(); ++I) {
    const GcCycleRecord &A = Seq->heap().cycles()[I];
    const GcCycleRecord &B = Par->heap().cycles()[I];
    EXPECT_EQ(A.LiveBytes, B.LiveBytes) << "cycle " << I;
    EXPECT_EQ(A.CollectionLiveBytes, B.CollectionLiveBytes);
    EXPECT_EQ(A.CollectionUsedBytes, B.CollectionUsedBytes);
    EXPECT_EQ(A.CollectionCoreBytes, B.CollectionCoreBytes);
    EXPECT_EQ(A.CollectionObjects, B.CollectionObjects);
    EXPECT_EQ(A.TypeDistribution, B.TypeDistribution);
  }

  // Per-context Table-1 profiles agree too.
  ASSERT_EQ(Seq->profiler().contexts().size(),
            Par->profiler().contexts().size());
  const ContextInfo *A = Seq->profiler().contexts()[0];
  const ContextInfo *B = Par->profiler().contexts()[0];
  EXPECT_EQ(A->foldedInstances(), B->foldedInstances());
  EXPECT_EQ(A->liveData().total(), B->liveData().total());
  EXPECT_EQ(A->usedData().total(), B->usedData().total());
  EXPECT_DOUBLE_EQ(A->opStat(OpKind::Put).mean(),
                   B->opStat(OpKind::Put).mean());
}

TEST(ParallelGc, DeepChainMarksCompletely) {
  GcHeap Heap;
  Heap.setGcThreads(4);
  TypeId NodeType = registerNodeType(Heap);
  ObjectRef Head = allocNode(Heap, NodeType, 1);
  Handle Root(Heap, Head);
  ObjectRef Prev = Head;
  for (int I = 0; I < 100000; ++I) {
    ObjectRef Next = allocNode(Heap, NodeType, 1);
    Heap.getAs<Node>(Prev).setRef(0, Next);
    Prev = Next;
  }
  EXPECT_EQ(Heap.collect(true).LiveObjects, 100001u);
}

} // namespace
