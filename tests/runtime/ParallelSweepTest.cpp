//===--- ParallelSweepTest.cpp - Parallel sweep equivalence tests ---------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep phase partitions the slot vector across the persistent worker
/// pool (GcHeap.h); like parallel marking, it must be invisible in every
/// recorded metric. These tests check that parallel sweeping frees exactly
/// what the sequential sweep frees, replays death events in the sequential
/// sweep's slot order, recycles slots in the same order (so future
/// allocations land in identical slots), and that whole profiled workloads
/// produce byte-identical records, per-context aggregates, and reports at
/// GcThreads 1, 2, and 8 — with the pool and with the spawn-per-cycle
/// fallback.
///
//===----------------------------------------------------------------------===//

#include "apps/BloatSim.h"
#include "apps/TvlaSim.h"
#include "core/Chameleon.h"

#include "TestHelpers.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace chameleon;
using namespace chameleon::testing;

namespace {

/// Builds a deterministic graph with a mix of reachable and garbage nodes.
std::vector<Handle> buildMixedGraph(GcHeap &Heap, TypeId NodeType) {
  SplitMix64 Rng(77);
  std::vector<ObjectRef> All;
  std::vector<Handle> Roots;
  for (int I = 0; I < 12000; ++I) {
    ObjectRef R = allocNode(Heap, NodeType, 2, 8 * (1 + Rng.nextBelow(5)));
    All.push_back(R);
    if (Rng.nextBool(0.08))
      Roots.emplace_back(Heap, R);
    Node &N = Heap.getAs<Node>(R);
    for (unsigned S = 0; S < 2; ++S)
      if (Rng.nextBool(0.5))
        N.setRef(S, All[Rng.nextBelow(All.size())]);
  }
  return Roots;
}

TEST(ParallelSweep, SweepStatisticsMatchSequential) {
  GcHeap Sequential;
  TypeId SeqType = registerNodeType(Sequential);
  std::vector<Handle> SeqRoots = buildMixedGraph(Sequential, SeqType);
  const GcCycleRecord &SeqRec = Sequential.collect(true);

  GcHeap Parallel;
  Parallel.setGcThreads(4);
  TypeId ParType = registerNodeType(Parallel);
  std::vector<Handle> ParRoots = buildMixedGraph(Parallel, ParType);
  const GcCycleRecord &ParRec = Parallel.collect(true);

  EXPECT_EQ(ParRec.FreedBytes, SeqRec.FreedBytes);
  EXPECT_EQ(ParRec.FreedObjects, SeqRec.FreedObjects);
  EXPECT_EQ(ParRec.LiveBytes, SeqRec.LiveBytes);
  EXPECT_EQ(Parallel.bytesInUse(), Sequential.bytesInUse());
  EXPECT_EQ(Parallel.objectsInUse(), Sequential.objectsInUse());

  std::string Error;
  EXPECT_TRUE(Sequential.verifyHeap(&Error)) << Error;
  EXPECT_TRUE(Parallel.verifyHeap(&Error)) << Error;

  // Slot recycling order must match the sequential sweep exactly, so the
  // next allocations land in the same slots on both heaps.
  for (int I = 0; I < 50; ++I) {
    ObjectRef A = allocNode(Sequential, SeqType, 0);
    ObjectRef B = allocNode(Parallel, ParType, 0);
    EXPECT_EQ(A.slot(), B.slot()) << "allocation " << I;
  }
}

TEST(ParallelSweep, SpawnPerCycleFallbackMatchesPool) {
  auto Run = [](bool UsePool) {
    GcHeap Heap;
    Heap.setGcThreads(4);
    Heap.setUseWorkerPool(UsePool);
    TypeId NodeType = registerNodeType(Heap);
    std::vector<Handle> Roots = buildMixedGraph(Heap, NodeType);
    GcCycleRecord First = Heap.collect(true);
    Roots.resize(Roots.size() / 2);
    GcCycleRecord Second = Heap.collect(true);
    return std::make_pair(First, Second);
  };
  auto [PoolFirst, PoolSecond] = Run(true);
  auto [SpawnFirst, SpawnSecond] = Run(false);
  EXPECT_EQ(PoolFirst.FreedBytes, SpawnFirst.FreedBytes);
  EXPECT_EQ(PoolFirst.LiveBytes, SpawnFirst.LiveBytes);
  EXPECT_EQ(PoolSecond.FreedBytes, SpawnSecond.FreedBytes);
  EXPECT_EQ(PoolSecond.LiveObjects, SpawnSecond.LiveObjects);
}

/// Hooks that record the slot of every death event, in replay order.
class DeathOrderRecorder : public HeapProfilerHooks {
public:
  void onLiveCollection(const HeapObject &, const CollectionSizes &,
                        void *) override {}
  void onCollectionDeath(const HeapObject &Obj, void *, void *) override {
    DeathSlots.push_back(Obj.self().slot());
  }
  void onCycleEnd(const GcCycleRecord &) override {}

  std::vector<uint32_t> DeathSlots;
};

/// Registers a fake collection-wrapper type whose semantic map reports
/// fixed sizes and tags, enough to reach the death hook.
TypeId registerFakeWrapperType(GcHeap &Heap) {
  SemanticMap Map;
  Map.Name = "FakeWrapper";
  Map.Kind = TypeKind::CollectionWrapper;
  Map.ComputeSizes = [](const HeapObject &Obj, const GcHeap &) {
    CollectionSizes S;
    S.Live = Obj.shallowBytes();
    S.Used = Obj.shallowBytes();
    return S;
  };
  Map.ContextTagOf = [](const HeapObject &Obj) {
    return const_cast<void *>(static_cast<const void *>(&Obj));
  };
  Map.ObjectInfoOf = [](const HeapObject &Obj) {
    return const_cast<void *>(static_cast<const void *>(&Obj));
  };
  return Heap.types().registerType(std::move(Map));
}

TEST(ParallelSweep, DeathEventsReplayInSlotOrder) {
  auto Run = [](unsigned Threads) {
    GcHeap Heap;
    Heap.setGcThreads(Threads);
    DeathOrderRecorder Recorder;
    Heap.setProfilerHooks(&Recorder);
    TypeId Wrapper = registerFakeWrapperType(Heap);
    TypeId Plain = registerNodeType(Heap);
    SplitMix64 Rng(9);
    std::vector<Handle> Roots;
    for (int I = 0; I < 5000; ++I) {
      ObjectRef R = allocNode(Heap, I % 3 == 0 ? Wrapper : Plain, 0, 16);
      if (Rng.nextBool(0.2))
        Roots.emplace_back(Heap, R);
    }
    Heap.collect(true);
    Heap.setProfilerHooks(nullptr);
    return Recorder.DeathSlots;
  };

  std::vector<uint32_t> Sequential = Run(1);
  ASSERT_FALSE(Sequential.empty());
  EXPECT_TRUE(std::is_sorted(Sequential.begin(), Sequential.end()));
  EXPECT_EQ(Run(2), Sequential);
  EXPECT_EQ(Run(8), Sequential);
}

/// Signature of one profiled run: every cycle record field plus every
/// per-context aggregate, rendered to a comparable string.
std::string profileSignature(const CollectionRuntime &RT) {
  std::string Sig;
  auto Add = [&Sig](uint64_t V) {
    Sig += std::to_string(V);
    Sig += ',';
  };
  for (const GcCycleRecord &Rec : RT.heap().cycles()) {
    Add(Rec.Cycle);
    Add(Rec.Forced);
    Add(Rec.LiveBytes);
    Add(Rec.LiveObjects);
    Add(Rec.CollectionLiveBytes);
    Add(Rec.CollectionUsedBytes);
    Add(Rec.CollectionCoreBytes);
    Add(Rec.CollectionObjects);
    Add(Rec.FreedBytes);
    Add(Rec.FreedObjects);
    for (const auto &[Type, Bytes] : Rec.TypeDistribution) {
      Add(Type);
      Add(Bytes);
    }
    Sig += '\n';
  }
  const SemanticProfiler &P = RT.profiler();
  for (const ContextInfo *Info : P.contexts()) {
    Sig += P.contextLabel(*Info);
    Sig += ':';
    Add(Info->allocations());
    Add(Info->foldedInstances());
    Add(Info->liveData().total());
    Add(Info->liveData().max());
    Add(Info->usedData().total());
    Add(Info->coreData().total());
    Sig += std::to_string(Info->opStat(OpKind::Put).mean());
    Sig += ',';
    Sig += std::to_string(Info->maxSizeStat().mean());
    Sig += '\n';
  }
  return Sig;
}

TEST(GcThreadsInvariance, ProfiledTvlaIdenticalAt128Threads) {
  auto Run = [](unsigned Threads) {
    RuntimeConfig Config;
    Config.GcThreads = Threads;
    Config.RecordTypeDistribution = true;
    Config.GcSampleEveryBytes = 64 * 1024;
    auto RT = std::make_unique<CollectionRuntime>(Config);
    apps::TvlaConfig App;
    App.NumStates = 500;
    App.LiveWindow = 300;
    apps::runTvla(*RT, App);
    RT->heap().collect(true);
    RT->harvestLiveStatistics();
    return profileSignature(*RT);
  };

  std::string Baseline = Run(1);
  ASSERT_FALSE(Baseline.empty());
  EXPECT_EQ(Run(2), Baseline);
  EXPECT_EQ(Run(8), Baseline);
}

TEST(GcThreadsInvariance, ProfiledBloatReportIdenticalAt128Threads) {
  auto Profile = [](unsigned Threads) {
    ChameleonConfig Config;
    Config.Runtime.GcThreads = Threads;
    Chameleon Tool(Config);
    apps::BloatConfig App;
    App.Phases = 4;
    App.NodesPerPhase = 400;
    App.SpikePhase = 2;
    return Tool.profile(
        [&](CollectionRuntime &RT) { apps::runBloat(RT, App); });
  };

  RunResult Baseline = Profile(1);
  ASSERT_FALSE(Baseline.Report.empty());
  for (unsigned Threads : {2u, 8u}) {
    RunResult Result = Profile(Threads);
    EXPECT_EQ(Result.Report, Baseline.Report) << Threads << " threads";
    EXPECT_EQ(Result.GcCycles, Baseline.GcCycles);
    EXPECT_EQ(Result.PeakLiveBytes, Baseline.PeakLiveBytes);
    EXPECT_EQ(Result.TotalAllocatedBytes, Baseline.TotalAllocatedBytes);
    ASSERT_EQ(Result.Cycles.size(), Baseline.Cycles.size());
    for (size_t I = 0; I < Result.Cycles.size(); ++I) {
      EXPECT_EQ(Result.Cycles[I].LiveBytes, Baseline.Cycles[I].LiveBytes);
      EXPECT_EQ(Result.Cycles[I].FreedBytes, Baseline.Cycles[I].FreedBytes);
      EXPECT_EQ(Result.Cycles[I].CollectionUsedBytes,
                Baseline.Cycles[I].CollectionUsedBytes);
    }
    EXPECT_EQ(Result.Suggestions.size(), Baseline.Suggestions.size());
  }
}

} // namespace
