//===--- FormatTest.cpp - Formatting helper unit tests --------------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(FormatBytes, SmallValuesInBytes) {
  EXPECT_EQ(formatBytes(0), "0 B");
  EXPECT_EQ(formatBytes(1023), "1023 B");
}

TEST(FormatBytes, BinaryUnits) {
  EXPECT_EQ(formatBytes(1024), "1.00 KiB");
  EXPECT_EQ(formatBytes(1536), "1.50 KiB");
  EXPECT_EQ(formatBytes(1024ull * 1024), "1.00 MiB");
  EXPECT_EQ(formatBytes(3ull * 1024 * 1024 * 1024), "3.00 GiB");
}

TEST(FormatPercent, OneDecimal) {
  EXPECT_EQ(formatPercent(0.0), "0.0%");
  EXPECT_EQ(formatPercent(0.425), "42.5%");
  EXPECT_EQ(formatPercent(1.0), "100.0%");
}

TEST(FormatDouble, RespectsDecimals) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(3.14159, 0), "3");
  EXPECT_EQ(formatDouble(2.5, 1), "2.5");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable Table({"name", "value"});
  Table.addRow({"a", "1"});
  Table.addRow({"long-name", "22"});
  std::string Out = Table.render();
  EXPECT_EQ(Out, "name       value\n"
                 "----------------\n"
                 "a          1\n"
                 "long-name  22\n");
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable Table({"x"});
  EXPECT_EQ(Table.render(), "x\n-\n");
}

} // namespace
