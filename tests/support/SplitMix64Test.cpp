//===--- SplitMix64Test.cpp - Deterministic RNG unit tests ----------------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace chameleon;

namespace {

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values for seed 1234567 (Vigna's splitmix64 test vector).
  SplitMix64 Rng(1234567);
  EXPECT_EQ(Rng.next(), 6457827717110365317ULL);
  EXPECT_EQ(Rng.next(), 3203168211198807973ULL);
  EXPECT_EQ(Rng.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, SameSeedSameSequence) {
  SplitMix64 A(99), B(99);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(SplitMix64, NextBelowStaysInRange) {
  SplitMix64 Rng(5);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(SplitMix64, NextInRangeIsInclusive) {
  SplitMix64 Rng(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t X = Rng.nextInRange(3, 5);
    EXPECT_GE(X, 3u);
    EXPECT_LE(X, 5u);
    SawLo |= X == 3;
    SawHi |= X == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 Rng(11);
  for (int I = 0; I < 1000; ++I) {
    double X = Rng.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(SplitMix64, NextBoolRoughlyMatchesProbability) {
  SplitMix64 Rng(13);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += Rng.nextBool(0.25) ? 1 : 0;
  EXPECT_GT(Hits, 2200);
  EXPECT_LT(Hits, 2800);
}

} // namespace
