//===--- StatisticsTest.cpp - RunningStat / TotalMax unit tests ----------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace chameleon;

namespace {

TEST(RunningStat, EmptyIsAllZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 0.0);
  EXPECT_DOUBLE_EQ(S.max(), 0.0);
  EXPECT_DOUBLE_EQ(S.sum(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat S;
  S.add(7.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 7.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 7.0);
  EXPECT_DOUBLE_EQ(S.max(), 7.0);
  EXPECT_DOUBLE_EQ(S.sum(), 7.0);
}

TEST(RunningStat, IdenticalSamplesHaveExactlyZeroVariance) {
  // The stability gate compares @maxSize == 0; Welford must produce an
  // exact zero for constant inputs.
  RunningStat S;
  for (int I = 0; I < 100; ++I)
    S.add(3.0);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  SplitMix64 Rng(42);
  std::vector<double> Samples;
  RunningStat S;
  for (int I = 0; I < 1000; ++I) {
    double X = static_cast<double>(Rng.nextBelow(1000)) / 7.0;
    Samples.push_back(X);
    S.add(X);
  }
  double Mean = 0;
  for (double X : Samples)
    Mean += X;
  Mean /= static_cast<double>(Samples.size());
  double Var = 0;
  for (double X : Samples)
    Var += (X - Mean) * (X - Mean);
  Var /= static_cast<double>(Samples.size());

  EXPECT_NEAR(S.mean(), Mean, 1e-9);
  EXPECT_NEAR(S.variance(), Var, 1e-6);
}

TEST(RunningStat, TracksMinAndMax) {
  RunningStat S;
  S.add(5.0);
  S.add(-3.0);
  S.add(10.0);
  EXPECT_DOUBLE_EQ(S.min(), -3.0);
  EXPECT_DOUBLE_EQ(S.max(), 10.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  SplitMix64 Rng(7);
  RunningStat A, B, Whole;
  for (int I = 0; I < 500; ++I) {
    double X = static_cast<double>(Rng.nextBelow(100));
    (I < 200 ? A : B).add(X);
    Whole.add(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Whole.count());
  EXPECT_NEAR(A.mean(), Whole.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), Whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(A.min(), Whole.min());
  EXPECT_DOUBLE_EQ(A.max(), Whole.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat A, Empty;
  A.add(1.0);
  A.add(2.0);
  RunningStat Copy = A;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), Copy.mean());

  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 1.5);
}

TEST(TotalMax, ObservesTotalAndMax) {
  TotalMax T;
  T.observe(10);
  T.observe(30);
  T.observe(20);
  EXPECT_EQ(T.total(), 60u);
  EXPECT_EQ(T.max(), 30u);
  EXPECT_EQ(T.cycles(), 3u);
}

TEST(TotalMax, EmptyIsZero) {
  TotalMax T;
  EXPECT_EQ(T.total(), 0u);
  EXPECT_EQ(T.max(), 0u);
  EXPECT_EQ(T.cycles(), 0u);
}

} // namespace
