//===--- RuleDiagJson.h - JSON rendering for rule diagnostics --*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--json` output format shared by chameleon-rulelint and
/// chameleon-rulefmt: one JSON array with an object per diagnostic, in the
/// same key layout as chameleon-checker's `--json` (file, line, col,
/// severity, id, message) so downstream tooling can consume all three
/// tools with one parser. String escaping comes from src/obs/Json.
///
//===----------------------------------------------------------------------===//

#ifndef CHAMELEON_TOOLS_RULEDIAGJSON_H
#define CHAMELEON_TOOLS_RULEDIAGJSON_H

#include "obs/Json.h"
#include "rules/Diagnostics.h"

#include <string>
#include <vector>

namespace chameleon::tools {

/// One (file, diagnostics) batch; a run over several inputs concatenates
/// batches into a single array.
struct RuleDiagBatch {
  std::string File;
  std::vector<rules::Diagnostic> Diags;
};

inline const char *ruleSevName(rules::Severity S) {
  switch (S) {
  case rules::Severity::Warning:
    return "warning";
  case rules::Severity::Note:
    return "note";
  case rules::Severity::Error:
    break;
  }
  return "error";
}

/// Renders every batch as one flat JSON array (the shape emitted by
/// `chameleon-rulelint --json a.rules b.rules`).
inline std::string ruleDiagsToJson(const std::vector<RuleDiagBatch> &Batches) {
  std::string Out = "[";
  bool First = true;
  for (const RuleDiagBatch &B : Batches) {
    for (const rules::Diagnostic &D : B.Diags) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n  {\"file\": \"" + obs::json::escape(B.File) +
             "\", \"line\": " + std::to_string(D.Line) +
             ", \"col\": " + std::to_string(D.Col) + ", \"severity\": \"" +
             ruleSevName(D.Sev) + "\", \"id\": \"" + obs::json::escape(D.ID) +
             "\", \"message\": \"" + obs::json::escape(D.Message) + "\"}";
    }
  }
  Out += First ? "]\n" : "\n]\n";
  return Out;
}

} // namespace chameleon::tools

#endif // CHAMELEON_TOOLS_RULEDIAGJSON_H
