//===--- chameleon-agentd.cpp - Fleet profiling agent daemon ---*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One fleet agent process (DESIGN.md §15): replays a workload-zoo trace
/// and, at every epoch barrier, captures the per-context profile summary
/// plus the `cham.*` telemetry bundle and commits it through a FleetAgent
/// — durable spill WAL, bounded send queue, backoff reconnect — to a
/// chameleon-aggd listening on an AF_UNIX socket.
///
///   chameleon-aggd   --listen /tmp/fleet.sock --snapshot /tmp/fleet.snap &
///   chameleon-agentd --connect /tmp/fleet.sock --agent-id a0 \
///                    --wal /tmp/a0.wal --gen burst --scale ci
///
/// Exit 0 = the replay completed and every committed epoch is durable at
/// the aggregator. Exit 1 = drain budget exhausted first (the WAL still
/// holds the tail; a rerun with the same --wal replays it).
///
//===----------------------------------------------------------------------===//

#include "apps/TraceWorkload.h"
#include "apps/WorkloadGen.h"
#include "fleet/Agent.h"
#include "fleet/FleetProfile.h"
#include "fleet/SocketTransport.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace chameleon;
using namespace chameleon::apps;
using namespace chameleon::fleet;

namespace {

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s --connect SOCK [options]\n"
      "  --connect PATH     aggregator AF_UNIX socket (required)\n"
      "  --agent-id NAME    stream identity (default: agent)\n"
      "  --wal PATH         durable spill WAL (default: in-memory only)\n"
      "  --sync-wal         fsync every WAL append\n"
      "  --gen NAME         workload generator (default: burst)\n"
      "  --scale NAME       size preset: ci, default, large, million\n"
      "  --seed N           workload seed / stream run id\n"
      "  --threads N        mutator threads (default 1)\n"
      "  --drain-ticks N    post-replay drain budget (default 30000)\n"
      "  --quiet            only report failures\n"
      "  -h, --help         show this help\n",
      Argv0);
}

uint64_t parseU64(const char *Arg, const char *Flag) {
  char *End = nullptr;
  uint64_t V = std::strtoull(Arg, &End, 0);
  if (End == Arg || *End != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag, Arg);
    std::exit(2);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  std::string ConnectPath, WalPath, GenName = "burst";
  std::string AgentId = "agent";
  uint64_t Seed = 0x50AC;
  uint32_t Threads = 1;
  uint64_t DrainTicks = 30000;
  bool SyncWal = false;
  bool Quiet = false;
  WorkloadScale Scale = WorkloadScale::Ci;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(Arg, "--connect") == 0) {
      ConnectPath = needValue("--connect");
    } else if (std::strcmp(Arg, "--agent-id") == 0) {
      AgentId = needValue("--agent-id");
    } else if (std::strcmp(Arg, "--wal") == 0) {
      WalPath = needValue("--wal");
    } else if (std::strcmp(Arg, "--sync-wal") == 0) {
      SyncWal = true;
    } else if (std::strcmp(Arg, "--gen") == 0) {
      GenName = needValue("--gen");
    } else if (std::strcmp(Arg, "--scale") == 0) {
      const char *Name = needValue("--scale");
      if (!parseWorkloadScale(Name, Scale)) {
        std::fprintf(stderr, "error: unknown scale '%s'\n", Name);
        return 2;
      }
    } else if (std::strcmp(Arg, "--seed") == 0) {
      Seed = parseU64(needValue("--seed"), "--seed");
    } else if (std::strcmp(Arg, "--threads") == 0) {
      Threads = static_cast<uint32_t>(parseU64(needValue("--threads"),
                                               "--threads"));
    } else if (std::strcmp(Arg, "--drain-ticks") == 0) {
      DrainTicks = parseU64(needValue("--drain-ticks"), "--drain-ticks");
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "-h") == 0 || std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }
  if (ConnectPath.empty()) {
    printUsage(argv[0]);
    return 2;
  }
  const WorkloadGenerator *Gen = findWorkloadGenerator(GenName);
  if (!Gen) {
    std::fprintf(stderr, "error: unknown generator '%s'\n", GenName.c_str());
    return 2;
  }

  WorkloadGenConfig GC;
  GC.Seed = Seed;
  applyWorkloadScale(Scale, GC);
  Trace T = Gen->Generate(GC);

  SocketDialer Dialer(ConnectPath);
  FleetAgentConfig AC;
  AC.AgentId = AgentId;
  AC.RunSeed = Seed;
  AC.WalPath = WalPath;
  AC.SyncWal = SyncWal;
  FleetAgent Agent(AC, Dialer);
  std::string Err;
  if (!Agent.recover(Err)) {
    std::fprintf(stderr, "error: WAL recovery: %s\n", Err.c_str());
    return 1;
  }

  uint64_t Tick = 0;
  ReplayConfig RC;
  RC.MutatorThreads = Threads;
  RC.OnEpochBarrier = [&](uint32_t Epoch, CollectionRuntime &RT) {
    (void)Epoch; // the agent numbers its own commit sequence
    Agent.commitEpoch(
        captureProcessProfile(RT.profiler(), /*Epoch=*/0, "cham."));
    Agent.pump(Tick++);
  };
  CollectionRuntime RT(traceReplayRuntimeConfig(RC));
  ReplayResult R = replayTrace(RT, T, RC);
  if (!R.Ok) {
    std::fprintf(stderr, "error: replay: %s\n", R.Error.c_str());
    return 1;
  }

  // Drain: keep pumping (reconnecting as needed) until everything
  // committed is durable at the aggregator or the budget runs out.
  uint64_t Spent = 0;
  while (!Agent.drained() && Spent < DrainTicks) {
    Agent.pump(Tick++);
    ++Spent;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  FleetAgentStats S = Agent.stats();
  if (!Quiet)
    std::fprintf(stderr,
                 "agentd[%s]: epochs=%llu durable=%llu connects=%llu "
                 "replayed=%llu shed=%llu drained=%s\n",
                 AgentId.c_str(),
                 static_cast<unsigned long long>(S.CommittedEpochs),
                 static_cast<unsigned long long>(S.DurableEpoch),
                 static_cast<unsigned long long>(S.Connects),
                 static_cast<unsigned long long>(S.ReplayedRecords),
                 static_cast<unsigned long long>(S.ShedRecords),
                 Agent.drained() ? "yes" : "no");
  return Agent.drained() ? 0 : 1;
}
