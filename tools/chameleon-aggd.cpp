//===--- chameleon-aggd.cpp - Fleet profile aggregator daemon --*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregator daemon (DESIGN.md §15): listens on an AF_UNIX socket for
/// chameleon-agentd streams, folds their epoch updates into one fleet
/// state, persists crash-safe snapshots, and on exit renders the merged
/// profile and the fleet-wide rule evaluation.
///
///   chameleon-aggd --listen /tmp/fleet.sock --snapshot /tmp/fleet.snap \
///                  --persist-every 4 --idle-exit 500 --report --evaluate
///
/// Restart semantics: on startup the previous snapshot is loaded (a
/// corrupt one is quarantined aside, never fatal), so reconnecting agents
/// are told their durable epoch and replay only the WAL tail past it.
///
//===----------------------------------------------------------------------===//

#include "fleet/Aggregator.h"
#include "fleet/SocketTransport.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace chameleon;
using namespace chameleon::fleet;

namespace {

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s --listen SOCK [options]\n"
      "  --listen PATH      AF_UNIX socket to listen on (required)\n"
      "  --snapshot PATH    crash-safe snapshot file\n"
      "  --persist-every N  auto-persist after N applied updates\n"
      "  --idle-exit N      exit after N empty 1ms polls once every agent\n"
      "                     has disconnected (0 = run until killed)\n"
      "  --max-ticks N      hard cap on poll rounds (0 = none)\n"
      "  --report           print the merged fleet profile on exit\n"
      "  --evaluate         print the fleet-wide rule report on exit\n"
      "  --quiet            only report failures\n"
      "  -h, --help         show this help\n",
      Argv0);
}

uint64_t parseU64(const char *Arg, const char *Flag) {
  char *End = nullptr;
  uint64_t V = std::strtoull(Arg, &End, 0);
  if (End == Arg || *End != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag, Arg);
    std::exit(2);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  std::string ListenPath, SnapshotPath;
  uint64_t PersistEvery = 0;
  uint64_t IdleExit = 0;
  uint64_t MaxTicks = 0;
  bool Report = false;
  bool Evaluate = false;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(Arg, "--listen") == 0) {
      ListenPath = needValue("--listen");
    } else if (std::strcmp(Arg, "--snapshot") == 0) {
      SnapshotPath = needValue("--snapshot");
    } else if (std::strcmp(Arg, "--persist-every") == 0) {
      PersistEvery = parseU64(needValue("--persist-every"), "--persist-every");
    } else if (std::strcmp(Arg, "--idle-exit") == 0) {
      IdleExit = parseU64(needValue("--idle-exit"), "--idle-exit");
    } else if (std::strcmp(Arg, "--max-ticks") == 0) {
      MaxTicks = parseU64(needValue("--max-ticks"), "--max-ticks");
    } else if (std::strcmp(Arg, "--report") == 0) {
      Report = true;
    } else if (std::strcmp(Arg, "--evaluate") == 0) {
      Evaluate = true;
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "-h") == 0 || std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }
  if (ListenPath.empty()) {
    printUsage(argv[0]);
    return 2;
  }

  FleetAggregatorConfig Cfg;
  Cfg.SnapshotPath = SnapshotPath;
  Cfg.PersistEveryUpdates = static_cast<uint32_t>(PersistEvery);
  FleetAggregator Agg(Cfg);

  SnapshotLoadResult Load = Agg.loadInitial();
  if (!Load.ok()) {
    std::fprintf(stderr, "aggd: snapshot %s: %s%s%s\n",
                 snapshotErrorName(Load.Error), Load.Message.c_str(),
                 Load.QuarantinePath.empty() ? "" : "; quarantined to ",
                 Load.QuarantinePath.c_str());
    // Quarantined or unreadable: start empty — by design, not fatal.
  }

  SocketListener Listener;
  std::string Err;
  if (!Listener.listen(ListenPath, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!Quiet)
    std::fprintf(stderr, "aggd: listening on %s\n", ListenPath.c_str());

  bool SeenAny = false;
  uint64_t IdleRounds = 0;
  for (uint64_t Tick = 0; MaxTicks == 0 || Tick < MaxTicks; ++Tick) {
    for (auto &C : Listener.acceptAll())
      Agg.attach(std::move(C));
    Agg.pump();
    size_t Live = Agg.sessionCount();
    if (Live > 0) {
      SeenAny = true;
      IdleRounds = 0;
    } else if (IdleExit > 0 && SeenAny && ++IdleRounds >= IdleExit) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Listener.close();

  if (!SnapshotPath.empty() && !Agg.persist(Err))
    std::fprintf(stderr, "aggd: final persist failed: %s\n", Err.c_str());

  if (Report)
    std::fputs(renderProfileReport(Agg.mergedProfile()).c_str(), stdout);
  if (Evaluate) {
    size_t N = 0;
    std::string Rules = Agg.evaluateFleetRules(&N);
    std::printf("fleet rules: %zu suggestion%s\n", N, N == 1 ? "" : "s");
    std::fputs(Rules.c_str(), stdout);
  }

  FleetAggregatorStats S = Agg.stats();
  if (!Quiet)
    std::fprintf(stderr,
                 "aggd: sessions=%llu updates=%llu dups=%llu acks=%llu "
                 "persists=%llu persist_failures=%llu\n",
                 static_cast<unsigned long long>(S.SessionsAccepted),
                 static_cast<unsigned long long>(S.UpdatesApplied),
                 static_cast<unsigned long long>(S.DupEpochs),
                 static_cast<unsigned long long>(S.AcksSent),
                 static_cast<unsigned long long>(S.Persists),
                 static_cast<unsigned long long>(S.PersistFailures));
  return 0;
}
