//===--- chameleon-checker.cpp - GC-safety & lock-discipline checker ------===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-level static analyzer for the Chameleon tree itself: GC-safety
/// (CHAM_NO_SAFEPOINT reachability, raw heap references live across
/// may-safepoint calls), lock discipline (CHAM_LOCK_RANK ordering,
/// allocation under a SpinLock), and project lints (metric naming,
/// duplicate metric registrations, duplicate CHAM_FAULT tags). See
/// DESIGN.md §13 for the diagnostic catalogue and the frontend's limits.
///
///   chameleon-checker src/                       # analyze a tree
///   chameleon-checker --Werror --relative-to .   # the CI invocation
///       --baseline tools/checker_baseline.txt src tools bench
///   chameleon-checker --json src/                # machine-readable output
///   chameleon-checker --write-baseline FILE ...  # accept current findings
///
/// Exit status: 0 clean — warnings print but do not fail unless --Werror
/// promotes them (baselined findings never count); 1 errors; 2 usage
/// errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace chameleon::analysis;

namespace {

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s [options] <file-or-dir>...\n"
      "  --Werror              treat warnings as errors\n"
      "  --json                emit findings as a JSON array on stdout\n"
      "  --baseline FILE       drop findings recorded in FILE\n"
      "  --write-baseline FILE write current findings to FILE and exit 0\n"
      "  --relative-to DIR     report paths relative to DIR (stable keys)\n"
      "  --list-baselined      also print the findings the baseline waived\n"
      "  --stats               print files/functions/tokens analyzed\n"
      "  -h, --help            show this help\n",
      Argv0);
}

} // namespace

int main(int argc, char **argv) {
  bool WarningsAreErrors = false;
  bool Json = false;
  bool ListBaselined = false;
  bool Stats = false;
  std::string BaselinePath;
  std::string WriteBaselinePath;
  AnalyzerOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--Werror") {
      WarningsAreErrors = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--baseline") {
      BaselinePath = needValue("--baseline");
    } else if (Arg == "--write-baseline") {
      WriteBaselinePath = needValue("--write-baseline");
    } else if (Arg == "--relative-to") {
      Opts.RelativeTo = needValue("--relative-to");
    } else if (Arg == "--list-baselined") {
      ListBaselined = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], Arg.c_str());
      return 2;
    } else {
      Opts.Inputs.push_back(Arg);
    }
  }

  if (Opts.Inputs.empty()) {
    std::fprintf(stderr, "%s: no inputs (try a directory, e.g. src/)\n",
                 argv[0]);
    return 2;
  }

  if (!BaselinePath.empty()) {
    std::ifstream In(BaselinePath);
    if (!In) {
      std::fprintf(stderr, "%s: cannot read baseline '%s'\n", argv[0],
                   BaselinePath.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Opts.Base = parseBaseline(Buf.str());
  }

  AnalysisResult R = analyze(Opts);

  if (WarningsAreErrors)
    for (CheckDiag &D : R.Diags)
      if (D.Sev == CheckSeverity::Warning)
        D.Sev = CheckSeverity::Error;

  if (!WriteBaselinePath.empty()) {
    std::vector<CheckDiag> All = R.Diags;
    All.insert(All.end(), R.Baselined.begin(), R.Baselined.end());
    std::ofstream Out(WriteBaselinePath, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "%s: cannot write baseline '%s'\n", argv[0],
                   WriteBaselinePath.c_str());
      return 2;
    }
    Out << renderBaseline(All);
    std::fprintf(stderr, "%s: wrote %zu finding(s) to %s\n", argv[0],
                 All.size(), WriteBaselinePath.c_str());
    return 0;
  }

  if (Json) {
    std::fputs(checkDiagsToJson(R.Diags).c_str(), stdout);
  } else {
    std::fputs(formatCheckDiags(R.Diags).c_str(), stderr);
    if (ListBaselined && !R.Baselined.empty()) {
      std::fprintf(stderr, "-- baselined (%zu) --\n", R.Baselined.size());
      std::fputs(formatCheckDiags(R.Baselined).c_str(), stderr);
    }
    for (const std::string &K : R.StaleBaselineKeys)
      std::fprintf(stderr, "note: stale baseline entry (no longer matches "
                           "anything): %s\n",
                   K.c_str());
  }
  if (Stats)
    std::fprintf(stderr,
                 "%zu file(s) analyzed, %zu finding(s), %zu baselined\n",
                 R.FilesAnalyzed, R.Diags.size(), R.Baselined.size());

  return hasCheckErrors(R.Diags) ? 1 : 0;
}
