//===--- chameleon-rulefmt.cpp - Rule-file validator/formatter -*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line validator and canonical formatter for rule files written
/// in the paper's Fig. 4 selection language. Both checking and formatting
/// run the full front end (parse + sema), so semantic problems — unbound
/// parameters, unsatisfiable conditions, shadowed rules — are reported
/// while formatting, not just syntax errors.
///
///   chameleon-rulefmt file.rules          # format to stdout
///   chameleon-rulefmt --check file.rules  # diagnostics only
///   chameleon-rulefmt --Werror file.rules # warnings fail the run
///   chameleon-rulefmt --builtin           # print the built-in rule set
///   chameleon-rulefmt --json file.rules   # diagnostics as JSON
///
/// All diagnostics for every input are printed before exiting. Exits
/// nonzero when any file has errors (or, under --Werror, warnings); the
/// formatted output is only produced for files that parsed without
/// errors. --json implies --check (stdout carries the diagnostic array,
/// in the same key layout as chameleon-checker --json).
///
//===----------------------------------------------------------------------===//

#include "RuleDiagJson.h"
#include "rules/Printer.h"
#include "rules/RuleEngine.h"
#include "rules/Sema.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace chameleon::rules;

static int runOnSource(const std::string &Name, const std::string &Source,
                       bool CheckOnly, bool WarningsAreErrors, bool Json,
                       std::vector<chameleon::tools::RuleDiagBatch> &Batches) {
  LintResult Result = lintRuleSource(Source, SemaOptions());
  if (Json)
    Batches.push_back({Name, Result.Diags});
  else
    for (const Diagnostic &D : Result.Diags)
      std::fprintf(stderr, "%s:%s\n", Name.c_str(), D.format().c_str());
  if (Result.hasErrors())
    return 1;
  if (!CheckOnly)
    std::fputs(printRules(Result.Rules).c_str(), stdout);
  if (WarningsAreErrors && Result.hasWarnings())
    return 1;
  return 0;
}

int main(int argc, char **argv) {
  bool CheckOnly = false;
  bool WarningsAreErrors = false;
  bool Json = false;
  std::vector<std::string> Files;
  bool Builtin = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--check") {
      CheckOnly = true;
    } else if (Arg == "--Werror") {
      WarningsAreErrors = true;
    } else if (Arg == "--json") {
      Json = true;
      CheckOnly = true; // stdout carries the diagnostic array
    } else if (Arg == "--builtin") {
      Builtin = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: %s [--check] [--Werror] [--json] [--builtin] [file...]\n",
          argv[0]);
      return 0;
    } else {
      Files.push_back(Arg);
    }
  }

  int Status = 0;
  std::vector<chameleon::tools::RuleDiagBatch> Batches;
  if (Builtin)
    Status |= runOnSource("<builtin>", RuleEngine::builtinRulesText(),
                          CheckOnly, WarningsAreErrors, Json, Batches);
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open file\n", File.c_str());
      Status = 1;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Status |= runOnSource(File, Buf.str(), CheckOnly, WarningsAreErrors, Json,
                          Batches);
  }
  if (Json)
    std::fputs(chameleon::tools::ruleDiagsToJson(Batches).c_str(), stdout);
  if (!Builtin && Files.empty()) {
    std::fprintf(stderr, "%s: no input (try --builtin or a file)\n",
                 argv[0]);
    return 1;
  }
  return Status;
}
