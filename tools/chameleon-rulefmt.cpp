//===--- chameleon-rulefmt.cpp - Rule-file validator/formatter -*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line validator and canonical formatter for rule files written
/// in the paper's Fig. 4 selection language.
///
///   chameleon-rulefmt file.rules          # format to stdout
///   chameleon-rulefmt --check file.rules  # diagnostics only
///   chameleon-rulefmt --builtin           # print the built-in rule set
///
/// Exits nonzero when any file has diagnostics.
///
//===----------------------------------------------------------------------===//

#include "rules/Parser.h"
#include "rules/Printer.h"
#include "rules/RuleEngine.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace chameleon::rules;

static int runOnSource(const std::string &Name, const std::string &Source,
                       bool CheckOnly) {
  ParseResult Result = parseRules(Source);
  for (const Diagnostic &D : Result.Diags)
    std::fprintf(stderr, "%s:%s\n", Name.c_str(), D.format().c_str());
  if (!Result.succeeded())
    return 1;
  if (!CheckOnly)
    std::fputs(printRules(Result.Rules).c_str(), stdout);
  return 0;
}

int main(int argc, char **argv) {
  bool CheckOnly = false;
  std::vector<std::string> Files;
  bool Builtin = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--check") {
      CheckOnly = true;
    } else if (Arg == "--builtin") {
      Builtin = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: %s [--check] [--builtin] [file...]\n", argv[0]);
      return 0;
    } else {
      Files.push_back(Arg);
    }
  }

  int Status = 0;
  if (Builtin)
    Status |= runOnSource("<builtin>", RuleEngine::builtinRulesText(),
                          CheckOnly);
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open file\n", File.c_str());
      Status = 1;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Status |= runOnSource(File, Buf.str(), CheckOnly);
  }
  if (!Builtin && Files.empty()) {
    std::fprintf(stderr, "%s: no input (try --builtin or a file)\n",
                 argv[0]);
    return 1;
  }
  return Status;
}
