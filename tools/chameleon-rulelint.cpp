//===--- chameleon-rulelint.cpp - Rule-file semantic linter ----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line semantic linter for rule files written in the paper's
/// Fig. 4 selection language. On top of the parser's syntax checks it runs
/// the Sema pass: unbound/unused $-parameters, replacement-target
/// validation, condition satisfiability (interval analysis over the
/// Table-1 metric domains), rule shadowing, and metric-scale confusions.
///
///   chameleon-rulelint file.rules              # lint, warnings allowed
///   chameleon-rulelint --Werror file.rules     # warnings fail the lint
///   chameleon-rulelint --param X=32 file.rules # bind $X for the analysis
///   chameleon-rulelint --builtin               # lint the built-in rules
///   chameleon-rulelint --json file.rules       # diagnostics as JSON
///
/// Diagnostics print as "file:line:col: [error|warning:] message [id]"
/// with did-you-mean fix-it hints for misspelled metric, operation,
/// implementation and source-type names; with --json they print to stdout
/// as one JSON array in the same key layout as chameleon-checker --json.
/// Exits nonzero when any error (or, under --Werror, any warning) was
/// reported.
///
//===----------------------------------------------------------------------===//

#include "RuleDiagJson.h"
#include "rules/RuleEngine.h"
#include "rules/Sema.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace chameleon::rules;

namespace {

void printUsage(const char *Argv0) {
  std::printf("usage: %s [options] [file...]\n"
              "  --builtin       lint the built-in Table-2 rule set\n"
              "  --Werror        treat warnings as errors\n"
              "  --json          print diagnostics as a JSON array on "
              "stdout\n"
              "  --param NAME=V  bind the $-parameter NAME to V "
              "(repeatable)\n"
              "  -h, --help      show this help\n",
              Argv0);
}

/// Lints one source buffer; returns 1 when it should fail the run. With
/// \p Json set, diagnostics accumulate into \p Batches (rendered once at
/// the end of the run) instead of printing to stderr.
int lintSource(const std::string &Name, const std::string &Source,
               const SemaOptions &Opts, bool WarningsAreErrors, bool Json,
               std::vector<chameleon::tools::RuleDiagBatch> &Batches) {
  LintResult Result = lintRuleSource(Source, Opts);
  if (Json)
    Batches.push_back({Name, Result.Diags});
  else
    for (const Diagnostic &D : Result.Diags)
      std::fprintf(stderr, "%s:%s\n", Name.c_str(), D.format().c_str());
  if (Result.hasErrors())
    return 1;
  if (WarningsAreErrors && Result.hasWarnings())
    return 1;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Builtin = false;
  bool WarningsAreErrors = false;
  bool Json = false;
  RuleParams Params;
  bool HaveParams = false;
  std::vector<std::string> Files;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--builtin") {
      Builtin = true;
    } else if (Arg == "--Werror") {
      WarningsAreErrors = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--param") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s: --param requires NAME=VALUE\n", argv[0]);
        return 2;
      }
      std::string Binding = argv[++I];
      size_t Eq = Binding.find('=');
      if (Eq == std::string::npos || Eq == 0) {
        std::fprintf(stderr, "%s: malformed --param '%s' (want NAME=VALUE)\n",
                     argv[0], Binding.c_str());
        return 2;
      }
      char *End = nullptr;
      double Value = std::strtod(Binding.c_str() + Eq + 1, &End);
      if (End == Binding.c_str() + Eq + 1 || *End != '\0') {
        std::fprintf(stderr, "%s: non-numeric --param value in '%s'\n",
                     argv[0], Binding.c_str());
        return 2;
      }
      Params[Binding.substr(0, Eq)] = Value;
      HaveParams = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   Arg.c_str());
      return 2;
    } else {
      Files.push_back(Arg);
    }
  }

  if (!Builtin && Files.empty()) {
    std::fprintf(stderr, "%s: no input (try --builtin or a file)\n",
                 argv[0]);
    return 2;
  }

  SemaOptions Opts;
  if (HaveParams)
    Opts.Params = &Params;

  int Status = 0;
  std::vector<chameleon::tools::RuleDiagBatch> Batches;
  if (Builtin)
    Status |= lintSource("<builtin>", RuleEngine::builtinRulesText(), Opts,
                         WarningsAreErrors, Json, Batches);
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open file\n", File.c_str());
      Status = 1;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Status |= lintSource(File, Buf.str(), Opts, WarningsAreErrors, Json,
                         Batches);
  }
  if (Json)
    std::fputs(chameleon::tools::ruleDiagsToJson(Batches).c_str(), stdout);
  return Status;
}
