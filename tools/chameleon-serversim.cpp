//===--- chameleon-serversim.cpp - Server simulacrum driver ----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the multi-threaded server simulacrum, including
/// its chaos mode (randomized fault injection against the transactional
/// online-replacement machinery and the heap-pressure degradation path):
///
///   chameleon-serversim                       # plain run, print report
///   chameleon-serversim --chaos               # chaos run, default seed
///   chameleon-serversim --chaos --seed 0xBEEF # replay a chaos schedule
///   chameleon-serversim --threads 8 --epochs 5 --requests 480
///
/// A chaos run prints the fault/migration/degradation accounting followed
/// by the regular profiling report, and echoes the seed so any failure is
/// replayable.
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

void printUsage(const char *Argv0) {
  std::printf("usage: %s [options]\n"
              "  --chaos            run under a randomized fault plan\n"
              "  --seed N           chaos plan seed (decimal or 0x hex)\n"
              "  --soft-limit N     soft heap limit in bytes for chaos mode\n"
              "  --threads N        mutator threads (default 4)\n"
              "  --epochs N         epochs (default 3)\n"
              "  --requests N       requests per epoch (default 240)\n"
              "  --telemetry-out D  write trace.json/metrics.json/metrics.prom"
              " into directory D\n"
              "  --ticker           print a per-epoch telemetry line to"
              " stderr\n"
              "  --quiet            suppress the profiling report\n"
              "  -h, --help         show this help\n",
              Argv0);
}

uint64_t parseU64(const char *Arg, const char *Flag) {
  char *End = nullptr;
  uint64_t V = std::strtoull(Arg, &End, 0);
  if (End == Arg || *End != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag, Arg);
    std::exit(2);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  ServerSimConfig Config;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(Arg, "--chaos") == 0) {
      Config.Chaos = true;
    } else if (std::strcmp(Arg, "--seed") == 0) {
      Config.ChaosSeed = parseU64(needValue("--seed"), "--seed");
    } else if (std::strcmp(Arg, "--soft-limit") == 0) {
      Config.ChaosSoftHeapLimitBytes =
          parseU64(needValue("--soft-limit"), "--soft-limit");
    } else if (std::strcmp(Arg, "--threads") == 0) {
      Config.MutatorThreads = static_cast<uint32_t>(
          parseU64(needValue("--threads"), "--threads"));
    } else if (std::strcmp(Arg, "--epochs") == 0) {
      Config.Epochs =
          static_cast<uint32_t>(parseU64(needValue("--epochs"), "--epochs"));
    } else if (std::strcmp(Arg, "--requests") == 0) {
      Config.RequestsPerEpoch = static_cast<uint32_t>(
          parseU64(needValue("--requests"), "--requests"));
    } else if (std::strcmp(Arg, "--telemetry-out") == 0) {
      Config.TelemetryOutDir = needValue("--telemetry-out");
    } else if (std::strcmp(Arg, "--ticker") == 0) {
      Config.TelemetryTicker = true;
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "-h") == 0
               || std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }

  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimResult Result = runServerSim(RT, Config);

  if (Config.Chaos)
    std::fputs(Result.ChaosReport.c_str(), stdout);
  if (!Quiet)
    std::fputs(Result.Report.c_str(), stdout);
  std::printf("done: requests=%llu%s\n",
              static_cast<unsigned long long>(Result.TotalRequests),
              Config.Chaos ? " (chaos run survived)" : "");
  return 0;
}
