//===--- chameleon-serversim.cpp - Server simulacrum driver ----*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the multi-threaded server simulacrum, including
/// its chaos mode (randomized fault injection against the transactional
/// online-replacement machinery and the heap-pressure degradation path):
///
///   chameleon-serversim                       # plain run, print report
///   chameleon-serversim --chaos               # chaos run, default seed
///   chameleon-serversim --chaos --seed 0xBEEF # replay a chaos schedule
///   chameleon-serversim --threads 8 --epochs 5 --requests 480
///   chameleon-serversim --record run.trace    # record the run as a trace
///   chameleon-serversim --replay run.trace    # replay it (any --threads)
///   chameleon-serversim --replay run.trace --adapt   # under the adaptor
///
/// A chaos run prints the fault/migration/degradation accounting followed
/// by the regular profiling report, and echoes the seed so any failure is
/// replayable. A replay of a recorded trace prints a report byte-identical
/// to the recording run's at any thread count (DESIGN.md §14).
///
//===----------------------------------------------------------------------===//

#include "apps/ServerSim.h"
#include "apps/TraceWorkload.h"
#include "obs/FlightRecorder.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace chameleon;
using namespace chameleon::apps;

namespace {

void printUsage(const char *Argv0) {
  std::printf("usage: %s [options]\n"
              "  --chaos            run under a randomized fault plan\n"
              "  --seed N           chaos plan seed (decimal or 0x hex)\n"
              "  --soft-limit N     soft heap limit in bytes for chaos mode\n"
              "  --threads N        mutator threads (default 4)\n"
              "  --epochs N         epochs (default 3)\n"
              "  --requests N       requests per epoch (default 240)\n"
              "  --telemetry-out D  write trace.json/metrics.json/metrics.prom"
              " into directory D\n"
              "  --ledger           arm the decision ledger; barrier-time\n"
              "                     rule evaluation + deterministic"
              " migrations\n"
              "  --flight-recorder F  install the crash dump handler writing"
              " to F\n"
              "                     (CHAM_FLIGHT_RECORDER env works too)\n"
              "  --ticker           print a per-epoch telemetry line to"
              " stderr\n"
              "  --record FILE      record the run's op stream to FILE\n"
              "  --replay FILE      replay a recorded trace instead of"
              " running the sim\n"
              "  --adapt            replay under the online adaptor"
              " (builtin rules)\n"
              "  --quiet            suppress the profiling report\n"
              "  -h, --help         show this help\n",
              Argv0);
}

uint64_t parseU64(const char *Arg, const char *Flag) {
  char *End = nullptr;
  uint64_t V = std::strtoull(Arg, &End, 0);
  if (End == Arg || *End != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag, Arg);
    std::exit(2);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  ServerSimConfig Config;
  bool Quiet = false;
  bool Adapt = false;
  std::string RecordPath;
  std::string ReplayPath;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(Arg, "--chaos") == 0) {
      Config.Chaos = true;
    } else if (std::strcmp(Arg, "--seed") == 0) {
      Config.ChaosSeed = parseU64(needValue("--seed"), "--seed");
    } else if (std::strcmp(Arg, "--soft-limit") == 0) {
      Config.ChaosSoftHeapLimitBytes =
          parseU64(needValue("--soft-limit"), "--soft-limit");
    } else if (std::strcmp(Arg, "--threads") == 0) {
      Config.MutatorThreads = static_cast<uint32_t>(
          parseU64(needValue("--threads"), "--threads"));
    } else if (std::strcmp(Arg, "--epochs") == 0) {
      Config.Epochs =
          static_cast<uint32_t>(parseU64(needValue("--epochs"), "--epochs"));
    } else if (std::strcmp(Arg, "--requests") == 0) {
      Config.RequestsPerEpoch = static_cast<uint32_t>(
          parseU64(needValue("--requests"), "--requests"));
    } else if (std::strcmp(Arg, "--telemetry-out") == 0) {
      Config.TelemetryOutDir = needValue("--telemetry-out");
    } else if (std::strcmp(Arg, "--ledger") == 0) {
      Config.DecisionLedger = true;
    } else if (std::strcmp(Arg, "--flight-recorder") == 0) {
      Config.FlightRecorderPath = needValue("--flight-recorder");
    } else if (std::strcmp(Arg, "--ticker") == 0) {
      Config.TelemetryTicker = true;
    } else if (std::strcmp(Arg, "--record") == 0) {
      RecordPath = needValue("--record");
    } else if (std::strcmp(Arg, "--replay") == 0) {
      ReplayPath = needValue("--replay");
    } else if (std::strcmp(Arg, "--adapt") == 0) {
      Adapt = true;
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "-h") == 0
               || std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }

  // Honor $CHAM_FLIGHT_RECORDER (the CI chaos/soak jobs set it) when no
  // explicit --flight-recorder path was given.
  if (Config.FlightRecorderPath.empty())
    obs::FlightRecorder::instance().installFromEnv("cham.");

  if (!ReplayPath.empty()) {
    Trace T;
    std::string Error;
    if (!readTraceFile(ReplayPath, T, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", ReplayPath.c_str(),
                   Error.c_str());
      return 1;
    }
    ReplayConfig RC;
    RC.MutatorThreads = Config.MutatorThreads;
    RC.OnlineAdapt = Adapt;
    RC.Chaos = Config.Chaos;
    RC.ChaosSeed = Config.ChaosSeed;
    RC.ChaosSoftHeapLimitBytes = Config.ChaosSoftHeapLimitBytes;
    RC.TelemetryOutDir = Config.TelemetryOutDir;
    CollectionRuntime RT(traceReplayRuntimeConfig(RC));
    ReplayResult R = replayTrace(RT, T, RC);
    if (!R.Ok) {
      std::fprintf(stderr, "error: invalid trace: %s\n", R.Error.c_str());
      return 1;
    }
    if (!R.AdaptReport.empty())
      std::fputs(R.AdaptReport.c_str(), stdout);
    if (!Quiet)
      std::fputs(R.Report.c_str(), stdout);
    std::printf("done: replayed tasks=%llu ops=%llu (%s seed=0x%llx)\n",
                static_cast<unsigned long long>(R.Tasks),
                static_cast<unsigned long long>(R.Ops),
                T.Header.Generator.c_str(),
                static_cast<unsigned long long>(T.Header.Seed));
    return 0;
  }

  TraceCapture Capture;
  if (!RecordPath.empty())
    Config.RecordTo = &Capture;
  CollectionRuntime RT(serverSimRuntimeConfig());
  ServerSimResult Result = runServerSim(RT, Config);

  if (!RecordPath.empty()) {
    Trace T = Capture.finish();
    std::string Error;
    if (!writeTraceFile(RecordPath, T, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", RecordPath.c_str(),
                   Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "[trace] recorded %llu tasks to %s\n",
                 static_cast<unsigned long long>(T.taskCount()),
                 RecordPath.c_str());
  }
  if (Config.Chaos)
    std::fputs(Result.ChaosReport.c_str(), stdout);
  if (!Quiet)
    std::fputs(Result.Report.c_str(), stdout);
  std::printf("done: requests=%llu%s\n",
              static_cast<unsigned long long>(Result.TotalRequests),
              Config.Chaos ? " (chaos run survived)" : "");
  return 0;
}
