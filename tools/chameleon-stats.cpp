//===--- chameleon-stats.cpp - Telemetry bundle inspector ------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the telemetry bundle a `chameleon-serversim --telemetry-out=DIR`
/// run wrote (DESIGN.md §11), without re-running anything:
///
///   chameleon-stats out/                 # human table of metrics.json
///   chameleon-stats --format prom out/   # Prometheus text (byte-identical
///                                        #   to the bundle's metrics.prom)
///   chameleon-stats --format json out/   # re-emit metrics.json
///   chameleon-stats --trace out/         # append a trace.json summary
///
/// The prom/json renderings go through the same renderers the instrumented
/// process used, over snapshots re-read from metrics.json — so what this
/// tool prints is exactly what the process exported.
///
/// Fleet snapshots (DESIGN.md §15) are inspected the same way:
///
///   chameleon-stats --fleet fleet.snap   # merged fleet profile + metrics
///   chameleon-stats --diff a.snap b.snap # what changed between snapshots
///
/// Inspection is read-only: a corrupt snapshot is reported with its typed
/// error but never quarantined from here.
///
//===----------------------------------------------------------------------===//

#include "fleet/Aggregator.h"
#include "fleet/Snapshot.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "obs/Telemetry.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

using namespace chameleon;

namespace {

void printUsage(const char *Argv0) {
  std::printf("usage: %s [options] <telemetry-dir | metrics.json>\n"
              "  --format table|prom|json  output format (default table)\n"
              "  --trace                   also summarize the bundle's"
              " trace.json\n"
              "  --percentiles             HDR percentile table"
              " (p50/p90/p99/p999)\n"
              "  --why CTX                 decision timeline for contexts"
              " matching CTX\n"
              "                            (id or label substring; '*' for"
              " all); reads\n"
              "                            decisions.json or a"
              " flight-recorder dump\n"
              "  --json                    with --why: re-emit the canonical"
              " decisions.json\n"
              "  --fleet SNAP              render a fleet snapshot's merged"
              " profile\n"
              "  --diff SNAP_A SNAP_B      diff two fleet snapshots\n"
              "  -h, --help                show this help\n",
              Argv0);
}

bool readFile(const std::string &Path, std::string &Out, std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open " + Path;
    return false;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Error = "read error on " + Path;
  return Ok;
}

std::string u64Str(uint64_t V) { return std::to_string(V); }

/// The human view: one row per metric, histograms with their bucket
/// breakdown folded into the value cell.
std::string renderTable(const std::vector<obs::MetricSnapshot> &Snaps) {
  TextTable Table({"metric", "kind", "value"});
  for (const obs::MetricSnapshot &S : Snaps) {
    std::string Value;
    switch (S.Kind) {
    case obs::MetricKind::Counter:
      Value = u64Str(S.Value);
      break;
    case obs::MetricKind::Gauge:
      Value = std::to_string(S.GaugeValue);
      break;
    case obs::MetricKind::Histogram: {
      Value = "count=" + u64Str(S.Count) + " sum=" + u64Str(S.Sum);
      for (size_t I = 0; I < S.Buckets.size(); ++I) {
        if (S.Buckets[I] == 0)
          continue;
        Value += " le(";
        Value += I < S.Bounds.size() ? u64Str(S.Bounds[I]) : "+Inf";
        Value += ")=" + u64Str(S.Buckets[I]);
      }
      break;
    }
    case obs::MetricKind::Hdr:
      Value = "count=" + u64Str(S.Count) + " min=" + u64Str(S.MinValue) +
              " p50=" + u64Str(obs::hdrSnapshotQuantile(S, 0.5)) +
              " p99=" + u64Str(obs::hdrSnapshotQuantile(S, 0.99)) +
              " max=" + u64Str(S.MaxValue);
      break;
    }
    Table.addRow({S.Name, metricKindName(S.Kind), Value});
  }
  return Table.render();
}

/// The --percentiles view: one row per HDR metric with its tail quantiles
/// (the same estimator the exporters used, over the same sparse buckets).
std::string renderPercentiles(const std::vector<obs::MetricSnapshot> &Snaps) {
  TextTable Table(
      {"metric", "count", "min", "p50", "p90", "p99", "p999", "max"});
  size_t Rows = 0;
  for (const obs::MetricSnapshot &S : Snaps) {
    if (S.Kind != obs::MetricKind::Hdr)
      continue;
    Table.addRow({S.Name, u64Str(S.Count), u64Str(S.MinValue),
                  u64Str(obs::hdrSnapshotQuantile(S, 0.5)),
                  u64Str(obs::hdrSnapshotQuantile(S, 0.9)),
                  u64Str(obs::hdrSnapshotQuantile(S, 0.99)),
                  u64Str(obs::hdrSnapshotQuantile(S, 0.999)),
                  u64Str(S.MaxValue)});
    ++Rows;
  }
  if (Rows == 0)
    return "no hdr metrics in bundle\n";
  return Table.render();
}

//===----------------------------------------------------------------------===//
// Decision ledger (--why)
//===----------------------------------------------------------------------===//

/// Renders the decision timeline (or canonical JSON) from decisions.json —
/// either the bundle's or the "decisions" section of a flight-recorder
/// dump (decisionsFromJson finds the key in both shapes).
int whyMode(const std::string &Path, const std::string &Filter, bool Json) {
  std::string DecisionsPath = Path;
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec))
    DecisionsPath = Path + "/decisions.json";
  std::string Text, Error;
  if (!readFile(DecisionsPath, Text, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  obs::DecisionExport E;
  if (!obs::decisionsFromJson(Text, E, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", DecisionsPath.c_str(),
                 Error.c_str());
    return 1;
  }
  if (Json) {
    std::fputs(obs::decisionsJson(E).c_str(), stdout);
    return 0;
  }
  std::string CtxFilter = Filter == "*" ? std::string() : Filter;
  std::fputs(obs::renderDecisionTimeline(E, CtxFilter).c_str(), stdout);
  return 0;
}

/// Summarizes a Chrome trace_event document: event counts per category,
/// split into spans and instants, plus the recorded wall span.
bool summarizeTrace(const std::string &Path, std::string &Out,
                    std::string &Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return false;
  obs::json::Value Doc;
  if (!obs::json::parse(Text, Doc, &Error))
    return false;
  const obs::json::Value *Events = Doc.find("traceEvents");
  if (!Events || Events->K != obs::json::Value::Kind::Array) {
    Error = "no traceEvents array in " + Path;
    return false;
  }
  struct CatStats {
    uint64_t Spans = 0;
    uint64_t Instants = 0;
  };
  std::map<std::string, CatStats> Cats;
  double EndMicros = 0;
  uint64_t Metadata = 0;
  for (const obs::json::Value &Ev : Events->Arr) {
    const std::string Ph = Ev.strOr("ph", "");
    if (Ph == "M") {
      ++Metadata;
      continue;
    }
    CatStats &C = Cats[Ev.strOr("cat", "?")];
    double Ts = Ev.numberOr("ts", 0);
    if (Ph == "X") {
      ++C.Spans;
      Ts += Ev.numberOr("dur", 0);
    } else {
      ++C.Instants;
    }
    EndMicros = std::max(EndMicros, Ts);
  }
  TextTable Table({"category", "spans", "instants"});
  uint64_t Spans = 0, Instants = 0;
  for (const auto &[Cat, C] : Cats) {
    Table.addRow({Cat, u64Str(C.Spans), u64Str(C.Instants)});
    Spans += C.Spans;
    Instants += C.Instants;
  }
  Out += "trace: " + u64Str(Spans) + " spans, " + u64Str(Instants)
         + " instants, " + u64Str(Metadata) + " metadata events over "
         + formatDouble(EndMicros / 1000.0, 3) + " ms\n";
  Out += Table.render();
  return true;
}

//===----------------------------------------------------------------------===//
// Fleet snapshot inspection
//===----------------------------------------------------------------------===//

bool loadFleet(const std::string &Path, fleet::FleetState &Out) {
  fleet::SnapshotLoadResult R =
      fleet::loadSnapshot(Path, Out, /*QuarantineOnError=*/false);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s: %s: %s\n", Path.c_str(),
                 fleet::snapshotErrorName(R.Error), R.Message.c_str());
    return false;
  }
  return true;
}

int fleetMode(const std::string &Path) {
  fleet::FleetState State;
  if (!loadFleet(Path, State))
    return 1;
  std::printf("fleet snapshot: %zu stream%s\n", State.streams().size(),
              State.streams().size() == 1 ? "" : "s");
  TextTable Streams({"agent", "run-seed", "epoch"});
  for (const auto &[Key, S] : State.streams())
    Streams.addRow({Key.AgentId, u64Str(Key.RunSeed),
                    u64Str(S.Latest.Epoch)});
  std::fputs(Streams.render().c_str(), stdout);
  std::fputs(fleet::renderProfileReport(State.mergedProfile()).c_str(),
             stdout);
  return 0;
}

int diffMode(const std::string &PathA, const std::string &PathB) {
  fleet::FleetState A, B;
  if (!loadFleet(PathA, A) || !loadFleet(PathB, B))
    return 1;
  fleet::ProcessProfile PA = A.mergedProfile();
  fleet::ProcessProfile PB = B.mergedProfile();

  std::printf("fleet diff: %s (epoch-sum %llu) -> %s (epoch-sum %llu)\n",
              PathA.c_str(), static_cast<unsigned long long>(PA.Epoch),
              PathB.c_str(), static_cast<unsigned long long>(PB.Epoch));
  std::printf("heap live total: %llu -> %llu; coll-used max: %llu -> %llu\n",
              static_cast<unsigned long long>(PA.HeapLive.Total),
              static_cast<unsigned long long>(PB.HeapLive.Total),
              static_cast<unsigned long long>(PA.HeapCollUsed.Max),
              static_cast<unsigned long long>(PB.HeapCollUsed.Max));

  // Both context lists are in canonical identity order: a single sweep
  // classifies every context as removed, added, or common.
  TextTable Table({"change", "context", "type", "allocs", "live-max"});
  size_t IA = 0, IB = 0, Changed = 0;
  auto contextLabel = [](const fleet::ContextProfile &C) {
    return C.Frames.empty() ? std::string("?") : C.Frames.front();
  };
  while (IA < PA.Contexts.size() || IB < PB.Contexts.size()) {
    const bool TakeA =
        IB >= PB.Contexts.size() ||
        (IA < PA.Contexts.size() &&
         PA.Contexts[IA].identityLess(PB.Contexts[IB]));
    const bool TakeB =
        IA >= PA.Contexts.size() ||
        (IB < PB.Contexts.size() &&
         PB.Contexts[IB].identityLess(PA.Contexts[IA]));
    if (TakeA) {
      const fleet::ContextProfile &C = PA.Contexts[IA++];
      Table.addRow({"-", contextLabel(C), C.TypeName, u64Str(C.Allocations),
                    u64Str(C.Live.Max)});
      ++Changed;
    } else if (TakeB) {
      const fleet::ContextProfile &C = PB.Contexts[IB++];
      Table.addRow({"+", contextLabel(C), C.TypeName, u64Str(C.Allocations),
                    u64Str(C.Live.Max)});
      ++Changed;
    } else {
      const fleet::ContextProfile &CA = PA.Contexts[IA++];
      const fleet::ContextProfile &CB = PB.Contexts[IB++];
      if (CA.Allocations != CB.Allocations || !(CA.Live == CB.Live)) {
        Table.addRow({"~", contextLabel(CB), CB.TypeName,
                      u64Str(CA.Allocations) + " -> " +
                          u64Str(CB.Allocations),
                      u64Str(CA.Live.Max) + " -> " + u64Str(CB.Live.Max)});
        ++Changed;
      }
    }
  }
  if (Changed == 0)
    std::printf("no per-context changes\n");
  else
    std::fputs(Table.render().c_str(), stdout);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Format = "table";
  bool WithTrace = false;
  bool Percentiles = false;
  bool Why = false;
  bool WhyJson = false;
  std::string WhyFilter;
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--why") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --why expects a context filter"
                             " ('*' for all)\n");
        return 2;
      }
      Why = true;
      WhyFilter = argv[++I];
    } else if (std::strcmp(Arg, "--json") == 0) {
      WhyJson = true;
    } else if (std::strcmp(Arg, "--percentiles") == 0) {
      Percentiles = true;
    } else if (std::strcmp(Arg, "--format") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --format expects a value\n");
        return 2;
      }
      Format = argv[++I];
      if (Format != "table" && Format != "prom" && Format != "json") {
        std::fprintf(stderr, "error: unknown format '%s'\n", Format.c_str());
        return 2;
      }
    } else if (std::strcmp(Arg, "--trace") == 0) {
      WithTrace = true;
    } else if (std::strcmp(Arg, "--fleet") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --fleet expects a snapshot path\n");
        return 2;
      }
      return fleetMode(argv[I + 1]);
    } else if (std::strcmp(Arg, "--diff") == 0) {
      if (I + 2 >= argc) {
        std::fprintf(stderr, "error: --diff expects two snapshot paths\n");
        return 2;
      }
      return diffMode(argv[I + 1], argv[I + 2]);
    } else if (std::strcmp(Arg, "-h") == 0 || std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    } else if (!Path.empty()) {
      std::fprintf(stderr, "error: more than one input path\n");
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    printUsage(argv[0]);
    return 2;
  }
  if (WhyJson && !Why) {
    std::fprintf(stderr, "error: --json requires --why\n");
    return 2;
  }
  if (Why)
    return whyMode(Path, WhyFilter, WhyJson);

  std::string MetricsPath = Path;
  std::string TracePath;
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    MetricsPath = Path + "/metrics.json";
    TracePath = Path + "/trace.json";
  } else {
    TracePath =
        std::filesystem::path(Path).replace_filename("trace.json").string();
  }

  std::string Text, Error;
  if (!readFile(MetricsPath, Text, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  obs::json::Value Doc;
  if (!obs::json::parse(Text, Doc, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return 1;
  }
  std::vector<obs::MetricSnapshot> Snaps;
  if (!obs::snapshotsFromJson(Doc, Snaps, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return 1;
  }

  std::string Out;
  if (Percentiles)
    Out = renderPercentiles(Snaps);
  else if (Format == "prom")
    Out = obs::prometheusFromSnapshots(Snaps);
  else if (Format == "json")
    Out = obs::jsonFromSnapshots(Snaps);
  else
    Out = renderTable(Snaps);
  std::fputs(Out.c_str(), stdout);

  if (WithTrace) {
    std::string Summary;
    if (!summarizeTrace(TracePath, Summary, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Summary.c_str(), stdout);
  }
  return 0;
}
