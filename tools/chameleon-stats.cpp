//===--- chameleon-stats.cpp - Telemetry bundle inspector ------*- C++ -*-===//
//
// Part of the Chameleon-CXX project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the telemetry bundle a `chameleon-serversim --telemetry-out=DIR`
/// run wrote (DESIGN.md §11), without re-running anything:
///
///   chameleon-stats out/                 # human table of metrics.json
///   chameleon-stats --format prom out/   # Prometheus text (byte-identical
///                                        #   to the bundle's metrics.prom)
///   chameleon-stats --format json out/   # re-emit metrics.json
///   chameleon-stats --trace out/         # append a trace.json summary
///
/// The prom/json renderings go through the same renderers the instrumented
/// process used, over snapshots re-read from metrics.json — so what this
/// tool prints is exactly what the process exported.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Telemetry.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

using namespace chameleon;

namespace {

void printUsage(const char *Argv0) {
  std::printf("usage: %s [options] <telemetry-dir | metrics.json>\n"
              "  --format table|prom|json  output format (default table)\n"
              "  --trace                   also summarize the bundle's"
              " trace.json\n"
              "  -h, --help                show this help\n",
              Argv0);
}

bool readFile(const std::string &Path, std::string &Out, std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open " + Path;
    return false;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Error = "read error on " + Path;
  return Ok;
}

std::string u64Str(uint64_t V) { return std::to_string(V); }

/// The human view: one row per metric, histograms with their bucket
/// breakdown folded into the value cell.
std::string renderTable(const std::vector<obs::MetricSnapshot> &Snaps) {
  TextTable Table({"metric", "kind", "value"});
  for (const obs::MetricSnapshot &S : Snaps) {
    std::string Value;
    switch (S.Kind) {
    case obs::MetricKind::Counter:
      Value = u64Str(S.Value);
      break;
    case obs::MetricKind::Gauge:
      Value = std::to_string(S.GaugeValue);
      break;
    case obs::MetricKind::Histogram: {
      Value = "count=" + u64Str(S.Count) + " sum=" + u64Str(S.Sum);
      for (size_t I = 0; I < S.Buckets.size(); ++I) {
        if (S.Buckets[I] == 0)
          continue;
        Value += " le(";
        Value += I < S.Bounds.size() ? u64Str(S.Bounds[I]) : "+Inf";
        Value += ")=" + u64Str(S.Buckets[I]);
      }
      break;
    }
    }
    Table.addRow({S.Name, metricKindName(S.Kind), Value});
  }
  return Table.render();
}

/// Summarizes a Chrome trace_event document: event counts per category,
/// split into spans and instants, plus the recorded wall span.
bool summarizeTrace(const std::string &Path, std::string &Out,
                    std::string &Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return false;
  obs::json::Value Doc;
  if (!obs::json::parse(Text, Doc, &Error))
    return false;
  const obs::json::Value *Events = Doc.find("traceEvents");
  if (!Events || Events->K != obs::json::Value::Kind::Array) {
    Error = "no traceEvents array in " + Path;
    return false;
  }
  struct CatStats {
    uint64_t Spans = 0;
    uint64_t Instants = 0;
  };
  std::map<std::string, CatStats> Cats;
  double EndMicros = 0;
  uint64_t Metadata = 0;
  for (const obs::json::Value &Ev : Events->Arr) {
    const std::string Ph = Ev.strOr("ph", "");
    if (Ph == "M") {
      ++Metadata;
      continue;
    }
    CatStats &C = Cats[Ev.strOr("cat", "?")];
    double Ts = Ev.numberOr("ts", 0);
    if (Ph == "X") {
      ++C.Spans;
      Ts += Ev.numberOr("dur", 0);
    } else {
      ++C.Instants;
    }
    EndMicros = std::max(EndMicros, Ts);
  }
  TextTable Table({"category", "spans", "instants"});
  uint64_t Spans = 0, Instants = 0;
  for (const auto &[Cat, C] : Cats) {
    Table.addRow({Cat, u64Str(C.Spans), u64Str(C.Instants)});
    Spans += C.Spans;
    Instants += C.Instants;
  }
  Out += "trace: " + u64Str(Spans) + " spans, " + u64Str(Instants)
         + " instants, " + u64Str(Metadata) + " metadata events over "
         + formatDouble(EndMicros / 1000.0, 3) + " ms\n";
  Out += Table.render();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string Format = "table";
  bool WithTrace = false;
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--format") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --format expects a value\n");
        return 2;
      }
      Format = argv[++I];
      if (Format != "table" && Format != "prom" && Format != "json") {
        std::fprintf(stderr, "error: unknown format '%s'\n", Format.c_str());
        return 2;
      }
    } else if (std::strcmp(Arg, "--trace") == 0) {
      WithTrace = true;
    } else if (std::strcmp(Arg, "-h") == 0 || std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    } else if (!Path.empty()) {
      std::fprintf(stderr, "error: more than one input path\n");
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    printUsage(argv[0]);
    return 2;
  }

  std::string MetricsPath = Path;
  std::string TracePath;
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    MetricsPath = Path + "/metrics.json";
    TracePath = Path + "/trace.json";
  } else {
    TracePath =
        std::filesystem::path(Path).replace_filename("trace.json").string();
  }

  std::string Text, Error;
  if (!readFile(MetricsPath, Text, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  obs::json::Value Doc;
  if (!obs::json::parse(Text, Doc, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return 1;
  }
  std::vector<obs::MetricSnapshot> Snaps;
  if (!obs::snapshotsFromJson(Doc, Snaps, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", MetricsPath.c_str(),
                 Error.c_str());
    return 1;
  }

  std::string Out;
  if (Format == "prom")
    Out = obs::prometheusFromSnapshots(Snaps);
  else if (Format == "json")
    Out = obs::jsonFromSnapshots(Snaps);
  else
    Out = renderTable(Snaps);
  std::fputs(Out.c_str(), stdout);

  if (WithTrace) {
    std::string Summary;
    if (!summarizeTrace(TracePath, Summary, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Summary.c_str(), stdout);
  }
  return 0;
}
