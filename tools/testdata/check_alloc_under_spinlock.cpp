// chameleon-checker fixture: heap allocation inside a spinlocked section
// [check-alloc-under-spinlock]. Never compiled — analyzed by
// tests/analysis/CheckerTest.cpp.

struct SpinLock {
  void lock();
  void unlock();
};
struct SpinLockGuard {
  SpinLockGuard(SpinLock &L);
};

struct Pool {
  SpinLock Mu;

  int *refill() {
    SpinLockGuard G(Mu);
    return new int[16]; // seeded violation: allocation under Mu
  }
};
