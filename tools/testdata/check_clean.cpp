// chameleon-checker fixture: exercises every checked construct *correctly*
// and must produce no diagnostics, including one real hazard waived by a
// cham-checker-ok suppression comment. Never compiled — analyzed by
// tests/analysis/CheckerTest.cpp.

struct SpinLock {
  void lock();
  void unlock();
};
struct SpinLockGuard {
  SpinLockGuard(SpinLock &L);
};
struct HeapObject {
  void touch();
};
HeapObject *lookup();

CHAM_METRIC_COUNTER(CleanHits, "cham.alloc.clean_hits");
CHAM_METRIC_GAUGE(CleanDepth, "cham.gc.clean_depth");

struct Heap {
  SpinLock OuterMu CHAM_LOCK_RANK(20);
  SpinLock InnerMu CHAM_LOCK_RANK(10);

  CHAM_MAY_SAFEPOINT void safepointPoll() {}

  // Correct rank order: 20 then 10 (strictly decreasing).
  void nestedLocks() {
    SpinLockGuard G(OuterMu);
    SpinLockGuard H(InnerMu);
  }

  // No-safepoint function that stays clear of the poll.
  CHAM_NO_SAFEPOINT void sweep() { prepare(); }
  void prepare();

  // A raw reference across a poll, waived with an in-source suppression.
  void rooted() {
    // cham-checker-ok(check-raw-across-safepoint): rooted by the caller
    HeapObject *P = lookup();
    safepointPoll();
    P->touch();
  }
};

void uniqueTagA() {
  CHAM_FAULT("clean.alpha");
}
void uniqueTagB() {
  CHAM_FAULT("clean.beta");
}
