// chameleon-checker fixture: the same CHAM_FAULT tag at two sites
// [check-fault-tag-dup]. Never compiled — analyzed by
// tests/analysis/CheckerTest.cpp.

void growTable() {
  CHAM_FAULT("list.reserve");
}

void growBuffer() {
  CHAM_FAULT("list.reserve"); // seeded violation: tag reused
}
