// chameleon-checker fixture: acquiring a higher-ranked lock while holding
// a lower-ranked one [check-lock-rank]. Never compiled — analyzed by
// tests/analysis/CheckerTest.cpp.

struct SpinLock {
  void lock();
  void unlock();
};
struct SpinLockGuard {
  SpinLockGuard(SpinLock &L);
};

struct Allocator {
  SpinLock OuterMu CHAM_LOCK_RANK(10);
  SpinLock InnerMu CHAM_LOCK_RANK(20);

  void bad() {
    SpinLockGuard G(OuterMu);
    SpinLockGuard H(InnerMu); // seeded violation: rank 20 under rank 10
  }
};
