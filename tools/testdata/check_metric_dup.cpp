// chameleon-checker fixture: one metric name registered twice, the second
// time as a different kind [check-metric-dup]. Never compiled — analyzed
// by tests/analysis/CheckerTest.cpp.

CHAM_METRIC_COUNTER(CacheHits, "cham.alloc.cache_hits");
CHAM_METRIC_GAUGE(CacheHitsGauge, "cham.alloc.cache_hits");
