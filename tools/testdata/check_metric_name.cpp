// chameleon-checker fixture: telemetry metric named off the
// cham.<layer>.<name> convention [check-metric-name]. Never compiled —
// analyzed by tests/analysis/CheckerTest.cpp.

CHAM_METRIC_COUNTER(FastPathHits, "allocator.fast_path_hits");
