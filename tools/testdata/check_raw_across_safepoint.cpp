// chameleon-checker fixture: a raw HeapObject pointer held live across a
// may-safepoint call [check-raw-across-safepoint]. Never compiled —
// analyzed by tests/analysis/CheckerTest.cpp.

struct HeapObject {
  void touch();
};

HeapObject *lookup();

struct Heap {
  CHAM_MAY_SAFEPOINT void safepointPoll() {}
};

void useAfterPoll(Heap &H) {
  HeapObject *P = lookup(); // seeded violation: P unrooted across the poll
  H.safepointPoll();
  P->touch();
}
