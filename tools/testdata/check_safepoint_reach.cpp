// chameleon-checker fixture: a CHAM_NO_SAFEPOINT function reaching a GC
// safepoint through one level of calls [check-safepoint-reach]. Never
// compiled — analyzed by tests/analysis/CheckerTest.cpp.

struct Heap {
  CHAM_MAY_SAFEPOINT void safepointPoll() {}
  void countOp() { safepointPoll(); }
  CHAM_NO_SAFEPOINT void sweepInternals();
};

void Heap::sweepInternals() {
  countOp(); // seeded violation: transitively reaches safepointPoll
}
